//! `cl_mem` buffers with host-mediated coherence.
//!
//! A HaoCL buffer keeps a *host shadow copy* plus replicas on whichever
//! device nodes have used it. Coherence is single-writer: a kernel launch
//! makes the launching device the sole up-to-date copy; the shadow is
//! refreshed by pulling the whole buffer back over the backbone before
//! any other consumer sees it. All transfers are host-mediated, exactly
//! as in the paper — the host node "is responsible for the message
//! packaging and message delivering across the entire cluster" (§III-A).

use std::collections::HashSet;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use haocl_proto::ids::BufferId;
use haocl_proto::messages::{ApiCall, ApiReply};
use haocl_sim::Phase;

use crate::context::Context;
use crate::error::{Error, Status};
use crate::event::Event;
use crate::platform::{Device, PlatformInner};

/// Buffer access flags (`CL_MEM_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFlags(u32);

impl MemFlags {
    /// Kernels may read and write (`CL_MEM_READ_WRITE`).
    pub const READ_WRITE: MemFlags = MemFlags(1);
    /// Kernels only read (`CL_MEM_READ_ONLY`) — replicas stay valid
    /// across launches, saving re-transfers.
    pub const READ_ONLY: MemFlags = MemFlags(4);
    /// Kernels only write (`CL_MEM_WRITE_ONLY`).
    pub const WRITE_ONLY: MemFlags = MemFlags(2);

    /// Whether kernels may write through this buffer.
    pub fn kernel_writable(self) -> bool {
        self != MemFlags::READ_ONLY
    }
}

#[derive(Debug)]
struct BufState {
    /// Host copy of the buffer contents (empty for modeled buffers).
    shadow: Vec<u8>,
    /// Devices (global indices) holding an allocation.
    allocated: HashSet<usize>,
    /// Devices whose copy matches the newest contents.
    current: HashSet<usize>,
    /// Whether the shadow matches the newest contents.
    shadow_current: bool,
}

pub(crate) struct BufferInner {
    platform: Arc<PlatformInner>,
    pub(crate) id: BufferId,
    size: u64,
    flags: MemFlags,
    /// Modeled buffers carry no bytes anywhere: transfers and launches
    /// charge virtual time only (paper-scale benchmarking).
    modeled: bool,
    state: Mutex<BufState>,
    /// In-flight kernel launches (on the pipelined backbone) that may
    /// write this buffer. Settled before any dependent operation looks
    /// at the coherence state.
    pending_writers: Mutex<Vec<Event>>,
}

/// An OpenCL buffer object.
#[derive(Clone)]
pub struct Buffer {
    pub(crate) inner: Arc<BufferInner>,
}

impl Buffer {
    /// Creates a buffer of `size` bytes in `context` (`clCreateBuffer`).
    ///
    /// The host shadow is zero-filled; device allocations happen lazily
    /// on first use. Creation charges the `DataCreate` phase.
    ///
    /// # Errors
    ///
    /// [`Status::InvalidBufferSize`] for a zero-sized buffer.
    pub fn new(context: &Context, flags: MemFlags, size: u64) -> Result<Self, Error> {
        Self::with_mode(context, flags, size, false)
    }

    /// Creates a *modeled* buffer: no bytes are materialized on the host
    /// or any device; transfers and launches charge virtual time only.
    ///
    /// Use together with [`crate::Fidelity::Modeled`] launches and the
    /// `enqueue_*_buffer_modeled` queue operations for paper-scale
    /// benchmarking.
    ///
    /// # Errors
    ///
    /// [`Status::InvalidBufferSize`] for a zero-sized buffer.
    pub fn new_modeled(context: &Context, flags: MemFlags, size: u64) -> Result<Self, Error> {
        Self::with_mode(context, flags, size, true)
    }

    fn with_mode(
        context: &Context,
        flags: MemFlags,
        size: u64,
        modeled: bool,
    ) -> Result<Self, Error> {
        if size == 0 {
            return Err(Error::api(
                Status::InvalidBufferSize,
                "buffer size must be nonzero",
            ));
        }
        let platform = Arc::clone(&context.platform);
        let id = BufferId::new(platform.ids.next());
        Ok(Buffer {
            inner: Arc::new(BufferInner {
                platform,
                id,
                size,
                flags,
                modeled,
                state: Mutex::new(BufState {
                    shadow: if modeled {
                        Vec::new()
                    } else {
                        vec![0; size as usize]
                    },
                    allocated: HashSet::new(),
                    current: HashSet::new(),
                    shadow_current: true,
                }),
                pending_writers: Mutex::new(Vec::new()),
            }),
        })
    }

    /// Whether this is a modeled (timing-only) buffer.
    pub fn is_modeled(&self) -> bool {
        self.inner.modeled
    }

    /// Buffer size in bytes.
    pub fn size(&self) -> u64 {
        self.inner.size
    }

    /// The access flags.
    pub fn flags(&self) -> MemFlags {
        self.inner.flags
    }

    /// The cluster-unique buffer handle.
    pub fn id(&self) -> BufferId {
        self.inner.id
    }
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Buffer({}, {} bytes)", self.inner.id, self.inner.size)
    }
}

impl Drop for BufferInner {
    /// `clReleaseMemObject`: frees the device-side allocations when the
    /// last handle drops. Best-effort — nodes that already went away are
    /// ignored (destructors never fail).
    fn drop(&mut self) {
        let st = self.state.get_mut();
        for &dev in &st.allocated {
            if let Some(info) = self.platform.host().devices().get(dev) {
                let _ = self.platform.host().call(
                    info.node,
                    ApiCall::ReleaseBuffer {
                        device: info.device,
                        buffer: self.id,
                    },
                );
            }
        }
    }
}

impl BufferInner {
    /// Registers an in-flight launch that may write this buffer.
    pub(crate) fn add_pending_writer(&self, event: Event) {
        self.pending_writers.lock().push(event);
    }

    /// Resolves every in-flight launch targeting this buffer so its
    /// coherence state reflects them before a dependent operation reads
    /// it. A *failed* launch wrote nothing — its error stays on the
    /// launch's own [`Event`] and does not poison the buffer.
    fn settle_pending(&self) {
        let drained: Vec<Event> = std::mem::take(&mut *self.pending_writers.lock());
        for event in drained {
            let _ = event.wait();
        }
    }

    /// Makes `device` hold the newest contents (allocating and
    /// transferring as needed). Used before reads by kernels.
    pub(crate) fn make_current_on(&self, device: &Device) -> Result<(), Error> {
        self.settle_pending();
        let mut st = self.state.lock();
        if st.current.contains(&device.index) {
            return Ok(());
        }
        self.refresh_shadow_locked(&mut st)?;
        self.allocate_locked(&mut st, device)?;
        let call = if self.modeled {
            ApiCall::WriteBufferModeled {
                device: device.device_index(),
                buffer: self.id,
                offset: 0,
                len: self.size,
            }
        } else {
            ApiCall::WriteBuffer {
                device: device.device_index(),
                buffer: self.id,
                offset: 0,
                data: Bytes::copy_from_slice(&st.shadow),
            }
        };
        self.platform
            .call_traced(device.node(), call, Phase::DataTransfer)?;
        st.current.insert(device.index);
        Ok(())
    }

    /// Records that a kernel on `device` may have written the buffer.
    pub(crate) fn note_kernel_write(&self, device: &Device) {
        if !self.flags.kernel_writable() {
            return;
        }
        let mut st = self.state.lock();
        st.current.clear();
        st.current.insert(device.index);
        st.shadow_current = false;
    }

    /// Host write (`clEnqueueWriteBuffer`): updates the shadow and pushes
    /// the change to `device`.
    pub(crate) fn host_write(
        &self,
        device: &Device,
        offset: u64,
        data: &[u8],
    ) -> Result<(), Error> {
        if self.modeled {
            return Err(Error::api(
                Status::InvalidOperation,
                "buffer is modeled; use enqueue_write_buffer_modeled",
            ));
        }
        let end = offset
            .checked_add(data.len() as u64)
            .filter(|&e| e <= self.size)
            .ok_or_else(|| {
                Error::api(
                    Status::InvalidValue,
                    format!(
                        "write [{offset}, {offset}+{}) outside buffer of {} bytes",
                        data.len(),
                        self.size
                    ),
                )
            })?;
        self.settle_pending();
        let mut st = self.state.lock();
        self.refresh_shadow_locked(&mut st)?;
        st.shadow[offset as usize..end as usize].copy_from_slice(data);
        st.shadow_current = true;
        self.allocate_locked(&mut st, device)?;
        // If the device already had the newest pre-write contents, a
        // partial push keeps it equal; otherwise push the whole shadow.
        let was_current = st.current.contains(&device.index);
        let (push_offset, payload) = if was_current {
            (offset, Bytes::copy_from_slice(data))
        } else {
            (0, Bytes::copy_from_slice(&st.shadow))
        };
        self.platform.call_traced(
            device.node(),
            ApiCall::WriteBuffer {
                device: device.device_index(),
                buffer: self.id,
                offset: push_offset,
                data: payload,
            },
            Phase::DataTransfer,
        )?;
        st.current.clear();
        st.current.insert(device.index);
        Ok(())
    }

    /// Host read (`clEnqueueReadBuffer`): pulls from the owning device if
    /// the shadow is stale, then copies out.
    pub(crate) fn host_read(&self, offset: u64, out: &mut [u8]) -> Result<(), Error> {
        if self.modeled {
            return Err(Error::api(
                Status::InvalidOperation,
                "buffer is modeled; use enqueue_read_buffer_modeled",
            ));
        }
        let end = offset
            .checked_add(out.len() as u64)
            .filter(|&e| e <= self.size)
            .ok_or_else(|| {
                Error::api(
                    Status::InvalidValue,
                    format!(
                        "read [{offset}, {offset}+{}) outside buffer of {} bytes",
                        out.len(),
                        self.size
                    ),
                )
            })?;
        self.settle_pending();
        let mut st = self.state.lock();
        if st.shadow_current {
            out.copy_from_slice(&st.shadow[offset as usize..end as usize]);
            return Ok(());
        }
        // Ranged pull from the owning device: only the requested bytes
        // cross the backbone (real OpenCL reads are ranged). The shadow
        // range is refreshed opportunistically but stays stale overall.
        let owner = self.owner_device(&st)?;
        let outcome = self.platform.call_traced(
            owner.node,
            ApiCall::ReadBuffer {
                device: owner.device,
                buffer: self.id,
                offset,
                len: out.len() as u64,
            },
            Phase::DataTransfer,
        )?;
        match outcome.reply {
            ApiReply::Data { bytes } => {
                out.copy_from_slice(&bytes);
                st.shadow[offset as usize..end as usize].copy_from_slice(&bytes);
                Ok(())
            }
            other => Err(Error::Transport(format!(
                "ReadBuffer answered with {other:?}"
            ))),
        }
    }

    fn owner_device(&self, st: &BufState) -> Result<haocl_cluster::RemoteDevice, Error> {
        let owner = *st
            .current
            .iter()
            .next()
            .expect("a stale shadow implies a current device");
        self.platform
            .host()
            .devices()
            .get(owner)
            .cloned()
            .ok_or_else(|| Error::Transport(format!("device {owner} vanished")))
    }

    /// Modeled host write: charges the network + PCIe transfer for `len`
    /// bytes without carrying data.
    pub(crate) fn host_write_modeled(
        &self,
        device: &Device,
        offset: u64,
        len: u64,
    ) -> Result<(), Error> {
        if !self.modeled {
            return Err(Error::api(
                Status::InvalidOperation,
                "buffer carries real data; use enqueue_write_buffer",
            ));
        }
        let ok = offset.checked_add(len).is_some_and(|e| e <= self.size);
        if !ok {
            return Err(Error::api(
                Status::InvalidValue,
                format!(
                    "write [{offset}, {offset}+{len}) outside buffer of {} bytes",
                    self.size
                ),
            ));
        }
        self.settle_pending();
        let mut st = self.state.lock();
        self.allocate_locked(&mut st, device)?;
        let was_current = st.current.contains(&device.index);
        let (push_offset, push_len) = if was_current || st.allocated.len() == 1 {
            (offset, len)
        } else {
            (0, self.size)
        };
        self.platform.call_traced(
            device.node(),
            ApiCall::WriteBufferModeled {
                device: device.device_index(),
                buffer: self.id,
                offset: push_offset,
                len: push_len,
            },
            Phase::DataTransfer,
        )?;
        st.shadow_current = true;
        st.current.clear();
        st.current.insert(device.index);
        Ok(())
    }

    /// Modeled host read: charges the pull from the owning device (if the
    /// shadow is stale) without carrying data.
    pub(crate) fn host_read_modeled(&self, offset: u64, len: u64) -> Result<(), Error> {
        if !self.modeled {
            return Err(Error::api(
                Status::InvalidOperation,
                "buffer carries real data; use enqueue_read_buffer",
            ));
        }
        let ok = offset.checked_add(len).is_some_and(|e| e <= self.size);
        if !ok {
            return Err(Error::api(
                Status::InvalidValue,
                format!(
                    "read [{offset}, {offset}+{len}) outside buffer of {} bytes",
                    self.size
                ),
            ));
        }
        self.settle_pending();
        let st = self.state.lock();
        if st.shadow_current {
            return Ok(());
        }
        // Ranged modeled pull from the owning device.
        let owner = self.owner_device(&st)?;
        self.platform.call_traced(
            owner.node,
            ApiCall::ReadBufferModeled {
                device: owner.device,
                buffer: self.id,
                offset,
                len,
            },
            Phase::DataTransfer,
        )?;
        Ok(())
    }

    /// Whether `device` holds the newest contents (after
    /// [`BufferInner::make_current_on`] it does). Used by coherence tests.
    #[cfg(test)]
    pub(crate) fn is_current_on(&self, device: &Device) -> bool {
        self.state.lock().current.contains(&device.index)
    }

    pub(crate) fn note_device_write_full(&self, device: &Device) {
        let mut st = self.state.lock();
        st.current.clear();
        st.current.insert(device.index);
        st.shadow_current = false;
    }

    fn allocate_locked(&self, st: &mut BufState, device: &Device) -> Result<(), Error> {
        if st.allocated.contains(&device.index) {
            return Ok(());
        }
        let call = if self.modeled {
            ApiCall::CreateBufferModeled {
                device: device.device_index(),
                buffer: self.id,
                size: self.size,
            }
        } else {
            ApiCall::CreateBuffer {
                device: device.device_index(),
                buffer: self.id,
                size: self.size,
            }
        };
        self.platform
            .call_traced(device.node(), call, Phase::DataCreate)?;
        st.allocated.insert(device.index);
        Ok(())
    }

    /// Pulls the newest contents into the shadow if stale.
    fn refresh_shadow_locked(&self, st: &mut BufState) -> Result<(), Error> {
        if st.shadow_current {
            return Ok(());
        }
        let owner = *st
            .current
            .iter()
            .next()
            .expect("a stale shadow implies a current device");
        // Find the Device handle for the owner index.
        let info = self
            .platform
            .host()
            .devices()
            .get(owner)
            .cloned()
            .ok_or_else(|| Error::Transport(format!("device {owner} vanished")))?;
        let call = if self.modeled {
            ApiCall::ReadBufferModeled {
                device: info.device,
                buffer: self.id,
                offset: 0,
                len: self.size,
            }
        } else {
            ApiCall::ReadBuffer {
                device: info.device,
                buffer: self.id,
                offset: 0,
                len: self.size,
            }
        };
        let outcome = self
            .platform
            .call_traced(info.node, call, Phase::DataTransfer)?;
        match outcome.reply {
            ApiReply::Data { bytes } => {
                st.shadow.copy_from_slice(&bytes);
                st.shadow_current = true;
                Ok(())
            }
            ApiReply::DataModeled { .. } => {
                st.shadow_current = true;
                Ok(())
            }
            other => Err(Error::Transport(format!(
                "ReadBuffer answered with {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{DeviceType, Platform};
    use haocl_proto::messages::DeviceKind;

    fn setup() -> (Platform, Context) {
        let p = Platform::local(&[DeviceKind::Gpu, DeviceKind::Gpu]).unwrap();
        let devs = p.devices(DeviceType::All);
        let ctx = Context::new(&p, &devs).unwrap();
        (p, ctx)
    }

    #[test]
    fn zero_sized_buffer_rejected() {
        let (_p, ctx) = setup();
        let err = Buffer::new(&ctx, MemFlags::READ_WRITE, 0).unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidBufferSize));
    }

    #[test]
    fn write_then_read_roundtrips_through_a_device() {
        let (_p, ctx) = setup();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 8).unwrap();
        let dev = &ctx.devices()[0];
        buf.inner.host_write(dev, 2, &[9, 8, 7]).unwrap();
        let mut out = vec![0u8; 8];
        buf.inner.host_read(0, &mut out).unwrap();
        assert_eq!(out, vec![0, 0, 9, 8, 7, 0, 0, 0]);
    }

    #[test]
    fn out_of_bounds_host_ops_rejected() {
        let (_p, ctx) = setup();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 4).unwrap();
        let dev = &ctx.devices()[0];
        assert!(buf.inner.host_write(dev, 3, &[1, 2]).is_err());
        let mut out = vec![0u8; 8];
        assert!(buf.inner.host_read(0, &mut out).is_err());
        // Overflowing offset must not wrap.
        assert!(buf.inner.host_write(dev, u64::MAX, &[1]).is_err());
    }

    #[test]
    fn kernel_write_invalidates_other_replicas() {
        let (_p, ctx) = setup();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 4).unwrap();
        let d0 = &ctx.devices()[0];
        let d1 = &ctx.devices()[1];
        buf.inner.make_current_on(d0).unwrap();
        buf.inner.make_current_on(d1).unwrap();
        assert!(buf.inner.is_current_on(d0));
        assert!(buf.inner.is_current_on(d1));
        buf.inner.note_kernel_write(d0);
        assert!(buf.inner.is_current_on(d0));
        assert!(!buf.inner.is_current_on(d1));
        // Re-making d1 current pulls through the host.
        buf.inner.make_current_on(d1).unwrap();
        assert!(buf.inner.is_current_on(d1));
    }

    #[test]
    fn read_only_buffers_survive_kernel_launches() {
        let (_p, ctx) = setup();
        let buf = Buffer::new(&ctx, MemFlags::READ_ONLY, 4).unwrap();
        let d0 = &ctx.devices()[0];
        buf.inner.make_current_on(d0).unwrap();
        buf.inner.note_kernel_write(d0); // ignored for READ_ONLY
        assert!(buf.inner.is_current_on(d0));
    }

    #[test]
    fn dropping_a_buffer_frees_device_memory() {
        // The P4 model holds 8 GiB. Two 5 GiB buffers only fit if the
        // first is released when dropped.
        let (_p, ctx) = setup();
        let dev = ctx.devices()[0].clone();
        {
            let big = Buffer::new_modeled(&ctx, MemFlags::READ_WRITE, 5 << 30).unwrap();
            big.inner.make_current_on(&dev).unwrap();
        } // drop releases the device allocation
        let again = Buffer::new_modeled(&ctx, MemFlags::READ_WRITE, 5 << 30).unwrap();
        again
            .inner
            .make_current_on(&dev)
            .expect("memory must have been reclaimed");
    }

    #[test]
    fn flags_classify_writability() {
        assert!(MemFlags::READ_WRITE.kernel_writable());
        assert!(MemFlags::WRITE_ONLY.kernel_writable());
        assert!(!MemFlags::READ_ONLY.kernel_writable());
    }
}
