//! OpenCL contexts.

use std::sync::Arc;

use crate::error::{Error, Status};
use crate::platform::{Device, Platform, PlatformInner};

/// An OpenCL context: the set of devices a program's objects may touch.
#[derive(Clone)]
pub struct Context {
    pub(crate) platform: Arc<PlatformInner>,
    pub(crate) devices: Vec<Device>,
}

impl Context {
    /// Creates a context over `devices` (`clCreateContext`).
    ///
    /// # Errors
    ///
    /// [`Status::InvalidValue`] if `devices` is empty or contains
    /// duplicates.
    pub fn new(platform: &Platform, devices: &[Device]) -> Result<Self, Error> {
        if devices.is_empty() {
            return Err(Error::api(
                Status::InvalidValue,
                "a context needs at least one device",
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for d in devices {
            if !seen.insert(d.index) {
                return Err(Error::api(
                    Status::InvalidValue,
                    format!("device {} listed twice", d.index),
                ));
            }
        }
        Ok(Context {
            platform: Arc::clone(&platform.inner),
            devices: devices.to_vec(),
        })
    }

    /// The context's devices, in creation order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Whether `device` belongs to this context.
    pub fn contains(&self, device: &Device) -> bool {
        self.devices.iter().any(|d| d.index == device.index)
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Context({} devices)", self.devices.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::DeviceType;
    use haocl_proto::messages::DeviceKind;

    #[test]
    fn context_over_selected_devices() {
        let p = Platform::local(&[DeviceKind::Gpu, DeviceKind::Fpga]).unwrap();
        let all = p.devices(DeviceType::All);
        let ctx = Context::new(&p, &all).unwrap();
        assert_eq!(ctx.devices().len(), 2);
        assert!(ctx.contains(&all[1]));
    }

    #[test]
    fn empty_context_rejected() {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let err = Context::new(&p, &[]).unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidValue));
    }

    #[test]
    fn duplicate_devices_rejected() {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let d = p.devices(DeviceType::All);
        let err = Context::new(&p, &[d[0].clone(), d[0].clone()]).unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidValue));
    }
}
