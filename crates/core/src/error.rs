//! OpenCL-style status codes and the crate error type.

use std::error::Error as StdError;
use std::fmt;

use haocl_cluster::ClusterError;
use haocl_proto::messages::status;
use haocl_sched::AdmitError;

/// OpenCL status codes, mirroring the `CL_*` constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// CL_SUCCESS.
    Success,
    /// CL_DEVICE_NOT_FOUND.
    DeviceNotFound,
    /// CL_DEVICE_NOT_AVAILABLE.
    DeviceNotAvailable,
    /// CL_MEM_OBJECT_ALLOCATION_FAILURE.
    MemObjectAllocationFailure,
    /// CL_OUT_OF_RESOURCES.
    OutOfResources,
    /// CL_OUT_OF_HOST_MEMORY.
    OutOfHostMemory,
    /// CL_BUILD_PROGRAM_FAILURE.
    BuildProgramFailure,
    /// CL_INVALID_VALUE.
    InvalidValue,
    /// CL_INVALID_DEVICE.
    InvalidDevice,
    /// CL_INVALID_CONTEXT.
    InvalidContext,
    /// CL_INVALID_MEM_OBJECT.
    InvalidMemObject,
    /// CL_INVALID_PROGRAM.
    InvalidProgram,
    /// CL_INVALID_PROGRAM_EXECUTABLE.
    InvalidProgramExecutable,
    /// CL_INVALID_KERNEL_NAME.
    InvalidKernelName,
    /// CL_INVALID_KERNEL.
    InvalidKernel,
    /// CL_INVALID_ARG_INDEX.
    InvalidArgIndex,
    /// CL_INVALID_KERNEL_ARGS.
    InvalidKernelArgs,
    /// CL_INVALID_WORK_GROUP_SIZE.
    InvalidWorkGroupSize,
    /// CL_INVALID_OPERATION.
    InvalidOperation,
    /// CL_INVALID_BUFFER_SIZE.
    InvalidBufferSize,
    /// Any other negative code.
    Other(i32),
}

impl Status {
    /// Maps a wire status code onto the enum.
    pub fn from_code(code: i32) -> Status {
        match code {
            status::SUCCESS => Status::Success,
            status::DEVICE_NOT_FOUND => Status::DeviceNotFound,
            status::DEVICE_NOT_AVAILABLE => Status::DeviceNotAvailable,
            status::MEM_OBJECT_ALLOCATION_FAILURE => Status::MemObjectAllocationFailure,
            status::OUT_OF_RESOURCES => Status::OutOfResources,
            status::OUT_OF_HOST_MEMORY => Status::OutOfHostMemory,
            status::BUILD_PROGRAM_FAILURE => Status::BuildProgramFailure,
            status::INVALID_VALUE => Status::InvalidValue,
            status::INVALID_DEVICE => Status::InvalidDevice,
            status::INVALID_MEM_OBJECT => Status::InvalidMemObject,
            status::INVALID_PROGRAM => Status::InvalidProgram,
            status::INVALID_KERNEL_NAME => Status::InvalidKernelName,
            status::INVALID_KERNEL => Status::InvalidKernel,
            status::INVALID_KERNEL_ARGS => Status::InvalidKernelArgs,
            status::INVALID_WORK_GROUP_SIZE => Status::InvalidWorkGroupSize,
            status::INVALID_OPERATION => Status::InvalidOperation,
            status::INVALID_BUFFER_SIZE => Status::InvalidBufferSize,
            other => Status::Other(other),
        }
    }

    /// The wire code for this status.
    pub fn code(self) -> i32 {
        match self {
            Status::Success => status::SUCCESS,
            Status::DeviceNotFound => status::DEVICE_NOT_FOUND,
            Status::DeviceNotAvailable => status::DEVICE_NOT_AVAILABLE,
            Status::MemObjectAllocationFailure => status::MEM_OBJECT_ALLOCATION_FAILURE,
            Status::OutOfResources => status::OUT_OF_RESOURCES,
            Status::OutOfHostMemory => status::OUT_OF_HOST_MEMORY,
            Status::BuildProgramFailure => status::BUILD_PROGRAM_FAILURE,
            Status::InvalidValue => status::INVALID_VALUE,
            Status::InvalidDevice => status::INVALID_DEVICE,
            Status::InvalidContext => -34,
            Status::InvalidMemObject => status::INVALID_MEM_OBJECT,
            Status::InvalidProgram => status::INVALID_PROGRAM,
            Status::InvalidProgramExecutable => -45,
            Status::InvalidKernelName => status::INVALID_KERNEL_NAME,
            Status::InvalidKernel => status::INVALID_KERNEL,
            Status::InvalidArgIndex => -49,
            Status::InvalidKernelArgs => status::INVALID_KERNEL_ARGS,
            Status::InvalidWorkGroupSize => status::INVALID_WORK_GROUP_SIZE,
            Status::InvalidOperation => status::INVALID_OPERATION,
            Status::InvalidBufferSize => status::INVALID_BUFFER_SIZE,
            Status::Other(code) => code,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?} ({})", self.code())
    }
}

/// The crate error type: an OpenCL status with context, or a transport
/// failure underneath the wrapper.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An API-level failure with its OpenCL status.
    Api {
        /// The status code.
        status: Status,
        /// What went wrong.
        message: String,
    },
    /// The backbone or protocol failed underneath the call.
    Transport(String),
    /// Admission control shed the submission: the tenant's queue is
    /// full, or a quota would be exceeded. Retryable after load drains
    /// or quota is released — no cluster state changed.
    Overloaded(AdmitError),
}

impl Error {
    /// Creates an API error.
    pub fn api(status: Status, message: impl Into<String>) -> Self {
        Error::Api {
            status,
            message: message.into(),
        }
    }

    /// The OpenCL status, if this is an API error.
    pub fn status(&self) -> Option<Status> {
        match self {
            Error::Api { status, .. } => Some(*status),
            Error::Transport(_) | Error::Overloaded(_) => None,
        }
    }

    /// The admission-control rejection, if this is an overload shed.
    pub fn admit_error(&self) -> Option<&AdmitError> {
        match self {
            Error::Overloaded(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Api { status, message } => write!(f, "{status}: {message}"),
            Error::Transport(msg) => write!(f, "transport failure: {msg}"),
            Error::Overloaded(e) => write!(f, "overloaded: {e}"),
        }
    }
}

impl StdError for Error {}

impl From<AdmitError> for Error {
    fn from(e: AdmitError) -> Self {
        Error::Overloaded(e)
    }
}

impl From<ClusterError> for Error {
    fn from(e: ClusterError) -> Self {
        match e {
            ClusterError::Remote { code, message } => Error::Api {
                status: Status::from_code(code),
                message,
            },
            other => Error::Transport(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_roundtrip() {
        for code in [
            0, -1, -2, -4, -5, -6, -11, -30, -33, -38, -44, -46, -48, -52, -54, -59, -61,
        ] {
            assert_eq!(Status::from_code(code).code(), code);
        }
        assert_eq!(Status::from_code(-999), Status::Other(-999));
        assert_eq!(Status::Other(-999).code(), -999);
    }

    #[test]
    fn remote_errors_map_to_api_errors() {
        let e: Error = ClusterError::Remote {
            code: -46,
            message: "no kernel".into(),
        }
        .into();
        assert_eq!(e.status(), Some(Status::InvalidKernelName));
        assert!(e.to_string().contains("no kernel"));
    }

    #[test]
    fn transport_errors_have_no_status() {
        let e: Error = ClusterError::Config("bad".into()).into();
        assert_eq!(e.status(), None);
        assert!(e.to_string().contains("transport"));
    }
}
