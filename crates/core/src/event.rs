//! `cl_event` objects with virtual-time profiling.

use std::sync::Arc;

use haocl_sim::{SimDuration, SimTime};
use parking_lot::Mutex;

use crate::error::Error;

/// What an event measured (`CL_COMMAND_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandType {
    /// `clEnqueueWriteBuffer`.
    WriteBuffer,
    /// `clEnqueueReadBuffer`.
    ReadBuffer,
    /// `clEnqueueCopyBuffer`.
    CopyBuffer,
    /// `clEnqueueNDRangeKernel`.
    NdRangeKernel,
}

/// Resolved profiling data (`CL_PROFILING_COMMAND_QUEUED/START/END`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Profile {
    pub(crate) queued: SimTime,
    pub(crate) start: SimTime,
    pub(crate) end: SimTime,
    pub(crate) instructions: u64,
}

/// Deferred completion: blocks on the backbone response and performs the
/// command's post-completion bookkeeping exactly once.
type Resolver = Box<dyn FnOnce() -> Result<Profile, Error> + Send>;

enum EventState {
    /// Submitted to the backbone; the response has not been observed yet.
    /// The resolver is taken (and the slot left `None`) only for the
    /// instant it runs under the state lock.
    Pending(Option<Resolver>),
    /// Completed successfully.
    Ready(Profile),
    /// The command failed; every later observation returns this error.
    Failed(Error),
}

struct EventInner {
    command: CommandType,
    state: Mutex<EventState>,
}

/// A command's completion handle with OpenCL-style profiling info.
///
/// Synchronous commands (transfers, copies) are complete by the time the
/// enqueue returns. Kernel launches ride the pipelined backbone: the
/// enqueue returns immediately and the event *resolves* — blocking until
/// the NMP's response arrives — the first time its outcome is observed,
/// via [`Event::wait`], a profiling accessor, or a dependent operation
/// on a buffer the launch may have written.
#[derive(Clone)]
pub struct Event {
    inner: Arc<EventInner>,
}

impl Event {
    /// An already-complete event (synchronous commands).
    pub(crate) fn new(
        command: CommandType,
        queued: SimTime,
        start: SimTime,
        end: SimTime,
        instructions: u64,
    ) -> Self {
        Event {
            inner: Arc::new(EventInner {
                command,
                state: Mutex::new(EventState::Ready(Profile {
                    queued,
                    start,
                    end,
                    instructions,
                })),
            }),
        }
    }

    /// An in-flight event. `resolve` runs exactly once, on the first
    /// observation, and must block until the command's response arrives.
    pub(crate) fn pending(
        command: CommandType,
        resolve: impl FnOnce() -> Result<Profile, Error> + Send + 'static,
    ) -> Self {
        Event {
            inner: Arc::new(EventInner {
                command,
                state: Mutex::new(EventState::Pending(Some(Box::new(resolve)))),
            }),
        }
    }

    /// Blocks until the command completes (`clWaitForEvents`), surfacing
    /// the failure if the command errored asynchronously.
    ///
    /// # Errors
    ///
    /// The command's failure, with its OpenCL status for remote API
    /// errors. Waiting again returns the same error.
    pub fn wait(&self) -> Result<(), Error> {
        self.resolve().map(|_| ())
    }

    /// Whether the command has already been observed to complete —
    /// `false` for an in-flight launch. Never blocks.
    pub fn is_resolved(&self) -> bool {
        !matches!(&*self.inner.state.lock(), EventState::Pending(_))
    }

    fn resolve(&self) -> Result<Profile, Error> {
        let mut st = self.inner.state.lock();
        if let EventState::Pending(resolver) = &mut *st {
            let resolver = resolver.take().expect("event resolver ran twice");
            let result = resolver();
            *st = match &result {
                Ok(p) => EventState::Ready(*p),
                Err(e) => EventState::Failed(e.clone()),
            };
            return result;
        }
        match &*st {
            EventState::Ready(p) => Ok(*p),
            EventState::Failed(e) => Err(e.clone()),
            EventState::Pending(_) => unreachable!("pending handled above"),
        }
    }

    /// Resolves for a profiling accessor; a failed command has no
    /// profiling data to report.
    fn profile(&self) -> Profile {
        self.resolve().unwrap_or_else(|e| {
            panic!("no profiling info: command failed ({e}); check Event::wait() first")
        })
    }

    /// What this event measured.
    pub fn command_type(&self) -> CommandType {
        self.inner.command
    }

    /// When the command was enqueued (`CL_PROFILING_COMMAND_QUEUED`).
    ///
    /// # Panics
    ///
    /// Panics if the command failed; observe errors with [`Event::wait`].
    pub fn queued_at(&self) -> SimTime {
        self.profile().queued
    }

    /// When execution started on the device
    /// (`CL_PROFILING_COMMAND_START`). Blocks until the command
    /// completes.
    ///
    /// # Panics
    ///
    /// Panics if the command failed; observe errors with [`Event::wait`].
    pub fn started_at(&self) -> SimTime {
        self.profile().start
    }

    /// When execution finished on the device
    /// (`CL_PROFILING_COMMAND_END`). Blocks until the command completes.
    ///
    /// # Panics
    ///
    /// Panics if the command failed; observe errors with [`Event::wait`].
    pub fn finished_at(&self) -> SimTime {
        self.profile().end
    }

    /// Device execution time (`END − START`). Blocks until the command
    /// completes.
    ///
    /// # Panics
    ///
    /// Panics if the command failed; observe errors with [`Event::wait`].
    pub fn duration(&self) -> SimDuration {
        let p = self.profile();
        p.end - p.start
    }

    /// Queueing delay before the device picked the command up. Blocks
    /// until the command completes.
    ///
    /// # Panics
    ///
    /// Panics if the command failed; observe errors with [`Event::wait`].
    pub fn queueing_delay(&self) -> SimDuration {
        let p = self.profile();
        p.start.saturating_duration_since(p.queued)
    }

    /// Bytecode instructions retired (kernel launches in full fidelity;
    /// zero otherwise). Blocks until the command completes.
    ///
    /// # Panics
    ///
    /// Panics if the command failed; observe errors with [`Event::wait`].
    pub fn instructions(&self) -> u64 {
        self.profile().instructions
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &*self.inner.state.lock() {
            EventState::Pending(_) => write!(f, "Event({:?}, pending)", self.inner.command),
            EventState::Ready(p) => write!(
                f,
                "Event({:?}, queued {} start {} end {})",
                self.inner.command, p.queued, p.start, p.end
            ),
            EventState::Failed(e) => write!(f, "Event({:?}, failed: {e})", self.inner.command),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Status;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn profiling_accessors() {
        let e = Event::new(
            CommandType::NdRangeKernel,
            SimTime::from_nanos(10),
            SimTime::from_nanos(30),
            SimTime::from_nanos(100),
            42,
        );
        assert_eq!(e.command_type(), CommandType::NdRangeKernel);
        assert_eq!(e.queued_at(), SimTime::from_nanos(10));
        assert_eq!(e.duration(), SimDuration::from_nanos(70));
        assert_eq!(e.queueing_delay(), SimDuration::from_nanos(20));
        assert_eq!(e.instructions(), 42);
        assert!(e.is_resolved());
    }

    #[test]
    fn clone_shares_data() {
        let e = Event::new(
            CommandType::ReadBuffer,
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::from_nanos(5),
            0,
        );
        let f = e.clone();
        assert_eq!(f.finished_at(), e.finished_at());
    }

    #[test]
    fn pending_event_resolves_exactly_once() {
        static RUNS: AtomicU32 = AtomicU32::new(0);
        let e = Event::pending(CommandType::NdRangeKernel, || {
            RUNS.fetch_add(1, Ordering::SeqCst);
            Ok(Profile {
                queued: SimTime::ZERO,
                start: SimTime::from_nanos(1),
                end: SimTime::from_nanos(9),
                instructions: 3,
            })
        });
        assert!(!e.is_resolved());
        let f = e.clone();
        e.wait().unwrap();
        assert!(e.is_resolved());
        // The clone observes the cached profile; the resolver is spent.
        assert_eq!(f.duration(), SimDuration::from_nanos(8));
        assert_eq!(f.instructions(), 3);
        assert_eq!(RUNS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn failed_event_keeps_its_error() {
        let e = Event::pending(CommandType::NdRangeKernel, || {
            Err(Error::api(Status::InvalidOperation, "virtual buffer"))
        });
        let err = e.wait().unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidOperation));
        // A second wait observes the same stored failure.
        let again = e.wait().unwrap_err();
        assert_eq!(again.status(), Some(Status::InvalidOperation));
        assert!(e.is_resolved());
    }
}
