//! `cl_event` objects with virtual-time profiling.

use std::sync::Arc;

use haocl_sim::{SimDuration, SimTime};

/// What an event measured (`CL_COMMAND_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandType {
    /// `clEnqueueWriteBuffer`.
    WriteBuffer,
    /// `clEnqueueReadBuffer`.
    ReadBuffer,
    /// `clEnqueueCopyBuffer`.
    CopyBuffer,
    /// `clEnqueueNDRangeKernel`.
    NdRangeKernel,
}

#[derive(Debug)]
struct EventInner {
    command: CommandType,
    queued: SimTime,
    start: SimTime,
    end: SimTime,
    instructions: u64,
}

/// A completed command with OpenCL-style profiling info.
///
/// HaoCL's host semantics are synchronous (§III-C), so an event is
/// complete by the time the enqueue call returns; its value is the
/// profiling data (`CL_PROFILING_COMMAND_QUEUED/START/END` on the
/// virtual clock).
#[derive(Debug, Clone)]
pub struct Event {
    inner: Arc<EventInner>,
}

impl Event {
    pub(crate) fn new(
        command: CommandType,
        queued: SimTime,
        start: SimTime,
        end: SimTime,
        instructions: u64,
    ) -> Self {
        Event {
            inner: Arc::new(EventInner {
                command,
                queued,
                start,
                end,
                instructions,
            }),
        }
    }

    /// What this event measured.
    pub fn command_type(&self) -> CommandType {
        self.inner.command
    }

    /// When the command was enqueued (`CL_PROFILING_COMMAND_QUEUED`).
    pub fn queued_at(&self) -> SimTime {
        self.inner.queued
    }

    /// When execution started on the device
    /// (`CL_PROFILING_COMMAND_START`).
    pub fn started_at(&self) -> SimTime {
        self.inner.start
    }

    /// When execution finished on the device
    /// (`CL_PROFILING_COMMAND_END`).
    pub fn finished_at(&self) -> SimTime {
        self.inner.end
    }

    /// Device execution time (`END − START`).
    pub fn duration(&self) -> SimDuration {
        self.inner.end - self.inner.start
    }

    /// Queueing delay before the device picked the command up.
    pub fn queueing_delay(&self) -> SimDuration {
        self.inner.start.saturating_duration_since(self.inner.queued)
    }

    /// Bytecode instructions retired (kernel launches in full fidelity;
    /// zero otherwise).
    pub fn instructions(&self) -> u64 {
        self.inner.instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_accessors() {
        let e = Event::new(
            CommandType::NdRangeKernel,
            SimTime::from_nanos(10),
            SimTime::from_nanos(30),
            SimTime::from_nanos(100),
            42,
        );
        assert_eq!(e.command_type(), CommandType::NdRangeKernel);
        assert_eq!(e.queued_at(), SimTime::from_nanos(10));
        assert_eq!(e.duration(), SimDuration::from_nanos(70));
        assert_eq!(e.queueing_delay(), SimDuration::from_nanos(20));
        assert_eq!(e.instructions(), 42);
    }

    #[test]
    fn clone_shares_data() {
        let e = Event::new(
            CommandType::ReadBuffer,
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::from_nanos(5),
            0,
        );
        let f = e.clone();
        assert_eq!(f.finished_at(), e.finished_at());
    }
}
