//! Task-graph capture for fusion-aware dispatch.
//!
//! A [`LaunchGraph`] records enqueues — kernel, argument snapshot,
//! geometry — instead of submitting them immediately. When the graph is
//! handed to [`crate::auto::AutoScheduler::launch_graph`], adjacent
//! nodes whose effect summaries the compiler's fusion prover
//! ([`haocl_clc::prove_fusable`]) certifies as safe collapse into a
//! single `LaunchFused` wire command: the NMP runs the constituent
//! bodies back-to-back under one dispatch, saving one command round per
//! folded kernel.
//!
//! Legality is decided *only* from static facts shipped on each
//! kernel's build report (per-argument access modes, item-privacy
//! proofs, barrier counts). Anything the analyzer could not prove —
//! opaque indexing, mismatched shapes, bitstream kernels with no report
//! — keeps the nodes unfused, so a graph run is always byte-identical
//! to replaying its nodes one enqueue at a time.

use haocl_clc::{
    prove_fusable, AccessMode, AccessPattern, ArgEffect, EffectSummary, FusionCandidate,
    FusionShape, PatternBase,
};
use haocl_kernel::NdRange;
use haocl_obs::FusionDecision;
use haocl_proto::messages::{Fidelity, WireKernelReport};

use crate::error::Error;
use crate::event::Event;
use crate::kernel::{Kernel, StoredArg};

/// One captured enqueue.
pub(crate) struct GraphNode {
    pub(crate) kernel: Kernel,
    pub(crate) args: Vec<StoredArg>,
    pub(crate) range: NdRange,
}

/// An ordered capture of kernel enqueues, fused where provably safe at
/// dispatch time.
///
/// # Examples
///
/// ```no_run
/// # use haocl::graph::LaunchGraph;
/// # use haocl_kernel::NdRange;
/// # fn demo(auto: &haocl::auto::AutoScheduler, k1: &haocl::Kernel, k2: &haocl::Kernel) {
/// let mut graph = LaunchGraph::new();
/// graph.add(k1, NdRange::linear(1024, 64)).unwrap();
/// graph.add(k2, NdRange::linear(1024, 64)).unwrap();
/// let report = auto.launch_graph(&graph).unwrap();
/// assert!(report.wire_launches <= report.nodes);
/// # }
/// ```
#[derive(Default)]
pub struct LaunchGraph {
    nodes: Vec<GraphNode>,
    fusion_disabled: bool,
}

/// A contiguous run of graph nodes dispatched as one wire command.
pub(crate) struct PlannedGroup {
    /// Node indices, in submission order (≥ 1).
    pub(crate) members: Vec<usize>,
    /// When the group's first node could not join the previous group:
    /// the prover's machine-readable rejection code.
    pub(crate) rejected: Option<String>,
}

/// The outcome of dispatching a [`LaunchGraph`].
pub struct GraphReport {
    /// Captured nodes.
    pub nodes: usize,
    /// Wire launch commands actually issued.
    pub wire_launches: usize,
    /// Issued commands that were fused dispatches (≥ 2 kernels each).
    pub fused_launches: usize,
    /// Commands saved versus one command per node.
    pub commands_saved: usize,
    /// One completion event per issued command, in dispatch order.
    pub events: Vec<Event>,
    /// Per-node fusion verdict, in submission order: `(kernel name,
    /// decision)`.
    pub decisions: Vec<(String, FusionDecision)>,
}

impl LaunchGraph {
    /// Creates an empty graph with fusion enabled.
    pub fn new() -> Self {
        LaunchGraph::default()
    }

    /// Enables or disables fusion for this graph. Disabled graphs
    /// dispatch one wire command per node — the ablation baseline.
    pub fn set_fusion(&mut self, enabled: bool) {
        self.fusion_disabled = !enabled;
    }

    /// Whether fusion is enabled.
    pub fn fusion_enabled(&self) -> bool {
        !self.fusion_disabled
    }

    /// Captures an enqueue of `kernel` over `range`, snapshotting its
    /// currently-bound arguments. Returns the node's index.
    ///
    /// # Errors
    ///
    /// [`crate::Status::InvalidKernelArgs`] if any argument is unset.
    pub fn add(&mut self, kernel: &Kernel, range: NdRange) -> Result<usize, Error> {
        let args = kernel.bound_args()?;
        self.nodes.push(GraphNode {
            kernel: kernel.clone(),
            args,
            range,
        });
        Ok(self.nodes.len() - 1)
    }

    /// Number of captured nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub(crate) fn nodes(&self) -> &[GraphNode] {
        &self.nodes
    }

    /// Greedily groups adjacent nodes into fused dispatches: a node
    /// joins the open group iff the prover certifies it against *every*
    /// member (chain fusion is pairwise legality among all members) and
    /// both sides run at full fidelity. The first failure's code is
    /// recorded on the group that the node starts instead.
    pub(crate) fn plan(&self) -> Vec<PlannedGroup> {
        if self.fusion_disabled {
            return (0..self.nodes.len())
                .map(|i| PlannedGroup {
                    members: vec![i],
                    rejected: None,
                })
                .collect();
        }
        let facts: Vec<NodeFacts> = self.nodes.iter().map(NodeFacts::of).collect();
        let mut groups: Vec<PlannedGroup> = Vec::new();
        for i in 0..self.nodes.len() {
            let joined = groups.last().and_then(|g| {
                let verdict = g
                    .members
                    .iter()
                    .try_for_each(|&m| facts[m].prove_with(&facts[i]));
                verdict.err()
            });
            match (groups.last_mut(), joined) {
                (Some(group), None) => group.members.push(i),
                (_, rejected) => groups.push(PlannedGroup {
                    members: vec![i],
                    rejected,
                }),
            }
        }
        groups
    }
}

/// Per-node static facts the prover consumes, owned so the borrowed
/// [`FusionCandidate`] views can be rebuilt per pairwise check.
struct NodeFacts {
    name: String,
    effects: Option<EffectSummary>,
    shape: FusionShape,
    buffers: Vec<Option<u64>>,
    full_fidelity: bool,
}

impl NodeFacts {
    fn of(node: &GraphNode) -> NodeFacts {
        let effects = node
            .kernel
            .program()
            .kernel_reports()
            .iter()
            .find(|r| r.kernel == node.kernel.name())
            .map(summary_from_wire);
        let buffers = node
            .args
            .iter()
            .map(|a| match a {
                // The buffer's identity is its shared inner allocation:
                // two kernels alias iff they bind the same `BufferInner`.
                StoredArg::Buffer(b) => Some(std::sync::Arc::as_ptr(&b.inner) as usize as u64),
                _ => None,
            })
            .collect();
        NodeFacts {
            name: node.kernel.name().to_string(),
            effects,
            shape: FusionShape {
                work_dim: node.range.work_dim,
                global: node.range.global,
                local: node.range.local,
            },
            buffers,
            full_fidelity: node.kernel.fidelity() == Fidelity::Full,
        }
    }

    fn candidate(&self) -> FusionCandidate<'_> {
        FusionCandidate {
            name: &self.name,
            effects: self.effects.as_ref(),
            shape: self.shape,
            buffers: &self.buffers,
        }
    }

    /// Proves `self` (earlier) fusable with `later`, mapping every
    /// failure to its machine-readable code. Modeled-fidelity kernels
    /// never execute, so fusing them with real work is rejected up
    /// front.
    fn prove_with(&self, later: &NodeFacts) -> Result<(), String> {
        if !self.full_fidelity || !later.full_fidelity {
            return Err("non-full-fidelity".to_string());
        }
        prove_fusable(&self.candidate(), &later.candidate()).map_err(|e| e.code().to_string())
    }
}

/// Rebuilds the compiler's canonical [`EffectSummary`] from its flat
/// wire mirror on a kernel's build report. Unknown discriminants decay
/// to the conservative direction (read-write mode, opaque base), so a
/// newer node can never make an older host fuse unsoundly.
pub(crate) fn summary_from_wire(report: &WireKernelReport) -> EffectSummary {
    let args = report
        .effects
        .iter()
        .map(|e| ArgEffect {
            mode: match e.mode {
                0 => AccessMode::None,
                1 => AccessMode::Read,
                2 => AccessMode::Write,
                _ => AccessMode::ReadWrite,
            },
            elem_bytes: e.elem_bytes,
            elem_bounds: e.bounded.then_some((e.lo, e.hi)),
            complete: e.complete,
            patterns: e
                .patterns
                .iter()
                .map(|p| AccessPattern {
                    write: p.write,
                    coeffs: p.coeffs,
                    base: match p.base_kind {
                        0 => PatternBase::Const(p.base_add),
                        1 => PatternBase::Geom {
                            id: p.base_id,
                            add: p.base_add,
                        },
                        _ => PatternBase::Opaque,
                    },
                    provable: p.provable,
                })
                .collect(),
        })
        .collect();
    EffectSummary {
        args,
        barriers: report.barrier_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, MemFlags};
    use crate::context::Context;
    use crate::platform::{DeviceType, Platform};
    use crate::program::Program;
    use haocl_proto::messages::DeviceKind;

    const CHAIN_SRC: &str = r#"
        __kernel void scale(__global float* y, __global const float* x, int n) {
            int i = get_global_id(0);
            if (i < n) y[i] = x[i] * 2.0f;
        }
        __kernel void shift(__global float* y, int n) {
            int i = get_global_id(0);
            if (i < n) y[i] = y[i] + 1.0f;
        }
        __kernel void gather(__global float* y, __global const int* idx, int n) {
            int i = get_global_id(0);
            if (i < n) y[i] = y[idx[i]];
        }
    "#;

    fn setup() -> (Platform, Context, Program) {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::from_source(&ctx, CHAIN_SRC);
        prog.build().unwrap();
        (p, ctx, prog)
    }

    #[test]
    fn elementwise_chain_plans_one_group() {
        let (_p, ctx, prog) = setup();
        let x = Buffer::new(&ctx, MemFlags::READ_ONLY, 64).unwrap();
        let y = Buffer::new(&ctx, MemFlags::READ_WRITE, 64).unwrap();
        let scale = Kernel::new(&prog, "scale").unwrap();
        scale.set_arg_buffer(0, &y).unwrap();
        scale.set_arg_buffer(1, &x).unwrap();
        scale.set_arg_i32(2, 16).unwrap();
        let shift = Kernel::new(&prog, "shift").unwrap();
        shift.set_arg_buffer(0, &y).unwrap();
        shift.set_arg_i32(1, 16).unwrap();
        let mut graph = LaunchGraph::new();
        graph.add(&scale, NdRange::linear(16, 4)).unwrap();
        graph.add(&shift, NdRange::linear(16, 4)).unwrap();
        let plan = graph.plan();
        assert_eq!(plan.len(), 1, "elementwise chain must fuse");
        assert_eq!(plan[0].members, vec![0, 1]);
        assert!(plan[0].rejected.is_none());
    }

    #[test]
    fn opaque_gather_breaks_the_chain_with_a_code() {
        let (_p, ctx, prog) = setup();
        let x = Buffer::new(&ctx, MemFlags::READ_ONLY, 64).unwrap();
        let y = Buffer::new(&ctx, MemFlags::READ_WRITE, 64).unwrap();
        let idx = Buffer::new(&ctx, MemFlags::READ_ONLY, 64).unwrap();
        let scale = Kernel::new(&prog, "scale").unwrap();
        scale.set_arg_buffer(0, &y).unwrap();
        scale.set_arg_buffer(1, &x).unwrap();
        scale.set_arg_i32(2, 16).unwrap();
        let gather = Kernel::new(&prog, "gather").unwrap();
        gather.set_arg_buffer(0, &y).unwrap();
        gather.set_arg_buffer(1, &idx).unwrap();
        gather.set_arg_i32(2, 16).unwrap();
        let mut graph = LaunchGraph::new();
        graph.add(&scale, NdRange::linear(16, 4)).unwrap();
        graph.add(&gather, NdRange::linear(16, 4)).unwrap();
        let plan = graph.plan();
        assert_eq!(plan.len(), 2, "the data-dependent gather must not fuse");
        let code = plan[1].rejected.as_deref().unwrap();
        assert!(
            code == "read-write-overlap" || code == "write-write-overlap",
            "unexpected rejection code {code}"
        );
    }

    #[test]
    fn shape_mismatch_and_disabled_fusion_stay_unfused() {
        let (_p, ctx, prog) = setup();
        let y = Buffer::new(&ctx, MemFlags::READ_WRITE, 64).unwrap();
        let shift = Kernel::new(&prog, "shift").unwrap();
        shift.set_arg_buffer(0, &y).unwrap();
        shift.set_arg_i32(1, 16).unwrap();
        let mut graph = LaunchGraph::new();
        graph.add(&shift, NdRange::linear(16, 4)).unwrap();
        graph.add(&shift, NdRange::linear(8, 4)).unwrap();
        let plan = graph.plan();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[1].rejected.as_deref(), Some("shape-mismatch"));

        let mut off = LaunchGraph::new();
        off.set_fusion(false);
        assert!(!off.fusion_enabled());
        off.add(&shift, NdRange::linear(16, 4)).unwrap();
        off.add(&shift, NdRange::linear(16, 4)).unwrap();
        let plan = off.plan();
        assert_eq!(plan.len(), 2, "disabled graphs never fuse");
        assert!(plan.iter().all(|g| g.rejected.is_none()));
    }

    #[test]
    fn modeled_fidelity_is_rejected_up_front() {
        let (_p, ctx, prog) = setup();
        let y = Buffer::new(&ctx, MemFlags::READ_WRITE, 64).unwrap();
        let shift = Kernel::new(&prog, "shift").unwrap();
        shift.set_arg_buffer(0, &y).unwrap();
        shift.set_arg_i32(1, 16).unwrap();
        let modeled = Kernel::new(&prog, "shift").unwrap();
        modeled.set_arg_buffer(0, &y).unwrap();
        modeled.set_arg_i32(1, 16).unwrap();
        modeled.set_fidelity(crate::Fidelity::Modeled);
        let mut graph = LaunchGraph::new();
        graph.add(&shift, NdRange::linear(16, 4)).unwrap();
        graph.add(&modeled, NdRange::linear(16, 4)).unwrap();
        let plan = graph.plan();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[1].rejected.as_deref(), Some("non-full-fidelity"));
    }

    #[test]
    fn wire_roundtrip_of_effects_is_lossless_enough_to_prove() {
        // The summary that travels host-ward over the wire must carry
        // everything the prover needs: rebuild from the report and check
        // the modes/patterns survived.
        let (_p, ctx, prog) = setup();
        drop(ctx);
        let reports = prog.kernel_reports();
        let scale = reports.iter().find(|r| r.kernel == "scale").unwrap();
        let summary = summary_from_wire(scale);
        assert_eq!(summary.args.len(), 3);
        assert_eq!(summary.args[0].mode, AccessMode::Write);
        assert_eq!(summary.args[1].mode, AccessMode::Read);
        assert_eq!(summary.args[2].mode, AccessMode::None);
        assert!(summary.args[0].patterns.iter().all(|p| p.provable));
        assert!(summary.args[0].complete);
    }
}
