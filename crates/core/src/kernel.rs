//! `cl_kernel` objects.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use haocl_kernel::CostModel;
use haocl_proto::ids::KernelId;
use haocl_proto::messages::{ApiCall, ApiReply, Fidelity, WireArg};
use haocl_sim::Phase;

use crate::buffer::Buffer;
use crate::error::{Error, Status};
use crate::platform::Device;
use crate::program::Program;

/// A bound kernel argument.
#[derive(Clone, Debug)]
pub(crate) enum StoredArg {
    /// A buffer object.
    Buffer(Buffer),
    /// A scalar passed by value.
    Scalar(WireArg),
    /// A dynamically-sized `__local` allocation.
    Local(u64),
}

pub(crate) struct KernelInner {
    pub(crate) program: Program,
    pub(crate) name: String,
    /// Per-device remote kernel handles (created lazily).
    remote: Mutex<HashMap<usize, KernelId>>,
    arity: u32,
    pub(crate) args: Mutex<Vec<Option<StoredArg>>>,
    cost: Mutex<CostModel>,
    fidelity: Mutex<Fidelity>,
}

/// An OpenCL kernel with bound arguments and a launch cost hint.
#[derive(Clone)]
pub struct Kernel {
    pub(crate) inner: Arc<KernelInner>,
}

impl Kernel {
    /// Creates a kernel from a built program (`clCreateKernel`).
    ///
    /// The kernel is instantiated eagerly on the first built device to
    /// learn its arity, and lazily on every other device at first launch.
    ///
    /// # Errors
    ///
    /// [`Status::InvalidProgramExecutable`] if the program has not been
    /// built for any device; [`Status::InvalidKernelName`] if the program
    /// has no kernel named `name`.
    pub fn new(program: &Program, name: impl Into<String>) -> Result<Self, Error> {
        let name = name.into();
        let first_built = program
            .context()
            .devices()
            .iter()
            .find(|d| program.is_built_for(d.index))
            .cloned()
            .ok_or_else(|| {
                Error::api(
                    Status::InvalidProgramExecutable,
                    "program has not been built for any device",
                )
            })?;
        let id = KernelId::new(program.inner.platform.ids.next());
        let outcome = program.inner.platform.call_traced(
            first_built.node(),
            ApiCall::CreateKernel {
                device: first_built.device_index(),
                kernel: id,
                program: program.inner.id,
                name: name.clone(),
            },
            Phase::Init,
        )?;
        let arity = match outcome.reply {
            ApiReply::KernelInfo { arity } => arity,
            other => {
                return Err(Error::Transport(format!(
                    "CreateKernel answered with {other:?}"
                )));
            }
        };
        let mut remote = HashMap::new();
        remote.insert(first_built.index, id);
        Ok(Kernel {
            inner: Arc::new(KernelInner {
                program: program.clone(),
                name,
                remote: Mutex::new(remote),
                arity,
                args: Mutex::new(vec![None; arity as usize]),
                cost: Mutex::new(CostModel::new()),
                fidelity: Mutex::new(Fidelity::Full),
            }),
        })
    }

    /// The kernel's function name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of arguments the kernel takes.
    pub fn arity(&self) -> u32 {
        self.inner.arity
    }

    /// The program this kernel came from.
    pub fn program(&self) -> &Program {
        &self.inner.program
    }

    /// Binds a buffer argument (`clSetKernelArg` with a `cl_mem`).
    ///
    /// # Errors
    ///
    /// [`Status::InvalidArgIndex`] for an out-of-range index.
    pub fn set_arg_buffer(&self, index: u32, buffer: &Buffer) -> Result<(), Error> {
        self.set_stored(index, StoredArg::Buffer(buffer.clone()))
    }

    /// Binds a dynamically-sized `__local` allocation argument.
    ///
    /// # Errors
    ///
    /// [`Status::InvalidArgIndex`] for an out-of-range index.
    pub fn set_arg_local(&self, index: u32, bytes: u64) -> Result<(), Error> {
        self.set_stored(index, StoredArg::Local(bytes))
    }

    fn set_stored(&self, index: u32, arg: StoredArg) -> Result<(), Error> {
        let mut args = self.inner.args.lock();
        let slot = args.get_mut(index as usize).ok_or_else(|| {
            Error::api(
                Status::InvalidArgIndex,
                format!(
                    "argument index {index} out of range for kernel `{}` with {} argument(s)",
                    self.inner.name, self.inner.arity
                ),
            )
        })?;
        *slot = Some(arg);
        Ok(())
    }

    /// Sets the device-independent cost hint used for virtual timing and
    /// scheduling of this kernel's launches.
    pub fn set_cost(&self, cost: CostModel) {
        *self.inner.cost.lock() = cost;
    }

    /// The current cost hint.
    pub fn cost(&self) -> CostModel {
        *self.inner.cost.lock()
    }

    /// Chooses full execution or model-only timing for launches.
    pub fn set_fidelity(&self, fidelity: Fidelity) {
        *self.inner.fidelity.lock() = fidelity;
    }

    /// The current fidelity.
    pub fn fidelity(&self) -> Fidelity {
        *self.inner.fidelity.lock()
    }

    /// The remote kernel handle on `device`, creating it if necessary.
    pub(crate) fn ensure_remote(&self, device: &Device) -> Result<KernelId, Error> {
        if let Some(id) = self.inner.remote.lock().get(&device.index) {
            return Ok(*id);
        }
        if !self.inner.program.is_built_for(device.index) {
            return Err(Error::api(
                Status::InvalidProgramExecutable,
                format!(
                    "program not built for device {} (`{}`)",
                    device.index(),
                    device.name()
                ),
            ));
        }
        let id = KernelId::new(self.inner.program.inner.platform.ids.next());
        let outcome = self.inner.program.inner.platform.call_traced(
            device.node(),
            ApiCall::CreateKernel {
                device: device.device_index(),
                kernel: id,
                program: self.inner.program.inner.id,
                name: self.inner.name.clone(),
            },
            Phase::Init,
        )?;
        match outcome.reply {
            ApiReply::KernelInfo { .. } => {
                self.inner.remote.lock().insert(device.index, id);
                Ok(id)
            }
            other => Err(Error::Transport(format!(
                "CreateKernel answered with {other:?}"
            ))),
        }
    }

    /// Snapshots the bound arguments, erroring if any slot is unset.
    pub(crate) fn bound_args(&self) -> Result<Vec<StoredArg>, Error> {
        let args = self.inner.args.lock();
        let mut out = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            match a {
                Some(arg) => out.push(arg.clone()),
                None => {
                    return Err(Error::api(
                        Status::InvalidKernelArgs,
                        format!("argument {i} of kernel `{}` is not set", self.inner.name),
                    ));
                }
            }
        }
        Ok(out)
    }
}

macro_rules! scalar_setters {
    ($($fn_name:ident, $t:ty, $variant:ident, $doc:literal;)*) => {
        impl Kernel {
            $(
                #[doc = $doc]
                ///
                /// # Errors
                ///
                /// [`Status::InvalidArgIndex`] for an out-of-range index.
                pub fn $fn_name(&self, index: u32, value: $t) -> Result<(), Error> {
                    self.set_stored(index, StoredArg::Scalar(WireArg::$variant(value)))
                }
            )*
        }
    };
}

scalar_setters! {
    set_arg_f32, f32, F32, "Binds a `float` scalar argument.";
    set_arg_f64, f64, F64, "Binds a `double` scalar argument.";
    set_arg_i32, i32, I32, "Binds an `int` scalar argument.";
    set_arg_u32, u32, U32, "Binds a `uint` scalar argument.";
    set_arg_i64, i64, I64, "Binds a `long` scalar argument.";
    set_arg_u64, u64, U64, "Binds a `ulong` scalar argument.";
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kernel({}/{})", self.inner.name, self.inner.arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemFlags;
    use crate::context::Context;
    use crate::platform::{DeviceType, Platform};
    use haocl_proto::messages::DeviceKind;

    fn built_program() -> (Platform, Context, Program) {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::from_source(
            &ctx,
            "__kernel void axpy(__global float* y, __global const float* x, float a, int n) {
                int i = get_global_id(0);
                if (i < n) y[i] = y[i] + a * x[i];
            }",
        );
        prog.build().unwrap();
        (p, ctx, prog)
    }

    #[test]
    fn kernel_learns_arity_from_node() {
        let (_p, _ctx, prog) = built_program();
        let k = Kernel::new(&prog, "axpy").unwrap();
        assert_eq!(k.arity(), 4);
        assert_eq!(k.name(), "axpy");
    }

    #[test]
    fn unknown_kernel_name_rejected() {
        let (_p, _ctx, prog) = built_program();
        let err = Kernel::new(&prog, "ghost").unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidKernelName));
    }

    #[test]
    fn unbuilt_program_rejected() {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::from_source(&ctx, "__kernel void f() {}");
        let err = Kernel::new(&prog, "f").unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidProgramExecutable));
    }

    #[test]
    fn arg_index_bounds_checked() {
        let (_p, _ctx, prog) = built_program();
        let k = Kernel::new(&prog, "axpy").unwrap();
        assert_eq!(
            k.set_arg_f32(9, 1.0).unwrap_err().status(),
            Some(Status::InvalidArgIndex)
        );
    }

    #[test]
    fn unset_args_detected_at_launch_prep() {
        let (_p, ctx, prog) = built_program();
        let k = Kernel::new(&prog, "axpy").unwrap();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 16).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        k.set_arg_buffer(1, &buf).unwrap();
        k.set_arg_f32(2, 2.0).unwrap();
        // arg 3 unset
        let err = k.bound_args().unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidKernelArgs));
        k.set_arg_i32(3, 4).unwrap();
        assert_eq!(k.bound_args().unwrap().len(), 4);
    }

    #[test]
    fn cost_and_fidelity_hints_stick() {
        let (_p, _ctx, prog) = built_program();
        let k = Kernel::new(&prog, "axpy").unwrap();
        k.set_cost(CostModel::new().flops(123.0));
        assert_eq!(k.cost().total_flops(), 123.0);
        k.set_fidelity(Fidelity::Modeled);
        assert_eq!(k.fidelity(), Fidelity::Modeled);
    }
}
