//! HaoCL: an OpenCL-compatible programming framework for large-scale
//! heterogeneous clusters.
//!
//! This crate is the paper's *wrapper library* (§III-B): it exposes the
//! OpenCL object model — platform, devices, context, command queues,
//! buffers, programs, kernels, events — and implements every call by
//! packaging it into a message and forwarding it over the communication
//! backbone to the Node Management Process that owns the target device.
//! Existing OpenCL host programs port by renaming calls
//! (`clEnqueueNDRangeKernel` → [`CommandQueue::enqueue_nd_range_kernel`]
//! or the [`api`] free functions); the cluster topology stays invisible.
//!
//! * [`platform`] — [`Platform`]: the ICD entry point. A platform either
//!   fronts a whole cluster ([`Platform::cluster`]) or a single node with
//!   a zero-cost interconnect ([`Platform::local`]) — the latter is the
//!   "native OpenCL" baseline the paper compares against.
//! * [`buffer`] — [`Buffer`] with a host shadow copy and single-writer
//!   coherence across device nodes (transfers are host-mediated, as in
//!   the paper where the host does all message delivering).
//! * [`program`] / [`kernel`] — source programs compile on CPU/GPU nodes;
//!   FPGA nodes load pre-built bitstream kernels (§III-D).
//! * [`queue`] / [`event`] — in-order queues with OpenCL-style profiling
//!   on virtual time.
//! * [`auto`] — the extendable task scheduling component: launches routed
//!   by a pluggable [`haocl_sched::SchedulingPolicy`] instead of an
//!   explicit queue.
//! * [`serve`] — the multi-tenant serving plane: [`Session`]s over one
//!   shared scheduler, weighted fair queueing between tenants, and
//!   admission control with typed overload errors.
//! * [`api`] — free functions mirroring the OpenCL C API names.
//!
//! # Examples
//!
//! ```
//! use haocl::{Buffer, CommandQueue, Context, DeviceType, MemFlags, Platform, Program};
//! use haocl::kernel::Kernel;
//! use haocl_kernel::NdRange;
//!
//! // A "cluster" of one simulated GPU node, zero-cost interconnect.
//! let platform = Platform::local(&[haocl::DeviceKind::Gpu])?;
//! let devices = platform.devices(DeviceType::All);
//! let context = Context::new(&platform, &devices)?;
//! let queue = CommandQueue::new(&context, &devices[0])?;
//!
//! let program = Program::from_source(
//!     &context,
//!     "__kernel void vadd(__global const float* a, __global const float* b,
//!                         __global float* c) {
//!         int i = get_global_id(0);
//!         c[i] = a[i] + b[i];
//!     }",
//! );
//! program.build()?;
//! let kernel = Kernel::new(&program, "vadd")?;
//!
//! let a = Buffer::new(&context, MemFlags::READ_ONLY, 16)?;
//! let b = Buffer::new(&context, MemFlags::READ_ONLY, 16)?;
//! let c = Buffer::new(&context, MemFlags::WRITE_ONLY, 16)?;
//! queue.enqueue_write_buffer(&a, 0, &1.0f32.to_le_bytes().repeat(4))?;
//! queue.enqueue_write_buffer(&b, 0, &2.0f32.to_le_bytes().repeat(4))?;
//!
//! kernel.set_arg_buffer(0, &a)?;
//! kernel.set_arg_buffer(1, &b)?;
//! kernel.set_arg_buffer(2, &c)?;
//! queue.enqueue_nd_range_kernel(&kernel, NdRange::linear(4, 2))?;
//!
//! let mut out = vec![0u8; 16];
//! queue.enqueue_read_buffer(&c, 0, &mut out)?;
//! queue.finish();
//! assert!(out.chunks_exact(4).all(|c| f32::from_le_bytes(c.try_into().unwrap()) == 3.0));
//! # Ok::<(), haocl::Error>(())
//! ```

pub mod api;
pub mod auto;
pub mod buffer;
pub mod context;
pub mod error;
pub mod event;
pub mod graph;
pub mod kernel;
pub mod platform;
pub mod program;
pub mod queue;
pub(crate) mod residency;
pub mod serve;

pub use buffer::{Buffer, MemFlags};
pub use context::Context;
pub use error::{Error, Status};
pub use event::Event;
pub use graph::{GraphReport, LaunchGraph};
pub use kernel::Kernel;
pub use platform::{Device, DeviceType, DrainOptions, DrainReport, Platform};
pub use program::Program;
pub use queue::CommandQueue;
pub use serve::{ServingPlane, Session};

pub use haocl_cluster::{
    AutoscaleConfig, Autoscaler, Decision, LoadSample, MembershipState, NodeSpec, RecoveryPolicy,
};
pub use haocl_kernel::NdRange;
pub use haocl_net::{ChaosPolicy, ChaosSpec};
pub use haocl_proto::ids::{NodeId, TenantId};
pub use haocl_proto::messages::{DeviceKind, Fidelity};
pub use haocl_sched::{AdmitError, NodeCondition, TenantQuota, TenantSpec, TenantStats};
