//! The platform layer: HaoCL's ICD entry point.
//!
//! A [`Platform`] fronts a set of devices behind one dispatch target. The
//! cluster platform forwards everything over the backbone; the local
//! platform is the same stack with a zero-cost interconnect, which is the
//! "native OpenCL single node" the paper's evaluation normalizes against.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use haocl_cluster::{
    Autoscaler, ClusterConfig, Decision, HostRuntime, LoadSample, LocalCluster, MembershipState,
    NodeSpec, RemoteDevice,
};
use haocl_kernel::KernelRegistry;
use haocl_net::LinkModel;
use haocl_obs::{names, Hub};
use haocl_proto::ids::{IdAllocator, NodeId, UserId};
use haocl_proto::messages::{ApiCall, DeviceKind};
use haocl_sim::{Clock, Phase, PhaseBreakdown, SimDuration, SimTime, Tracer};
use parking_lot::Mutex;

use crate::buffer::{BufferInner, EvacOutcome};
use crate::error::Error;

/// Host-side memory generation rate used to cost data creation
/// (a memcpy-like 10 GB/s, matching a Xeon-class host).
const HOST_GEN_BANDWIDTH: f64 = 10.0e9;

pub(crate) struct PlatformInner {
    cluster: LocalCluster,
    pub(crate) ids: IdAllocator,
    pub(crate) tracer: Tracer,
    /// The observability hub, adopted from the host runtime so the
    /// cluster's plane metrics and the API layer's spans land in one
    /// place.
    pub(crate) obs: Arc<Hub>,
    /// Whether buffer migrations may travel NMP→NMP directly instead of
    /// relaying through the host shadow.
    peer_transfers: AtomicBool,
    /// Every live buffer created under this platform, weakly held — the
    /// work-list a node drain migrates before retirement.
    buffers: Mutex<Vec<Weak<BufferInner>>>,
    name: String,
}

impl PlatformInner {
    pub(crate) fn host(&self) -> &HostRuntime {
        self.cluster.host()
    }

    pub(crate) fn clock(&self) -> &Clock {
        self.cluster.host().clock()
    }

    /// Forwards a call and records its wall-virtual duration under
    /// `phase`.
    pub(crate) fn call_traced(
        &self,
        node: NodeId,
        call: ApiCall,
        phase: Phase,
    ) -> Result<haocl_cluster::host::CallOutcome, Error> {
        let started = self.clock().now();
        let outcome = self.host().call(node, call)?;
        self.tracer.record(
            phase,
            outcome.host_received.saturating_duration_since(started),
        );
        Ok(outcome)
    }

    /// Whether direct peer transfers are enabled (they are by default).
    pub(crate) fn peer_transfers_enabled(&self) -> bool {
        self.peer_transfers.load(Ordering::Relaxed)
    }

    /// Registers a freshly created buffer so membership changes can find
    /// it; dead entries are pruned opportunistically.
    pub(crate) fn register_buffer(&self, buffer: &Arc<BufferInner>) {
        let mut buffers = self.buffers.lock();
        buffers.retain(|w| w.strong_count() > 0);
        buffers.push(Arc::downgrade(buffer));
    }

    /// The buffers still alive under this platform.
    pub(crate) fn live_buffers(&self) -> Vec<Arc<BufferInner>> {
        self.buffers
            .lock()
            .iter()
            .filter_map(Weak::upgrade)
            .collect()
    }

    /// Counts `bytes` of buffer contents moved by the data plane over
    /// `path` (`host_relay` or `peer`) into the metrics registry and the
    /// per-phase byte breakdown.
    pub(crate) fn count_dataplane(&self, path: &str, bytes: u64) {
        self.obs
            .metrics
            .inc_counter(names::DATAPLANE_BYTES, &[("path", path)], bytes);
        self.tracer.record_bytes(Phase::DataTransfer, bytes);
    }
}

/// The device classes `get_device_ids` can filter by (`CL_DEVICE_TYPE_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceType {
    /// CPUs only.
    Cpu,
    /// GPUs only.
    Gpu,
    /// Accelerators (FPGAs) only.
    Accelerator,
    /// Every device.
    All,
}

impl DeviceType {
    /// Whether a device kind passes this filter.
    pub fn matches(self, kind: DeviceKind) -> bool {
        match self {
            DeviceType::All => true,
            DeviceType::Cpu => kind == DeviceKind::Cpu,
            DeviceType::Gpu => kind == DeviceKind::Gpu,
            DeviceType::Accelerator => kind == DeviceKind::Fpga,
        }
    }
}

/// A device handle: a position in the platform's cluster-wide device map.
#[derive(Clone)]
pub struct Device {
    pub(crate) platform: Arc<PlatformInner>,
    pub(crate) index: usize,
    pub(crate) info: RemoteDevice,
}

impl Device {
    /// The device's model name (`CL_DEVICE_NAME`).
    pub fn name(&self) -> &str {
        &self.info.descriptor.name
    }

    /// The device class.
    pub fn kind(&self) -> DeviceKind {
        self.info.descriptor.kind
    }

    /// Global memory capacity in bytes (`CL_DEVICE_GLOBAL_MEM_SIZE`).
    pub fn global_mem_size(&self) -> u64 {
        self.info.descriptor.mem_bytes
    }

    /// The configured name of the node hosting this device.
    pub fn node_name(&self) -> &str {
        &self.info.node_name
    }

    /// The device's position in the platform's device map.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The advertised device model summary.
    pub fn descriptor(&self) -> &haocl_proto::messages::DeviceDescriptor {
        &self.info.descriptor
    }

    /// The id of the node hosting this device.
    pub fn node_id(&self) -> NodeId {
        self.info.node
    }

    pub(crate) fn node(&self) -> NodeId {
        self.info.node
    }

    pub(crate) fn device_index(&self) -> u8 {
        self.info.device
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Device[{}] {} on {} ({})",
            self.index,
            self.name(),
            self.node_name(),
            self.kind()
        )
    }
}

/// Tuning for a graceful node drain (see [`Platform::drain_node`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct DrainOptions {
    /// Virtual-time budget for peer-to-peer migration. Buffers reached
    /// after the budget has elapsed degrade to the host relay — the
    /// newest bytes are pulled back into the host shadow in one hop
    /// instead of being re-homed on a surviving device, so a spot
    /// revocation with a tight deadline still loses nothing. `None`
    /// means no deadline: every endangered buffer is peer-migrated.
    pub deadline: Option<SimDuration>,
}

impl DrainOptions {
    /// A drain with a peer-migration deadline.
    pub fn with_deadline(deadline: SimDuration) -> DrainOptions {
        DrainOptions {
            deadline: Some(deadline),
        }
    }
}

/// What a graceful node drain did (see [`Platform::drain_node`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// The drained node.
    pub node: NodeId,
    /// Buffers whose newest bytes were re-homed on a surviving device
    /// over the peer data plane.
    pub peer_migrated: usize,
    /// Buffers whose newest bytes were pulled back into the host shadow
    /// (no surviving target, peer transfers off, or past the deadline).
    pub host_relayed: usize,
    /// Buffers that needed no rescue (newest copy already safe
    /// elsewhere); replicas on the node were simply evicted.
    pub untouched: usize,
    /// Buffer-content bytes the evacuation moved.
    pub bytes_evacuated: u64,
    /// Whether the deadline forced at least one host-relay degradation.
    pub deadline_degraded: bool,
}

/// The HaoCL platform.
#[derive(Clone)]
pub struct Platform {
    pub(crate) inner: Arc<PlatformInner>,
}

impl Platform {
    /// Connects a platform to a whole cluster described by `config`.
    ///
    /// `registry` is the cluster-wide bitstream store (pre-built native
    /// kernels); FPGA nodes serve only kernels found there.
    ///
    /// # Errors
    ///
    /// Propagates cluster launch/handshake failures as
    /// [`Error::Transport`].
    pub fn cluster(config: &ClusterConfig, registry: KernelRegistry) -> Result<Self, Error> {
        let cluster = LocalCluster::launch(config, registry)?;
        Ok(Self::wrap(cluster, "HaoCL"))
    }

    fn wrap(cluster: LocalCluster, name: &str) -> Platform {
        let obs = Arc::clone(cluster.host().obs());
        if std::env::var("HAOCL_TRACE").is_ok_and(|v| v == "1") {
            obs.set_enabled(true);
        }
        Platform {
            inner: Arc::new(PlatformInner {
                cluster,
                ids: IdAllocator::new(),
                tracer: Tracer::new(),
                obs,
                peer_transfers: AtomicBool::new(true),
                buffers: Mutex::new(Vec::new()),
                name: name.to_string(),
            }),
        }
    }

    /// A single-node platform with a zero-cost interconnect: the "native
    /// OpenCL on one machine" baseline.
    ///
    /// # Errors
    ///
    /// Propagates launch failures as [`Error::Transport`].
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn local(devices: &[DeviceKind]) -> Result<Self, Error> {
        Self::local_with_registry(devices, KernelRegistry::new())
    }

    /// [`Platform::local`] with a bitstream/native-kernel store.
    ///
    /// # Errors
    ///
    /// Propagates launch failures as [`Error::Transport`].
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn local_with_registry(
        devices: &[DeviceKind],
        registry: KernelRegistry,
    ) -> Result<Self, Error> {
        assert!(!devices.is_empty(), "a node needs at least one device");
        let config = ClusterConfig {
            host_addr: "local:7000".to_string(),
            nodes: vec![NodeSpec {
                name: "local0".to_string(),
                addr: "local:7100".to_string(),
                devices: devices.to_vec(),
            }],
            // Effectively free interconnect: in-machine PCIe dwarfs it.
            link: LinkModel::custom(1.0e15, SimDuration::ZERO),
        };
        let cluster = LocalCluster::launch(&config, registry)?;
        Ok(Self::wrap(cluster, "HaoCL (local)"))
    }

    /// The platform name (`CL_PLATFORM_NAME`).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The mapped devices passing `filter` (`clGetDeviceIDs`).
    pub fn devices(&self, filter: DeviceType) -> Vec<Device> {
        self.inner
            .host()
            .devices()
            .iter()
            .enumerate()
            .filter(|(_, d)| filter.matches(d.descriptor.kind))
            .map(|(index, d)| Device {
                platform: Arc::clone(&self.inner),
                index,
                info: d.clone(),
            })
            .collect()
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        self.inner.clock()
    }

    /// The virtual-time phase breakdown accumulated so far (Fig. 3's
    /// instrumentation).
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        self.inner.tracer.breakdown()
    }

    /// Clears the phase breakdown (between benchmark runs).
    pub fn reset_phases(&self) {
        self.inner.tracer.reset()
    }

    /// Charges host-side generation of `bytes` of input data to the
    /// `DataCreate` phase, advancing the virtual clock.
    ///
    /// The paper's Fig. 3 counts data creation as a first-class phase;
    /// workload generators call this to model it.
    pub fn charge_data_creation(&self, bytes: u64) {
        let dur = SimDuration::from_secs_f64(bytes as f64 / HOST_GEN_BANDWIDTH);
        self.inner.clock().advance_by(dur);
        self.inner.tracer.record(Phase::DataCreate, dur);
        self.inner.tracer.record_bytes(Phase::DataCreate, bytes);
    }

    /// Enables or disables direct NMP→NMP buffer migrations (on by
    /// default). With peer transfers off, every migration relays through
    /// the host shadow — the pre-residency data plane, kept for
    /// ablations and A/B verification.
    pub fn set_peer_transfers(&self, on: bool) {
        self.inner.peer_transfers.store(on, Ordering::Relaxed);
    }

    /// Whether direct peer transfers are enabled.
    pub fn peer_transfers_enabled(&self) -> bool {
        self.inner.peer_transfers_enabled()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.clock().now()
    }

    /// Turns end-to-end tracing and metrics on or off at runtime (the
    /// builder-API equivalent of launching with `HAOCL_TRACE=1`).
    pub fn set_tracing(&self, on: bool) {
        self.inner.obs.set_enabled(on);
    }

    /// Whether tracing/metrics recording is currently enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.inner.obs.enabled()
    }

    /// The observability hub: span recorder, metric registry and
    /// scheduler audit log shared by every layer under this platform.
    pub fn obs(&self) -> &Arc<Hub> {
        &self.inner.obs
    }

    /// The routing epoch of `node`: 0 until the host runtime's first
    /// failover away from it, bumped on each. Schedulers read this as a
    /// node-flap signal (see [`haocl_sched::QuarantineTracker`]).
    pub fn node_epoch(&self, node: NodeId) -> u32 {
        self.inner.host().node_epoch(node)
    }

    /// Installs a chaos policy on the platform's fabric and enables the
    /// default recovery policy — the in-process equivalent of launching
    /// with `HAOCL_CHAOS_SPEC`/`HAOCL_CHAOS_SEED` set (and safe to use
    /// from parallel tests, unlike process-global environment).
    pub fn install_chaos(&self, policy: haocl_net::ChaosPolicy) {
        self.inner.cluster.install_chaos(policy);
    }

    /// Overrides the host runtime's fault-recovery policy (`None`
    /// restores fail-fast semantics).
    pub fn set_recovery(&self, policy: Option<haocl_cluster::RecoveryPolicy>) {
        self.inner.host().set_recovery(policy);
    }

    /// The chaos fault schedule observed so far, one line per injected
    /// fault — the repro artifact to attach to a failing run. Empty
    /// without an installed chaos policy.
    pub fn chaos_schedule(&self) -> Vec<String> {
        self.inner.cluster.chaos_schedule()
    }

    /// Whether `node`'s current route has a live backbone connection.
    pub fn node_is_live(&self, node: NodeId) -> bool {
        self.inner.host().node_is_live(node)
    }

    /// The membership state of `node` (`None` for an unknown id).
    pub fn node_membership(&self, node: NodeId) -> Option<MembershipState> {
        self.inner.host().node_membership(node)
    }

    /// How many of `node`'s routing-epoch bumps were voluntary (drains)
    /// rather than failovers. Health trackers subtract this before
    /// converting epochs to strikes.
    pub fn node_voluntary_epochs(&self, node: NodeId) -> u32 {
        self.inner.host().node_voluntary_epochs(node)
    }

    /// The nodes currently `Active`, ascending by id.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        let host = self.inner.host();
        (0..host.node_count() as u32)
            .map(NodeId::new)
            .filter(|&n| host.node_membership(n) == Some(MembershipState::Active))
            .collect()
    }

    /// Adds a node to the running cluster: spawns its NMP, joins it
    /// through the membership handshake (Joining → Active) and maps its
    /// devices at the end of the platform device list. Returns the new
    /// node's id; existing [`Device`] indices are unaffected.
    ///
    /// # Errors
    ///
    /// [`Error::Transport`] on address clashes or a failed handshake
    /// (the host keeps a `Departed` tombstone for the slot).
    pub fn add_node(&self, spec: &NodeSpec) -> Result<NodeId, Error> {
        Ok(self.inner.cluster.add_node(spec)?)
    }

    /// Gracefully drains `node` out of the cluster and retires it.
    ///
    /// The sequence is the drain state machine's happy path: membership
    /// flips to `Draining` (the node refuses new launches, buffer
    /// traffic continues), every live buffer whose newest bytes are
    /// stranded on the node is migrated — peer push to a surviving
    /// device while inside the [`DrainOptions::deadline`] budget, host
    /// relay after it — replicas on the node are evicted, and the node
    /// is retired: a clean *voluntary* epoch bump (no quarantine
    /// strikes), journal cleared, NMP stopped, addresses freed for a
    /// later rejoin.
    ///
    /// # Errors
    ///
    /// [`Error::Transport`] for an unknown node, a drain from a
    /// non-drainable state (`Joining`, `Departed`), or a migration
    /// failure mid-evacuation (the node is left `Draining`, not
    /// retired, so the drain can be retried).
    pub fn drain_node(&self, node: NodeId, opts: DrainOptions) -> Result<DrainReport, Error> {
        let host = self.inner.host();
        host.begin_drain(node)?;
        let started = self.clock().now();
        // One migration target serves the whole drain: the first device
        // on another Active node (deterministic, smallest index).
        let devices = host.devices();
        let target = devices
            .iter()
            .enumerate()
            .find(|(_, d)| {
                d.node != node && host.node_membership(d.node) == Some(MembershipState::Active)
            })
            .map(|(index, d)| Device {
                platform: Arc::clone(&self.inner),
                index,
                info: d.clone(),
            });
        let mut report = DrainReport {
            node,
            peer_migrated: 0,
            host_relayed: 0,
            untouched: 0,
            bytes_evacuated: 0,
            deadline_degraded: false,
        };
        for buffer in self.inner.live_buffers() {
            let over_deadline = opts
                .deadline
                .is_some_and(|d| self.clock().now().saturating_duration_since(started) >= d);
            let force_relay = over_deadline || target.is_none();
            match buffer.evacuate_node(node, target.as_ref(), force_relay)? {
                EvacOutcome::Untouched => report.untouched += 1,
                EvacOutcome::PeerMigrated(bytes) => {
                    report.peer_migrated += 1;
                    report.bytes_evacuated += bytes;
                }
                EvacOutcome::HostRelayed(bytes) => {
                    if over_deadline {
                        report.deadline_degraded = true;
                    }
                    report.host_relayed += 1;
                    report.bytes_evacuated += bytes;
                }
            }
        }
        self.inner.cluster.remove_node(node)?;
        Ok(report)
    }

    /// The `Active` node holding the fewest resident buffer bytes — the
    /// cheapest node to drain when scaling down. `None` when fewer than
    /// two nodes are active (never drain the last one).
    pub fn least_resident_node(&self) -> Option<NodeId> {
        let active = self.active_nodes();
        if active.len() < 2 {
            return None;
        }
        let host = self.inner.host();
        let devices = host.devices();
        let buffers = self.inner.live_buffers();
        active.into_iter().min_by_key(|&n| {
            devices
                .iter()
                .enumerate()
                .filter(|(_, d)| d.node == n)
                .map(|(i, _)| buffers.iter().map(|b| b.resident_bytes_on(i)).sum::<u64>())
                .sum::<u64>()
        })
    }

    /// Feeds one autoscaler policy tick from the live metrics: the
    /// queue-depth series summed over the fleet, divided across the
    /// currently `Active` nodes. The caller actuates the returned
    /// decision ([`Platform::add_node`] on `ScaleUp`,
    /// [`Platform::drain_node`] on the
    /// [`Platform::least_resident_node`] for `ScaleDown`).
    pub fn autoscale_tick(&self, autoscaler: &mut Autoscaler) -> Decision {
        let active = self.active_nodes().len();
        let sample = LoadSample::from_metrics_text(&self.render_metrics(), active);
        autoscaler.observe(&sample, &self.inner.obs)
    }

    /// Exports every recorded span as a Chrome trace-event JSON document
    /// (load it in `chrome://tracing` or Perfetto).
    pub fn export_chrome_trace(&self) -> String {
        haocl_obs::chrome_trace(&self.inner.obs.recorder.spans())
    }

    /// Renders the metric registry in Prometheus text format, after
    /// folding in the fabric's cumulative transmit counters.
    pub fn render_metrics(&self) -> String {
        let stats = self.inner.cluster.fabric().stats();
        let m = &self.inner.obs.metrics;
        // Counters only move forward, so syncing an external snapshot is
        // an increment by the delta observed since the last render.
        let frames_behind = stats
            .frames
            .saturating_sub(m.counter_value(names::FABRIC_FRAMES, &[]));
        m.inc_counter(names::FABRIC_FRAMES, &[], frames_behind);
        let bytes_behind = stats
            .charged_bytes
            .saturating_sub(m.counter_value(names::FABRIC_BYTES, &[]));
        m.inc_counter(names::FABRIC_BYTES, &[], bytes_behind);
        m.render()
    }

    /// Renders the scheduler decision audit log, one line per placement.
    pub fn render_audit_log(&self) -> String {
        self.inner.obs.audit.render()
    }

    /// Pulls the runtime profile from every node: per-device, per-kernel
    /// execution statistics (the "runtime profiling information from the
    /// cluster" the paper's automatic scheduler feeds on, §III-B).
    ///
    /// # Errors
    ///
    /// Propagates transport failures; a node that answers with anything
    /// but a profile is a protocol error.
    pub fn query_profiles(
        &self,
    ) -> Result<Vec<(NodeId, Vec<haocl_proto::messages::ProfileEntry>)>, Error> {
        let mut out = Vec::new();
        for i in 0..self.inner.host().node_count() {
            let node = NodeId::new(i as u32);
            let outcome = self.inner.host().call(node, ApiCall::QueryProfile)?;
            match outcome.reply {
                haocl_proto::messages::ApiReply::Profile { entries } => {
                    out.push((node, entries));
                }
                other => {
                    return Err(Error::Transport(format!(
                        "QueryProfile answered with {other:?}"
                    )));
                }
            }
        }
        Ok(out)
    }

    /// Injects (or clears, with `factor <= 1.0`) a silent compute
    /// degradation on one device of one node: every subsequent kernel on
    /// it runs `factor`× slow while its descriptor keeps advertising full
    /// speed. Fault injection for exercising the drift detector — the
    /// only way the scheduler learns of the sickness is through observed
    /// timings.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; anything but an `Ack` is a
    /// protocol error.
    pub fn set_device_throttle(&self, node: NodeId, device: u8, factor: f64) -> Result<(), Error> {
        let outcome = self
            .inner
            .host()
            .call(node, ApiCall::SetThrottle { device, factor })?;
        match outcome.reply {
            haocl_proto::messages::ApiReply::Ack => Ok(()),
            other => Err(Error::Transport(format!(
                "SetThrottle answered with {other:?}"
            ))),
        }
    }

    /// Switches the session's user id (multi-user support, §III-D).
    ///
    /// Affects subsequently created contexts/queues sharing this
    /// platform handle.
    pub fn set_user(&mut self, _user: UserId) {
        // The HostRuntime user is fixed per connection in this
        // implementation; sessions are tracked by the SessionManager.
        // Kept as an explicit extension point.
    }
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("name", &self.inner.name)
            .field("devices", &self.inner.host().devices().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_platform_lists_devices() {
        let p = Platform::local(&[DeviceKind::Gpu, DeviceKind::Cpu]).unwrap();
        assert_eq!(p.devices(DeviceType::All).len(), 2);
        assert_eq!(p.devices(DeviceType::Gpu).len(), 1);
        assert_eq!(p.devices(DeviceType::Cpu).len(), 1);
        assert_eq!(p.devices(DeviceType::Accelerator).len(), 0);
        assert!(p.name().contains("HaoCL"));
    }

    #[test]
    fn cluster_platform_maps_all_nodes() {
        let p =
            Platform::cluster(&ClusterConfig::hetero_cluster(2, 2), KernelRegistry::new()).unwrap();
        assert_eq!(p.devices(DeviceType::All).len(), 4);
        assert_eq!(p.devices(DeviceType::Accelerator).len(), 2);
        let gpus = p.devices(DeviceType::Gpu);
        assert_eq!(gpus[0].kind(), DeviceKind::Gpu);
        assert!(gpus[0].global_mem_size() > 0);
    }

    #[test]
    fn device_type_filters() {
        assert!(DeviceType::All.matches(DeviceKind::Fpga));
        assert!(DeviceType::Accelerator.matches(DeviceKind::Fpga));
        assert!(!DeviceType::Gpu.matches(DeviceKind::Fpga));
    }

    #[test]
    fn data_creation_advances_clock_and_phase() {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let before = p.now();
        p.charge_data_creation(10_000_000_000); // 1 s at 10 GB/s
        assert!(p.now() > before);
        let b = p.phase_breakdown();
        assert!(b.time(Phase::DataCreate) >= SimDuration::from_millis(999));
        p.reset_phases();
        assert_eq!(p.phase_breakdown().total(), SimDuration::ZERO);
    }
}
