//! `cl_program` objects.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use haocl_proto::ids::ProgramId;
use haocl_proto::messages::{ApiCall, ApiReply, DeviceKind};
use haocl_sim::Phase;

use crate::context::Context;
use crate::error::{Error, Status};
use crate::platform::PlatformInner;

pub(crate) enum ProgramForm {
    /// OpenCL C source, compiled on CPU/GPU nodes.
    Source(String),
    /// Names of pre-built bitstream kernels (FPGA path, also usable as a
    /// native fast path on other devices).
    Bitstream(Vec<String>),
}

pub(crate) struct ProgramInner {
    pub(crate) platform: Arc<PlatformInner>,
    pub(crate) context: Context,
    pub(crate) id: ProgramId,
    pub(crate) form: ProgramForm,
    /// Devices (global indices) the program has been built for.
    pub(crate) built: Mutex<HashSet<usize>>,
    build_log: Mutex<String>,
}

/// An OpenCL program: source text or a set of pre-built kernels, built
/// per device.
#[derive(Clone)]
pub struct Program {
    pub(crate) inner: Arc<ProgramInner>,
}

impl Program {
    /// Creates a program from OpenCL C source
    /// (`clCreateProgramWithSource`).
    pub fn from_source(context: &Context, source: impl Into<String>) -> Self {
        Self::with_form(context, ProgramForm::Source(source.into()))
    }

    /// Creates a program from pre-built bitstream kernel names (the
    /// `clCreateProgramWithBinary` analogue; required for FPGA devices,
    /// §III-D).
    pub fn with_bitstream_kernels<I, S>(context: &Context, kernels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::with_form(
            context,
            ProgramForm::Bitstream(kernels.into_iter().map(Into::into).collect()),
        )
    }

    fn with_form(context: &Context, form: ProgramForm) -> Self {
        let platform = Arc::clone(&context.platform);
        let id = ProgramId::new(platform.ids.next());
        Program {
            inner: Arc::new(ProgramInner {
                platform,
                context: context.clone(),
                id,
                form,
                built: Mutex::new(HashSet::new()),
                build_log: Mutex::new(String::new()),
            }),
        }
    }

    /// Builds the program for every device in its context
    /// (`clBuildProgram`).
    ///
    /// Source programs are rejected by FPGA devices; bitstream programs
    /// load on any device whose node's registry holds the named kernels.
    ///
    /// # Errors
    ///
    /// [`Status::BuildProgramFailure`] with the build log on compile or
    /// load failure; [`Status::InvalidOperation`] when source meets FPGA.
    pub fn build(&self) -> Result<(), Error> {
        let devices = self.inner.context.devices().to_vec();
        for device in &devices {
            if self.inner.built.lock().contains(&device.index) {
                continue;
            }
            let call = match &self.inner.form {
                ProgramForm::Source(source) => {
                    if device.kind() == DeviceKind::Fpga {
                        return Err(Error::api(
                            Status::InvalidOperation,
                            format!(
                                "device {} is an FPGA: build from source is not supported, \
                                 use Program::with_bitstream_kernels",
                                device.index()
                            ),
                        ));
                    }
                    ApiCall::BuildProgram {
                        device: device.device_index(),
                        program: self.inner.id,
                        source: source.clone(),
                    }
                }
                ProgramForm::Bitstream(kernels) => ApiCall::LoadBitstream {
                    device: device.device_index(),
                    program: self.inner.id,
                    kernels: kernels.clone(),
                },
            };
            let outcome = self
                .inner
                .platform
                .call_traced(device.node(), call, Phase::Init)?;
            match outcome.reply {
                ApiReply::BuildLog { ok: true, log } => {
                    *self.inner.build_log.lock() = log;
                    self.inner.built.lock().insert(device.index);
                }
                ApiReply::BuildLog { ok: false, log } => {
                    *self.inner.build_log.lock() = log.clone();
                    return Err(Error::api(Status::BuildProgramFailure, log));
                }
                other => {
                    return Err(Error::Transport(format!("build answered with {other:?}")));
                }
            }
        }
        Ok(())
    }

    /// The last build log (`clGetProgramBuildInfo(CL_PROGRAM_BUILD_LOG)`).
    pub fn build_log(&self) -> String {
        self.inner.build_log.lock().clone()
    }

    /// Whether the program has been built for `device_index`.
    pub fn is_built_for(&self, device_index: usize) -> bool {
        self.inner.built.lock().contains(&device_index)
    }

    /// The context the program belongs to.
    pub fn context(&self) -> &Context {
        &self.inner.context
    }

    /// Whether this is a bitstream (pre-built) program.
    pub fn is_bitstream(&self) -> bool {
        matches!(self.inner.form, ProgramForm::Bitstream(_))
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Program({}, {})",
            self.inner.id,
            if self.is_bitstream() {
                "bitstream"
            } else {
                "source"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{DeviceType, Platform};

    #[test]
    fn source_program_builds_on_gpu() {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::from_source(&ctx, "__kernel void f(__global int* a) { a[0] = 1; }");
        prog.build().unwrap();
        assert!(prog.is_built_for(0));
        assert!(!prog.is_bitstream());
    }

    #[test]
    fn bad_source_yields_build_failure_with_log() {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::from_source(&ctx, "__kernel void broken(");
        let err = prog.build().unwrap_err();
        assert_eq!(err.status(), Some(Status::BuildProgramFailure));
        assert!(prog.build_log().contains("error"));
    }

    #[test]
    fn source_program_refuses_fpga() {
        let p = Platform::local(&[DeviceKind::Fpga]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::from_source(&ctx, "__kernel void f() {}");
        let err = prog.build().unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidOperation));
    }

    #[test]
    fn missing_bitstream_kernel_fails_build() {
        let p = Platform::local(&[DeviceKind::Fpga]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::with_bitstream_kernels(&ctx, ["ghost_kernel"]);
        let err = prog.build().unwrap_err();
        assert_eq!(err.status(), Some(Status::BuildProgramFailure));
    }

    #[test]
    fn rebuild_is_idempotent() {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::from_source(&ctx, "__kernel void f(__global int* a) { a[0] = 1; }");
        prog.build().unwrap();
        prog.build().unwrap(); // second build skips already-built devices
    }
}
