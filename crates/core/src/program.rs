//! `cl_program` objects.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use haocl_proto::ids::ProgramId;
use haocl_proto::messages::{ApiCall, ApiReply, DeviceKind, WireKernelReport};
use haocl_sim::Phase;

use crate::context::Context;
use crate::error::{Error, Status};
use crate::platform::{Device, PlatformInner};

pub(crate) enum ProgramForm {
    /// OpenCL C source, compiled on CPU/GPU nodes.
    Source(String),
    /// Names of pre-built bitstream kernels (FPGA path, also usable as a
    /// native fast path on other devices).
    Bitstream(Vec<String>),
}

pub(crate) struct ProgramInner {
    pub(crate) platform: Arc<PlatformInner>,
    pub(crate) context: Context,
    pub(crate) id: ProgramId,
    pub(crate) form: ProgramForm,
    /// Devices (global indices) the program has been built for.
    pub(crate) built: Mutex<HashSet<usize>>,
    build_log: Mutex<String>,
    /// Per-kernel static-analysis summaries from the last source build.
    reports: Mutex<Vec<WireKernelReport>>,
    /// Whether error-severity analysis findings fail [`Program::build`]
    /// (`clBuildProgram` semantics). On by default.
    enforce_analysis: AtomicBool,
}

/// An OpenCL program: source text or a set of pre-built kernels, built
/// per device.
#[derive(Clone)]
pub struct Program {
    pub(crate) inner: Arc<ProgramInner>,
}

impl Program {
    /// Creates a program from OpenCL C source
    /// (`clCreateProgramWithSource`).
    pub fn from_source(context: &Context, source: impl Into<String>) -> Self {
        Self::with_form(context, ProgramForm::Source(source.into()))
    }

    /// Creates a program from pre-built bitstream kernel names (the
    /// `clCreateProgramWithBinary` analogue; required for FPGA devices,
    /// §III-D).
    pub fn with_bitstream_kernels<I, S>(context: &Context, kernels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::with_form(
            context,
            ProgramForm::Bitstream(kernels.into_iter().map(Into::into).collect()),
        )
    }

    fn with_form(context: &Context, form: ProgramForm) -> Self {
        let platform = Arc::clone(&context.platform);
        let id = ProgramId::new(platform.ids.next());
        Program {
            inner: Arc::new(ProgramInner {
                platform,
                context: context.clone(),
                id,
                form,
                built: Mutex::new(HashSet::new()),
                build_log: Mutex::new(String::new()),
                reports: Mutex::new(Vec::new()),
                enforce_analysis: AtomicBool::new(true),
            }),
        }
    }

    /// Builds the program for every device in its context
    /// (`clBuildProgram`).
    ///
    /// Source programs are rejected by FPGA devices; bitstream programs
    /// load on any device whose node's registry holds the named kernels.
    ///
    /// # Errors
    ///
    /// [`Status::BuildProgramFailure`] with the build log on compile or
    /// load failure; [`Status::InvalidOperation`] when source meets FPGA.
    pub fn build(&self) -> Result<(), Error> {
        let devices = self.inner.context.devices().to_vec();
        for device in &devices {
            self.build_for(device)?;
        }
        Ok(())
    }

    /// Builds the program for one device, even a device outside the
    /// program's original context — how an already-built program reaches
    /// a node that joined the cluster after the build. Idempotent per
    /// device.
    ///
    /// # Errors
    ///
    /// As [`Program::build`].
    pub fn build_for(&self, device: &Device) -> Result<(), Error> {
        {
            if self.inner.built.lock().contains(&device.index) {
                return Ok(());
            }
            let call = match &self.inner.form {
                ProgramForm::Source(source) => {
                    if device.kind() == DeviceKind::Fpga {
                        return Err(Error::api(
                            Status::InvalidOperation,
                            format!(
                                "device {} is an FPGA: build from source is not supported, \
                                 use Program::with_bitstream_kernels",
                                device.index()
                            ),
                        ));
                    }
                    ApiCall::BuildProgram {
                        device: device.device_index(),
                        program: self.inner.id,
                        source: source.clone(),
                    }
                }
                ProgramForm::Bitstream(kernels) => ApiCall::LoadBitstream {
                    device: device.device_index(),
                    program: self.inner.id,
                    kernels: kernels.clone(),
                },
            };
            let outcome = self
                .inner
                .platform
                .call_traced(device.node(), call, Phase::Init)?;
            match outcome.reply {
                ApiReply::BuildLog {
                    ok: true,
                    log,
                    reports,
                } => {
                    // Nodes compile WarnOnly (mechanism); whether analysis
                    // errors fail the build is host policy, decided here.
                    let errors = reports.iter().map(|r| r.errors).sum::<u32>();
                    *self.inner.build_log.lock() = log.clone();
                    if !reports.is_empty() {
                        *self.inner.reports.lock() = reports;
                    }
                    if errors > 0 && self.inner.enforce_analysis.load(Ordering::Relaxed) {
                        return Err(Error::api(Status::BuildProgramFailure, log));
                    }
                    self.inner.built.lock().insert(device.index);
                }
                ApiReply::BuildLog {
                    ok: false,
                    log,
                    reports,
                } => {
                    *self.inner.build_log.lock() = log.clone();
                    *self.inner.reports.lock() = reports;
                    return Err(Error::api(Status::BuildProgramFailure, log));
                }
                other => {
                    return Err(Error::Transport(format!("build answered with {other:?}")));
                }
            }
        }
        Ok(())
    }

    /// Disables (or re-enables) failing the build on error-severity
    /// static-analysis findings — the escape hatch for kernels the
    /// conservative analyzer rejects but the author knows to be safe.
    /// Warnings always stay in the [build log](Self::build_log).
    pub fn set_analysis_enforced(&self, enforced: bool) {
        self.inner
            .enforce_analysis
            .store(enforced, Ordering::Relaxed);
    }

    /// Per-kernel static-analysis summaries from the last source build
    /// (empty before [`build`](Self::build) and for bitstream programs).
    /// The scheduler uses these to seed placement hints.
    pub fn kernel_reports(&self) -> Vec<WireKernelReport> {
        self.inner.reports.lock().clone()
    }

    /// The last build log (`clGetProgramBuildInfo(CL_PROGRAM_BUILD_LOG)`).
    pub fn build_log(&self) -> String {
        self.inner.build_log.lock().clone()
    }

    /// Whether the program has been built for `device_index`.
    pub fn is_built_for(&self, device_index: usize) -> bool {
        self.inner.built.lock().contains(&device_index)
    }

    /// The context the program belongs to.
    pub fn context(&self) -> &Context {
        &self.inner.context
    }

    /// Whether this is a bitstream (pre-built) program.
    pub fn is_bitstream(&self) -> bool {
        matches!(self.inner.form, ProgramForm::Bitstream(_))
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Program({}, {})",
            self.inner.id,
            if self.is_bitstream() {
                "bitstream"
            } else {
                "source"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{DeviceType, Platform};

    #[test]
    fn source_program_builds_on_gpu() {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::from_source(&ctx, "__kernel void f(__global int* a) { a[0] = 1; }");
        prog.build().unwrap();
        assert!(prog.is_built_for(0));
        assert!(!prog.is_bitstream());
    }

    #[test]
    fn bad_source_yields_build_failure_with_log() {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::from_source(&ctx, "__kernel void broken(");
        let err = prog.build().unwrap_err();
        assert_eq!(err.status(), Some(Status::BuildProgramFailure));
        assert!(prog.build_log().contains("error"));
    }

    #[test]
    fn source_program_refuses_fpga() {
        let p = Platform::local(&[DeviceKind::Fpga]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::from_source(&ctx, "__kernel void f() {}");
        let err = prog.build().unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidOperation));
    }

    #[test]
    fn missing_bitstream_kernel_fails_build() {
        let p = Platform::local(&[DeviceKind::Fpga]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::with_bitstream_kernels(&ctx, ["ghost_kernel"]);
        let err = prog.build().unwrap_err();
        assert_eq!(err.status(), Some(Status::BuildProgramFailure));
    }

    const DIVERGENT_SRC: &str = r#"__kernel void div(__global int* a) {
        if (get_local_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
        a[get_global_id(0)] = 1;
    }"#;

    #[test]
    fn analysis_errors_fail_the_build_by_default() {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::from_source(&ctx, DIVERGENT_SRC);
        let err = prog.build().unwrap_err();
        assert_eq!(err.status(), Some(Status::BuildProgramFailure));
        assert!(prog.build_log().contains("barrier divergence"));
        assert!(!prog.is_built_for(0));
    }

    #[test]
    fn analysis_enforcement_can_be_waived() {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::from_source(&ctx, DIVERGENT_SRC);
        prog.set_analysis_enforced(false);
        prog.build().unwrap();
        assert!(prog.is_built_for(0));
        // The finding still lands in the log and the reports.
        assert!(prog.build_log().contains("barrier divergence"));
        let reports = prog.kernel_reports();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].errors >= 1);
    }

    #[test]
    fn clean_build_exposes_kernel_features() {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let src = r#"__kernel void saxpy(__global float* y, __global const float* x, float a) {
            int i = get_global_id(0);
            y[i] = y[i] + a * x[i];
        }"#;
        let prog = Program::from_source(&ctx, src);
        prog.build().unwrap();
        let reports = prog.kernel_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kernel, "saxpy");
        assert_eq!(reports[0].errors, 0);
        assert!(reports[0].arithmetic_intensity > 0.0);
        assert_eq!(reports[0].barrier_count, 0);
    }

    #[test]
    fn rebuild_is_idempotent() {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let prog = Program::from_source(&ctx, "__kernel void f(__global int* a) { a[0] = 1; }");
        prog.build().unwrap();
        prog.build().unwrap(); // second build skips already-built devices
    }
}
