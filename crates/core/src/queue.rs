//! `cl_command_queue` objects.
//!
//! Buffer transfers keep the paper's synchronous host semantics (§III-C:
//! the host "will wait for the response message and then take the next
//! action"). Kernel launches ride the pipelined backbone instead:
//! `enqueue_nd_range_kernel` submits the launch without blocking and
//! returns a pending [`Event`] that resolves when the NMP's response
//! arrives — on [`Event::wait`], a profiling accessor, [`finish`], or a
//! dependent operation on a buffer the launch wrote. Dependent work is
//! kept correct by the buffers themselves: every coherence entry point
//! settles the in-flight launches registered against the buffer first.
//!
//! [`finish`]: CommandQueue::finish

use std::sync::Arc;

use haocl_kernel::NdRange;
use haocl_obs::{names, phase_from_name, Span, TraceCtx};
use haocl_proto::messages::{ApiCall, ApiReply, WireArg, WireCost, WireLaunchPart, WireNdRange};
use haocl_sim::{Phase, SimTime};

use crate::buffer::Buffer;
use crate::context::Context;
use crate::error::{Error, Status};
use crate::event::{CommandType, Event, Profile};
use crate::kernel::{Kernel, StoredArg};
use crate::platform::Device;

/// One constituent of a (possibly fused) dispatch: a kernel with a
/// snapshot of its bound arguments and its launch geometry. The
/// [`crate::auto::AutoScheduler`] captures these when a
/// [`crate::graph::LaunchGraph`] is recorded, so later `set_arg` calls
/// cannot retroactively change an already-captured launch.
pub(crate) struct LaunchPart {
    pub(crate) kernel: Kernel,
    pub(crate) args: Vec<StoredArg>,
    pub(crate) range: NdRange,
}

/// An in-order command queue bound to one device.
#[derive(Clone)]
pub struct CommandQueue {
    context: Context,
    device: Device,
    /// Completion time of the latest asynchronous launch (clFinish
    /// target). Shared across clones of the queue.
    last_end: Arc<parking_lot::Mutex<SimTime>>,
    /// Launches submitted on this queue that have not been resolved yet;
    /// drained by [`CommandQueue::finish`]. Shared across clones.
    pending: Arc<parking_lot::Mutex<Vec<Event>>>,
}

impl CommandQueue {
    /// Creates a queue on `device` (`clCreateCommandQueue`).
    ///
    /// # Errors
    ///
    /// [`Status::InvalidDevice`] if `device` is not in `context`.
    pub fn new(context: &Context, device: &Device) -> Result<Self, Error> {
        if !context.contains(device) {
            return Err(Error::api(
                Status::InvalidDevice,
                format!("device {} is not in the context", device.index()),
            ));
        }
        Ok(CommandQueue {
            context: context.clone(),
            device: device.clone(),
            last_end: Arc::new(parking_lot::Mutex::new(SimTime::ZERO)),
            pending: Arc::new(parking_lot::Mutex::new(Vec::new())),
        })
    }

    /// The queue's device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The queue's context.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// Writes host data into a buffer (`clEnqueueWriteBuffer`).
    ///
    /// # Errors
    ///
    /// [`Status::InvalidValue`] for out-of-range writes; transport errors
    /// otherwise.
    pub fn enqueue_write_buffer(
        &self,
        buffer: &Buffer,
        offset: u64,
        data: &[u8],
    ) -> Result<Event, Error> {
        let queued = self.now();
        buffer.inner.host_write(&self.device, offset, data)?;
        let end = self.now();
        Ok(Event::new(CommandType::WriteBuffer, queued, queued, end, 0))
    }

    /// Reads a buffer back to host memory (`clEnqueueReadBuffer`).
    ///
    /// # Errors
    ///
    /// [`Status::InvalidValue`] for out-of-range reads; transport errors
    /// otherwise.
    pub fn enqueue_read_buffer(
        &self,
        buffer: &Buffer,
        offset: u64,
        out: &mut [u8],
    ) -> Result<Event, Error> {
        let queued = self.now();
        buffer.inner.host_read(offset, out)?;
        let end = self.now();
        Ok(Event::new(CommandType::ReadBuffer, queued, queued, end, 0))
    }

    /// Modeled write: charges the transfer of `len` bytes into a
    /// [`Buffer::new_modeled`] buffer without carrying data.
    ///
    /// # Errors
    ///
    /// [`Status::InvalidOperation`] on a non-modeled buffer;
    /// [`Status::InvalidValue`] for out-of-range writes.
    pub fn enqueue_write_buffer_modeled(
        &self,
        buffer: &Buffer,
        offset: u64,
        len: u64,
    ) -> Result<Event, Error> {
        let queued = self.now();
        buffer.inner.host_write_modeled(&self.device, offset, len)?;
        let end = self.now();
        Ok(Event::new(CommandType::WriteBuffer, queued, queued, end, 0))
    }

    /// Modeled read: charges the pull of `len` bytes from a
    /// [`Buffer::new_modeled`] buffer without carrying data.
    ///
    /// # Errors
    ///
    /// [`Status::InvalidOperation`] on a non-modeled buffer;
    /// [`Status::InvalidValue`] for out-of-range reads.
    pub fn enqueue_read_buffer_modeled(
        &self,
        buffer: &Buffer,
        offset: u64,
        len: u64,
    ) -> Result<Event, Error> {
        let queued = self.now();
        buffer.inner.host_read_modeled(offset, len)?;
        let end = self.now();
        Ok(Event::new(CommandType::ReadBuffer, queued, queued, end, 0))
    }

    /// Copies between buffers on this queue's device
    /// (`clEnqueueCopyBuffer`).
    ///
    /// # Errors
    ///
    /// [`Status::InvalidValue`] for out-of-range ranges; transport errors
    /// otherwise.
    pub fn enqueue_copy_buffer(
        &self,
        src: &Buffer,
        dst: &Buffer,
        src_offset: u64,
        dst_offset: u64,
        len: u64,
    ) -> Result<Event, Error> {
        if src_offset + len > src.size() || dst_offset + len > dst.size() {
            return Err(Error::api(
                Status::InvalidValue,
                "copy range outside buffer bounds",
            ));
        }
        let queued = self.now();
        src.inner.make_current_on(&self.device)?;
        dst.inner.make_current_on(&self.device)?;
        let outcome = self.device.platform.call_traced(
            self.device.node(),
            ApiCall::CopyBuffer {
                device: self.device.device_index(),
                src: src.inner.wire_id_on(self.device.node()),
                dst: dst.inner.wire_id_on(self.device.node()),
                src_offset,
                dst_offset,
                len,
            },
            Phase::DataTransfer,
        )?;
        dst.inner.note_device_write_full(&self.device);
        Ok(Event::new(
            CommandType::CopyBuffer,
            queued,
            queued,
            outcome.node_completed,
            0,
        ))
    }

    /// Launches a kernel across `range` (`clEnqueueNDRangeKernel`).
    ///
    /// Buffer arguments are made current on this queue's device first
    /// (transfers are charged to the `DataTransfer` phase). The launch
    /// itself is *submitted* on the pipelined backbone without waiting
    /// for the node's response: the returned [`Event`] is pending and
    /// resolves — performing the coherence and profiling bookkeeping —
    /// when the response is first observed. Remote launch failures
    /// therefore surface on [`Event::wait`], not here.
    ///
    /// # Errors
    ///
    /// [`Status::InvalidKernelArgs`] if any argument is unset; staging
    /// or submission transport failures.
    pub fn enqueue_nd_range_kernel(&self, kernel: &Kernel, range: NdRange) -> Result<Event, Error> {
        self.enqueue_nd_range_kernel_traced(kernel, range, None)
    }

    /// [`enqueue_nd_range_kernel`](Self::enqueue_nd_range_kernel) with an
    /// explicit parent trace context.
    ///
    /// With tracing enabled this launch records a root span (or a child
    /// of `parent`, when given — the [`crate::auto::AutoScheduler`] nests
    /// launches under its placement span this way) covering the
    /// submit-to-response interval, plus the fabric hops it synthesizes
    /// and the NMP/VM spans the node ships back in its response — one
    /// causally connected tree per enqueue. With tracing off, `parent`
    /// is ignored and this is exactly `enqueue_nd_range_kernel`.
    ///
    /// # Errors
    ///
    /// Same as [`enqueue_nd_range_kernel`](Self::enqueue_nd_range_kernel).
    pub fn enqueue_nd_range_kernel_traced(
        &self,
        kernel: &Kernel,
        range: NdRange,
        parent: Option<TraceCtx>,
    ) -> Result<Event, Error> {
        let args = kernel.bound_args()?;
        self.enqueue_launch_parts_traced(
            vec![LaunchPart {
                kernel: kernel.clone(),
                args,
                range,
            }],
            parent,
        )
    }

    /// Submits one wire command covering `parts`: the plain
    /// `LaunchKernel` path for a single part (byte-identical to
    /// [`enqueue_nd_range_kernel`](Self::enqueue_nd_range_kernel)), or
    /// one `LaunchFused` command whose constituents the NMP executes
    /// back-to-back under a single dispatch. Callers must only pass
    /// multiple parts the fusion prover approved (see [`crate::graph`]):
    /// this method trusts the plan and does not re-check legality.
    ///
    /// # Errors
    ///
    /// Staging or submission transport failures; remote launch failures
    /// surface on the returned [`Event`].
    pub(crate) fn enqueue_launch_parts_traced(
        &self,
        parts: Vec<LaunchPart>,
        parent: Option<TraceCtx>,
    ) -> Result<Event, Error> {
        assert!(!parts.is_empty(), "a dispatch needs at least one part");
        let queued = self.now();
        // Stage buffer arguments onto this device. This settles earlier
        // launches against these buffers, so same-buffer launches
        // serialize while independent launches pipeline.
        for part in &parts {
            for arg in &part.args {
                if let StoredArg::Buffer(b) = arg {
                    b.inner.make_current_on(&self.device)?;
                }
            }
        }
        let mut wire_parts = Vec::with_capacity(parts.len());
        for part in &parts {
            let remote_kernel = part.kernel.ensure_remote(&self.device)?;
            let wire_args: Vec<WireArg> = part
                .args
                .iter()
                .map(|a| match a {
                    StoredArg::Buffer(b) => WireArg::Buffer(b.inner.wire_id_on(self.device.node())),
                    StoredArg::Scalar(w) => *w,
                    StoredArg::Local(bytes) => WireArg::LocalBytes(*bytes),
                })
                .collect();
            let cost = part.kernel.cost();
            wire_parts.push(WireLaunchPart {
                kernel: remote_kernel,
                args: wire_args,
                range: WireNdRange {
                    work_dim: part.range.work_dim,
                    global: part.range.global,
                    local: part.range.local,
                },
                cost: WireCost {
                    flops: cost.total_flops(),
                    bytes_read: cost.total_bytes_read(),
                    bytes_written: cost.total_bytes_written(),
                    uniform: cost.is_uniform(),
                    streaming: cost.is_streaming(),
                },
            });
        }
        let started = self.now();
        let obs = &self.device.platform.obs;
        // The root span's id is allocated up front — the NMP parents its
        // dispatch span under it over the wire — but the span itself is
        // recorded at resolve time, once its end is known.
        let root = obs.enabled().then(|| {
            let trace = parent.map_or_else(|| obs.recorder.new_trace(), |c| c.trace);
            (trace, obs.recorder.next_span_id(), parent.map(|c| c.parent))
        });
        let ctx = root.map(|(trace, id, _)| TraceCtx::new(trace, id));
        let fused_len = parts.len();
        let kernel_name = parts
            .iter()
            .map(|p| p.kernel.name())
            .collect::<Vec<_>>()
            .join("+");
        let fidelity = parts[0].kernel.fidelity();
        let call = if fused_len == 1 {
            let mut single = wire_parts;
            let part = single.pop().expect("one part");
            self.device.platform.host().submit_traced(
                self.device.node(),
                ApiCall::LaunchKernel {
                    device: self.device.device_index(),
                    kernel: part.kernel,
                    args: part.args,
                    range: part.range,
                    cost: part.cost,
                    fidelity,
                    shared: false,
                },
                ctx,
            )
        } else {
            self.device.platform.host().submit_traced(
                self.device.node(),
                ApiCall::LaunchFused {
                    device: self.device.device_index(),
                    fidelity,
                    shared: false,
                    parts: wire_parts,
                },
                ctx,
            )
        }
        .map_err(Error::from)?;
        // The resolver holds the buffers weakly: a buffer nobody can
        // reach anymore has no coherence state worth updating, and a
        // strong reference would cycle through the buffer's own
        // pending-writer list.
        let written: Vec<std::sync::Weak<crate::buffer::BufferInner>> = parts
            .iter()
            .flat_map(|p| p.args.iter())
            .filter_map(|a| match a {
                StoredArg::Buffer(b) => Some(Arc::downgrade(&b.inner)),
                _ => None,
            })
            .collect();
        let device = self.device.clone();
        let last_end = Arc::clone(&self.last_end);
        let event = Event::pending(CommandType::NdRangeKernel, move || {
            let wall_started = std::time::Instant::now();
            let outcome = call.wait()?;
            let wall_nanos = wall_started.elapsed().as_nanos() as u64;
            let platform = &device.platform;
            // Real requests/sec, next to the virtual model: the
            // wall-clock launch round trip, summed per node (feeds the
            // `haocl-top` WALL.RPS column).
            platform.obs.metrics.inc_counter(
                names::WALL_REQUESTS,
                &[("node", device.node_name())],
                1,
            );
            platform.obs.metrics.inc_counter(
                names::WALL_NANOS,
                &[("node", device.node_name())],
                wall_nanos,
            );
            // The enqueue RPC round-trip, now that its cost is known.
            platform.tracer.record(
                Phase::Compute,
                outcome.host_received.saturating_duration_since(started),
            );
            let ApiReply::LaunchDone {
                start_nanos,
                end_nanos,
                instructions,
            } = outcome.reply
            else {
                return Err(Error::Transport(format!(
                    "LaunchKernel answered with {:?}",
                    outcome.reply
                )));
            };
            // The launch may have written through any writable buffer
            // arg.
            for buffer in &written {
                if let Some(buffer) = buffer.upgrade() {
                    buffer.note_kernel_write(&device);
                }
            }
            let start = SimTime::from_nanos(start_nanos);
            let end = SimTime::from_nanos(end_nanos);
            if let Some((trace, root_id, outer_parent)) = root {
                let rec = &platform.obs.recorder;
                let node_name = device.node_name();
                let kind = format!("{:?}", device.kind());
                let span_name = if fused_len == 1 {
                    format!("enqueue_nd_range {kernel_name}")
                } else {
                    format!("enqueue_fused {kernel_name}")
                };
                let mut span = Span::new(
                    root_id,
                    trace,
                    outer_parent,
                    span_name,
                    Phase::Compute,
                    "host",
                    started,
                    outcome.host_received,
                )
                .attr("kernel", kernel_name.clone())
                .attr("device_kind", kind.clone())
                .attr("instructions", instructions.to_string());
                if fused_len > 1 {
                    span = span.attr("fused_parts", fused_len.to_string());
                }
                rec.record(span);
                // The node's side of the tree arrived inside the
                // response; its spans keep their wire-derived ids.
                let mut arrival = None;
                for w in &outcome.spans {
                    if w.name == "nmp.dispatch" {
                        arrival = Some(SimTime::from_nanos(w.start_nanos));
                    }
                    let mut span = Span::new(
                        haocl_obs::SpanId(w.id),
                        trace,
                        (w.parent != 0).then_some(haocl_obs::SpanId(w.parent)),
                        w.name.clone(),
                        phase_from_name(&w.category),
                        node_name,
                        SimTime::from_nanos(w.start_nanos),
                        SimTime::from_nanos(w.end_nanos),
                    );
                    // Wall-clock (monotonic) duration measured on the
                    // node, alongside the virtual interval; zero means
                    // the node did not measure.
                    if w.wall_nanos > 0 {
                        span = span.attr("wall_nanos", w.wall_nanos.to_string());
                    }
                    rec.record(span);
                }
                // Fabric hops are synthesized host-side — the fabric
                // never decodes payloads, so it cannot record them.
                if let Some(arrival) = arrival {
                    rec.record(Span::new(
                        rec.next_span_id(),
                        trace,
                        Some(root_id),
                        "fabric.request",
                        Phase::DataTransfer,
                        format!("fabric:{node_name}"),
                        started,
                        arrival,
                    ));
                    rec.record(Span::new(
                        rec.next_span_id(),
                        trace,
                        Some(root_id),
                        "fabric.reply",
                        Phase::DataTransfer,
                        format!("fabric:{node_name}"),
                        outcome.node_completed,
                        outcome.host_received,
                    ));
                }
                platform.obs.metrics.observe_nanos(
                    names::KERNEL_LATENCY,
                    &[("kernel", &kernel_name), ("kind", &kind)],
                    end_nanos.saturating_sub(start_nanos),
                );
            }
            // The kernel runs asynchronously until `end_nanos` — charge
            // its device time to the Compute phase and remember it for
            // `finish`.
            platform.tracer.record(Phase::Compute, end - start);
            {
                let mut last = last_end.lock();
                *last = (*last).max(end);
            }
            Ok(Profile {
                queued,
                start,
                end,
                instructions,
            })
        });
        for part in &parts {
            for arg in &part.args {
                if let StoredArg::Buffer(b) = arg {
                    b.inner.add_pending_writer(event.clone());
                }
            }
        }
        self.pending.lock().push(event.clone());
        let obs = &self.device.platform.obs;
        if obs.enabled() {
            obs.metrics.set_gauge(
                names::QUEUE_DEPTH,
                &[
                    ("device", &self.device.index().to_string()),
                    ("node", self.device.node_name()),
                ],
                self.pending.lock().len() as i64,
            );
        }
        Ok(event)
    }

    /// Blocks until all enqueued commands complete (`clFinish`).
    ///
    /// Transfers are synchronous already; kernel launches are pending
    /// events, so this resolves every launch submitted on this queue,
    /// advances the virtual clock to the completion of the latest one
    /// and returns the new time. A launch that failed keeps its error on
    /// its own [`Event`] (observe it with [`Event::wait`]).
    pub fn finish(&self) -> SimTime {
        let pending: Vec<Event> = std::mem::take(&mut *self.pending.lock());
        for event in pending {
            let _ = event.wait();
        }
        let obs = &self.device.platform.obs;
        if obs.enabled() {
            obs.metrics.set_gauge(
                names::QUEUE_DEPTH,
                &[
                    ("device", &self.device.index().to_string()),
                    ("node", self.device.node_name()),
                ],
                0,
            );
        }
        let last = *self.last_end.lock();
        self.device.platform.clock().advance_to(last);
        self.now()
    }

    /// Issues queued commands (`clFlush`) — a no-op: launches are
    /// submitted to the backbone at enqueue time.
    pub fn flush(&self) {}

    fn now(&self) -> SimTime {
        self.device.platform.clock().now()
    }
}

impl std::fmt::Debug for CommandQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CommandQueue(device {})", self.device.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemFlags;
    use crate::platform::{DeviceType, Platform};
    use crate::program::Program;
    use haocl_proto::messages::DeviceKind;

    fn gpu_setup() -> (Platform, Context, CommandQueue) {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let devs = p.devices(DeviceType::All);
        let ctx = Context::new(&p, &devs).unwrap();
        let q = CommandQueue::new(&ctx, &devs[0]).unwrap();
        (p, ctx, q)
    }

    #[test]
    fn queue_requires_context_membership() {
        let p = Platform::local(&[DeviceKind::Gpu, DeviceKind::Cpu]).unwrap();
        let devs = p.devices(DeviceType::All);
        let ctx = Context::new(&p, &devs[..1]).unwrap();
        let err = CommandQueue::new(&ctx, &devs[1]).unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidDevice));
    }

    #[test]
    fn write_launch_read_roundtrip() {
        let (_p, ctx, q) = gpu_setup();
        let prog = Program::from_source(
            &ctx,
            "__kernel void neg(__global int* a) { int i = get_global_id(0); a[i] = -a[i]; }",
        );
        prog.build().unwrap();
        let k = Kernel::new(&prog, "neg").unwrap();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 16).unwrap();
        let data: Vec<u8> = [1i32, 2, 3, 4]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        q.enqueue_write_buffer(&buf, 0, &data).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        let ev = q
            .enqueue_nd_range_kernel(&k, NdRange::linear(4, 2))
            .unwrap();
        assert!(ev.finished_at() >= ev.started_at());
        assert!(ev.instructions() > 0);
        let mut out = vec![0u8; 16];
        q.enqueue_read_buffer(&buf, 0, &mut out).unwrap();
        let vals: Vec<i32> = out
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![-1, -2, -3, -4]);
        q.finish();
    }

    #[test]
    fn copy_buffer_on_device() {
        let (_p, ctx, q) = gpu_setup();
        let a = Buffer::new(&ctx, MemFlags::READ_WRITE, 8).unwrap();
        let b = Buffer::new(&ctx, MemFlags::READ_WRITE, 8).unwrap();
        q.enqueue_write_buffer(&a, 0, &[1, 2, 3, 4, 5, 6, 7, 8])
            .unwrap();
        q.enqueue_copy_buffer(&a, &b, 4, 0, 4).unwrap();
        let mut out = vec![0u8; 8];
        q.enqueue_read_buffer(&b, 0, &mut out).unwrap();
        assert_eq!(out, vec![5, 6, 7, 8, 0, 0, 0, 0]);
    }

    #[test]
    fn copy_bounds_checked() {
        let (_p, ctx, q) = gpu_setup();
        let a = Buffer::new(&ctx, MemFlags::READ_WRITE, 8).unwrap();
        let b = Buffer::new(&ctx, MemFlags::READ_WRITE, 4).unwrap();
        let err = q.enqueue_copy_buffer(&a, &b, 0, 0, 8).unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidValue));
    }

    #[test]
    fn launch_with_unset_args_fails() {
        let (_p, ctx, q) = gpu_setup();
        let prog = Program::from_source(
            &ctx,
            "__kernel void f(__global int* a, int n) { a[0] = n; }",
        );
        prog.build().unwrap();
        let k = Kernel::new(&prog, "f").unwrap();
        let err = q
            .enqueue_nd_range_kernel(&k, NdRange::linear(1, 1))
            .unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidKernelArgs));
    }

    #[test]
    fn data_moves_between_devices_via_host() {
        // Write on device 0, compute on device 1, read back: coherence
        // must route through the host transparently.
        let p = Platform::local(&[DeviceKind::Gpu, DeviceKind::Gpu]).unwrap();
        let devs = p.devices(DeviceType::All);
        let ctx = Context::new(&p, &devs).unwrap();
        let q0 = CommandQueue::new(&ctx, &devs[0]).unwrap();
        let q1 = CommandQueue::new(&ctx, &devs[1]).unwrap();
        let prog = Program::from_source(
            &ctx,
            "__kernel void inc(__global int* a) { int i = get_global_id(0); a[i] = a[i] + 1; }",
        );
        prog.build().unwrap();
        let k = Kernel::new(&prog, "inc").unwrap();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 8).unwrap();
        let data: Vec<u8> = [10i32, 20].iter().flat_map(|v| v.to_le_bytes()).collect();
        q0.enqueue_write_buffer(&buf, 0, &data).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        // Launch on device 0, then on device 1: the second launch must see
        // the first launch's result.
        q0.enqueue_nd_range_kernel(&k, NdRange::linear(2, 1))
            .unwrap();
        q1.enqueue_nd_range_kernel(&k, NdRange::linear(2, 1))
            .unwrap();
        let mut out = vec![0u8; 8];
        q1.enqueue_read_buffer(&buf, 0, &mut out).unwrap();
        let vals: Vec<i32> = out
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![12, 22]);
    }

    #[test]
    fn modeled_pipeline_charges_time_without_data() {
        let (p, ctx, q) = gpu_setup();
        let prog = Program::from_source(
            &ctx,
            "__kernel void big(__global float* a) { int i = get_global_id(0); a[i] = 1.0f; }",
        );
        prog.build().unwrap();
        let k = Kernel::new(&prog, "big").unwrap();
        k.set_fidelity(crate::Fidelity::Modeled);
        k.set_cost(haocl_kernel::CostModel::new().flops(1e12).bytes_read(4e9));
        // A "1 GB" buffer that allocates nothing.
        let buf = Buffer::new_modeled(&ctx, MemFlags::READ_WRITE, 1 << 30).unwrap();
        assert!(buf.is_modeled());
        let t0 = p.now();
        q.enqueue_write_buffer_modeled(&buf, 0, 1 << 30).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        let ev = q
            .enqueue_nd_range_kernel(&k, NdRange::linear(1 << 20, 256))
            .unwrap();
        q.enqueue_read_buffer_modeled(&buf, 0, 1 << 30).unwrap();
        // PCIe at 12 GB/s: 1 GiB each way ≈ 90 ms each; kernel ≈ 260 ms.
        let elapsed = p.now() - t0;
        assert!(
            elapsed > haocl_sim::SimDuration::from_millis(100),
            "{elapsed}"
        );
        assert_eq!(ev.instructions(), 0);
    }

    #[test]
    fn modeled_ops_rejected_on_real_buffers_and_vice_versa() {
        let (_p, ctx, q) = gpu_setup();
        let real = Buffer::new(&ctx, MemFlags::READ_WRITE, 8).unwrap();
        let modeled = Buffer::new_modeled(&ctx, MemFlags::READ_WRITE, 8).unwrap();
        assert_eq!(
            q.enqueue_write_buffer_modeled(&real, 0, 8)
                .unwrap_err()
                .status(),
            Some(Status::InvalidOperation)
        );
        assert_eq!(
            q.enqueue_write_buffer(&modeled, 0, &[1u8; 8])
                .unwrap_err()
                .status(),
            Some(Status::InvalidOperation)
        );
        let mut out = [0u8; 8];
        assert_eq!(
            q.enqueue_read_buffer(&modeled, 0, &mut out)
                .unwrap_err()
                .status(),
            Some(Status::InvalidOperation)
        );
    }

    #[test]
    fn full_fidelity_launch_on_modeled_buffer_fails_remotely() {
        let (_p, ctx, q) = gpu_setup();
        let prog = Program::from_source(&ctx, "__kernel void w(__global int* a) { a[0] = 1; }");
        prog.build().unwrap();
        let k = Kernel::new(&prog, "w").unwrap();
        let buf = Buffer::new_modeled(&ctx, MemFlags::READ_WRITE, 8).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        // Fidelity stays Full: the node must reject executing against a
        // virtual buffer. The launch submits without blocking, so the
        // remote rejection surfaces on the event.
        let ev = q
            .enqueue_nd_range_kernel(&k, NdRange::linear(1, 1))
            .unwrap();
        let err = ev.wait().unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidOperation));
    }

    #[test]
    fn independent_launches_pipeline_until_finish() {
        // Launches on disjoint buffers have no dependencies: all four
        // submit before any response is consumed, and `finish` resolves
        // the lot.
        let (_p, ctx, q) = gpu_setup();
        let prog = Program::from_source(&ctx, "__kernel void one(__global int* a) { a[0] = 1; }");
        prog.build().unwrap();
        let mut events = Vec::new();
        for _ in 0..4 {
            let k = Kernel::new(&prog, "one").unwrap();
            let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 4).unwrap();
            k.set_arg_buffer(0, &buf).unwrap();
            let ev = q
                .enqueue_nd_range_kernel(&k, NdRange::linear(1, 1))
                .unwrap();
            events.push((ev, buf));
        }
        q.finish();
        for (ev, buf) in events {
            assert!(ev.is_resolved());
            ev.wait().unwrap();
            let mut out = [0u8; 4];
            q.enqueue_read_buffer(&buf, 0, &mut out).unwrap();
            assert_eq!(i32::from_le_bytes(out), 1);
        }
    }

    #[test]
    fn events_report_phase_times() {
        let (p, ctx, q) = gpu_setup();
        p.reset_phases();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 1 << 20).unwrap();
        let data = vec![1u8; 1 << 20];
        q.enqueue_write_buffer(&buf, 0, &data).unwrap();
        let breakdown = p.phase_breakdown();
        // PCIe transfer of 1 MiB must have been charged to DataTransfer.
        assert!(breakdown.time(haocl_sim::Phase::DataTransfer) > haocl_sim::SimDuration::ZERO);
    }
}
