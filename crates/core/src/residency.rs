//! Versioned buffer-replica residency tracking.
//!
//! [`ResidencyTracker`] is the coherence brain extracted from the buffer
//! layer: every buffer carries a monotonically increasing *version*, and
//! every replica — the host shadow included, it is just another
//! [`Location`] — remembers which version it holds. A replica is
//! *current* iff its version equals the buffer's newest version. Writes
//! bump the version and leave the writer as the sole current replica;
//! syncs (transfers) mark the receiving replica current without bumping.
//!
//! Device replicas additionally remember the **routing epoch** of their
//! node at sync time, plus whether their content lineage is
//! **replayable**: established entirely by host-journaled traffic
//! (creates, writes, kernel launches), which failover replay re-executes
//! in order on the survivor *before* the bumped epoch becomes
//! observable. Bytes that reached the node via a direct peer transfer
//! are only re-pulled on replay and may race the failure, so a peer sync
//! taints the replica (and kernel writes propagate the taint — they
//! transform whatever was there).
//!
//! On [`ResidencyTracker::revalidate`], a replica whose recorded epoch
//! fell behind the node's live epoch is *refreshed* if replayable — the
//! journal rebuilt exactly its contents on the new route — and dropped
//! if tainted. If nothing current remains anywhere, the host shadow is
//! promoted as the best surviving copy.

use std::collections::{BTreeMap, BTreeSet};

/// Where a replica of a buffer lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Location {
    /// The host shadow copy.
    Host,
    /// A device, by platform-global device index.
    Device(usize),
}

#[derive(Debug, Clone, Copy)]
struct Replica {
    /// Version this replica holds.
    version: u64,
    /// Node routing epoch observed when the replica last synced.
    epoch: u32,
    /// Whether failover replay reconstructs this content bit-for-bit:
    /// true for host-journaled lineage, false once peer-transferred
    /// bytes entered the picture.
    replayable: bool,
}

/// Monotonically versioned replica map for one buffer.
#[derive(Debug, Default)]
pub(crate) struct ResidencyTracker {
    /// Newest version of the buffer contents.
    version: u64,
    /// Version the host shadow holds. Starts equal to `version`: a fresh
    /// buffer's zero-filled shadow *is* the newest contents.
    host_version: u64,
    /// Device replicas, keyed by platform-global device index. BTreeMap
    /// keeps owner selection deterministic.
    replicas: BTreeMap<usize, Replica>,
    /// Devices holding an allocation (regardless of currency).
    allocated: BTreeSet<usize>,
}

impl ResidencyTracker {
    pub(crate) fn new() -> Self {
        ResidencyTracker::default()
    }

    /// The newest version of the buffer contents.
    pub(crate) fn newest(&self) -> u64 {
        self.version
    }

    /// Records a write at `loc`: bumps the version and leaves `loc` as
    /// the sole current replica. `replayable` says whether failover
    /// replay reconstructs the resulting content (ignored for the host).
    pub(crate) fn record_write(&mut self, loc: Location, epoch: u32, replayable: bool) {
        self.version += 1;
        self.sync_at(loc, epoch, replayable);
    }

    /// Marks `loc` as holding the newest version (after a transfer).
    pub(crate) fn record_sync(&mut self, loc: Location, epoch: u32, replayable: bool) {
        self.sync_at(loc, epoch, replayable);
    }

    fn sync_at(&mut self, loc: Location, epoch: u32, replayable: bool) {
        match loc {
            Location::Host => self.host_version = self.version,
            Location::Device(dev) => {
                self.replicas.insert(
                    dev,
                    Replica {
                        version: self.version,
                        epoch,
                        replayable,
                    },
                );
            }
        }
    }

    /// Whether `dev`'s replica (if any) has a host-journaled lineage.
    /// A device with no replica is trivially replayable: whatever a
    /// kernel writes there derives only from journaled calls.
    pub(crate) fn replayable_at(&self, dev: usize) -> bool {
        self.replicas.get(&dev).is_none_or(|r| r.replayable)
    }

    /// Whether the host shadow holds the newest contents.
    pub(crate) fn host_current(&self) -> bool {
        self.host_version == self.version
    }

    /// Whether `dev` holds the newest contents under `live_epoch`.
    pub(crate) fn is_current(&self, dev: usize, live_epoch: u32) -> bool {
        self.replicas
            .get(&dev)
            .is_some_and(|r| r.version == self.version && r.epoch == live_epoch)
    }

    /// Settles device replicas against live node epochs after failovers.
    /// Replayable replicas are refreshed — the journal re-executed their
    /// whole lineage on the new route before the epoch bump became
    /// visible, so the survivor holds the same bytes. Tainted replicas
    /// (peer-fed) are dropped. If no current replica remains anywhere,
    /// promotes the host shadow: it is the best copy the cluster still
    /// has.
    pub(crate) fn revalidate(&mut self, live_epoch_of: impl Fn(usize) -> u32) {
        self.replicas.retain(|&dev, r| {
            let live = live_epoch_of(dev);
            if r.epoch != live && r.replayable && live != u32::MAX {
                r.epoch = live;
            }
            r.epoch == live
        });
        let any_current =
            self.host_current() || self.replicas.values().any(|r| r.version == self.version);
        if !any_current {
            self.host_version = self.version;
        }
    }

    /// The current device with the smallest index, if any. Call after
    /// [`ResidencyTracker::revalidate`] so epochs are already settled.
    pub(crate) fn owner_device(&self) -> Option<usize> {
        self.replicas
            .iter()
            .find(|(_, r)| r.version == self.version)
            .map(|(&dev, _)| dev)
    }

    /// Records an allocation on `dev`.
    pub(crate) fn note_allocated(&mut self, dev: usize) {
        self.allocated.insert(dev);
    }

    /// Whether `dev` holds an allocation.
    pub(crate) fn is_allocated(&self, dev: usize) -> bool {
        self.allocated.contains(&dev)
    }

    /// Number of devices holding an allocation.
    pub(crate) fn allocated_count(&self) -> usize {
        self.allocated.len()
    }

    /// Devices holding an allocation, in ascending index order.
    pub(crate) fn allocated_devices(&self) -> Vec<usize> {
        self.allocated.iter().copied().collect()
    }

    /// Evicts one device's replica and allocation (the device's node is
    /// voluntarily leaving the cluster and its state has been migrated
    /// or is about to be destroyed). Unlike an epoch-driven drop in
    /// [`ResidencyTracker::revalidate`], eviction is unconditional —
    /// even a replayable lineage dies with a departed node, because its
    /// journal is cleared on retirement. If the evicted replica was the
    /// last current copy, the host shadow is promoted (the caller is
    /// expected to have refreshed it first when the bytes matter).
    pub(crate) fn evict_device(&mut self, dev: usize) {
        self.replicas.remove(&dev);
        self.allocated.remove(&dev);
        let any_current =
            self.host_current() || self.replicas.values().any(|r| r.version == self.version);
        if !any_current {
            self.host_version = self.version;
        }
    }

    /// Forgets every replica and allocation (buffer teardown).
    pub(crate) fn clear(&mut self) {
        self.replicas.clear();
        self.allocated.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tracker_has_host_current() {
        let t = ResidencyTracker::new();
        assert_eq!(t.newest(), 0);
        assert!(t.host_current());
        assert_eq!(t.owner_device(), None);
    }

    #[test]
    fn writes_bump_versions_and_invalidate_peers() {
        let mut t = ResidencyTracker::new();
        t.record_sync(Location::Device(0), 0, true);
        t.record_sync(Location::Device(1), 0, true);
        assert!(t.is_current(0, 0) && t.is_current(1, 0));
        t.record_write(Location::Device(0), 0, true);
        assert_eq!(t.newest(), 1);
        assert!(t.is_current(0, 0));
        assert!(!t.is_current(1, 0));
        assert!(!t.host_current());
        assert_eq!(t.owner_device(), Some(0));
    }

    #[test]
    fn sync_marks_current_without_bumping() {
        let mut t = ResidencyTracker::new();
        t.record_write(Location::Host, 0, true);
        t.record_sync(Location::Device(2), 0, true);
        assert_eq!(t.newest(), 1);
        assert!(t.host_current());
        assert!(t.is_current(2, 0));
    }

    #[test]
    fn epoch_mismatch_drops_a_tainted_replica() {
        let mut t = ResidencyTracker::new();
        t.record_write(Location::Device(0), 0, false);
        assert!(t.is_current(0, 0));
        assert!(!t.is_current(0, 1), "a bumped epoch must not be trusted");
        t.revalidate(|_| 1);
        assert_eq!(t.owner_device(), None);
        // With the only current replica gone, the shadow is promoted.
        assert!(t.host_current());
    }

    #[test]
    fn epoch_mismatch_refreshes_a_replayable_replica() {
        let mut t = ResidencyTracker::new();
        t.record_write(Location::Device(0), 0, true);
        t.revalidate(|_| 1);
        // Journal replay rebuilt the same bytes on the new route: the
        // replica survives at the live epoch, the shadow stays stale.
        assert!(t.is_current(0, 1));
        assert_eq!(t.owner_device(), Some(0));
        assert!(!t.host_current());
    }

    #[test]
    fn vanished_devices_are_dropped_even_when_replayable() {
        let mut t = ResidencyTracker::new();
        t.record_write(Location::Device(0), 0, true);
        t.revalidate(|_| u32::MAX);
        assert_eq!(t.owner_device(), None);
        assert!(t.host_current());
    }

    #[test]
    fn taint_tracking_defaults_open_and_sticks() {
        let mut t = ResidencyTracker::new();
        assert!(t.replayable_at(0), "no replica: trivially replayable");
        t.record_sync(Location::Device(0), 0, false);
        assert!(!t.replayable_at(0));
        t.record_write(Location::Device(0), 0, t.replayable_at(0));
        assert!(!t.replayable_at(0), "kernel writes propagate the taint");
        t.record_sync(Location::Device(0), 0, true);
        assert!(t.replayable_at(0), "a full host push resets the lineage");
    }

    #[test]
    fn revalidate_keeps_live_replicas() {
        let mut t = ResidencyTracker::new();
        t.record_write(Location::Device(0), 3, false);
        t.record_sync(Location::Device(1), 5, false);
        t.revalidate(|dev| if dev == 0 { 3 } else { 9 });
        assert_eq!(t.owner_device(), Some(0));
        assert!(!t.host_current());
    }

    #[test]
    fn evict_drops_even_replayable_replicas_and_promotes_the_shadow() {
        let mut t = ResidencyTracker::new();
        t.note_allocated(0);
        t.record_write(Location::Device(0), 0, true);
        assert!(!t.host_current());
        t.evict_device(0);
        assert_eq!(t.owner_device(), None);
        assert!(!t.is_allocated(0));
        assert!(t.host_current(), "last copy gone: shadow promoted");
        // Evicting one of several replicas leaves the others current.
        let mut t = ResidencyTracker::new();
        t.record_write(Location::Device(0), 0, true);
        t.record_sync(Location::Device(1), 0, true);
        t.evict_device(0);
        assert_eq!(t.owner_device(), Some(1));
        assert!(!t.host_current(), "a surviving replica is still newest");
    }

    #[test]
    fn allocations_track_independently_of_currency() {
        let mut t = ResidencyTracker::new();
        t.note_allocated(4);
        t.note_allocated(1);
        assert!(t.is_allocated(4));
        assert_eq!(t.allocated_count(), 2);
        assert_eq!(t.allocated_devices(), vec![1, 4]);
        t.clear();
        assert_eq!(t.allocated_count(), 0);
        assert!(!t.is_allocated(4));
    }
}
