//! The multi-tenant serving plane.
//!
//! The paper motivates HaoCL with "large-scale cloud systems that need
//! to serve massive requests from many users simultaneously" (§I). This
//! module is that tier: many concurrent client programs share one
//! [`Context`] + [`AutoScheduler`] through per-tenant [`Session`]s, and
//! a weighted-fair arbiter ([`haocl_sched::TenantScheduler`]) decides
//! whose launch dispatches next.
//!
//! * **Sessions** — [`ServingPlane::open_session`] registers a tenant
//!   (name, fair-share weight, quotas) and returns a cloneable handle
//!   that tags every submission. [`ServingPlane::default_session`] is
//!   the untagged single-tenant path: it bills the `"default"` tenant
//!   with user id 0, which makes [`Session::submit`] +
//!   [`ServingPlane::drain`] behave exactly like calling
//!   [`AutoScheduler::launch`] directly.
//! * **Fair-share scheduling** — submissions queue per tenant;
//!   [`ServingPlane::dispatch_one`] pops the backlogged tenant with the
//!   smallest WFQ virtual time and routes the launch through
//!   [`AutoScheduler::launch_tagged`]. Completed virtual compute time
//!   divided by the tenant's weight advances its virtual time, so a
//!   weight-2 tenant sustains twice the compute share of a weight-1
//!   tenant under contention.
//! * **Admission control** — every queue is bounded and every quota is
//!   checked *before* work enters the system: a full queue, exhausted
//!   compute budget or busted memory quota sheds the submission with a
//!   typed [`Error::Overloaded`] instead of queueing unboundedly.
//!   Shedding is free: no cluster state changes, the caller can retry
//!   after load drains.
//! * **Quota release** — [`Session::create_buffer`] charges the
//!   tenant's device-memory ledger; dropping the last [`Buffer`] handle
//!   releases the charge (see `Drop for BufferInner`), so quota flows
//!   back without an explicit free call.
//!
//! Everything here is host-side bookkeeping in *virtual time*: the
//! arbiter never advances the clock, so a default-session program
//! reproduces the single-tenant run bit for bit.

use std::sync::Arc;

use haocl_kernel::NdRange;
use haocl_obs::names;
use haocl_proto::ids::{TenantId, UserId};
use haocl_sched::{
    normalized_cost_nanos, AdmitError, QuotaLedger, SchedulingPolicy, TenantScheduler, TenantSpec,
    TenantStats,
};
use haocl_sim::SimDuration;

use crate::auto::AutoScheduler;
use crate::buffer::{Buffer, MemFlags, TenantCharge};
use crate::context::Context;
use crate::error::Error;
use crate::event::Event;
use crate::kernel::Kernel;

/// One queued launch: everything `dispatch_one` needs to route it.
struct Pending {
    kernel: Kernel,
    range: NdRange,
}

struct ServeInner {
    context: Context,
    auto: AutoScheduler,
    arbiter: TenantScheduler<Pending>,
    ledger: Arc<QuotaLedger>,
}

/// The serving tier: one shared [`AutoScheduler`], many tenants.
///
/// # Examples
///
/// ```
/// use haocl::serve::ServingPlane;
/// use haocl::{Context, DeviceKind, DeviceType, Platform};
/// use haocl_sched::{policies, TenantSpec};
///
/// let platform = Platform::local(&[DeviceKind::Gpu])?;
/// let ctx = Context::new(&platform, &platform.devices(DeviceType::All))?;
/// let plane = ServingPlane::new(&ctx, Box::new(policies::HeteroAware::new()))?;
/// let acme = plane.open_session(TenantSpec::new("acme").weight(2));
/// assert_eq!(acme.name(), "acme");
/// assert!(plane.is_idle());
/// # Ok::<(), haocl::Error>(())
/// ```
pub struct ServingPlane {
    inner: Arc<ServeInner>,
}

/// A tenant's handle onto the serving plane. Cloneable; clones share
/// the tenant's queue, quotas and accounting.
#[derive(Clone)]
pub struct Session {
    inner: Arc<ServeInner>,
    tenant: TenantId,
    user: UserId,
    name: String,
}

impl ServingPlane {
    /// Creates the serving tier over all of `context`'s devices, driven
    /// by `policy`. The `"default"` tenant (weight 1, unlimited quota)
    /// is pre-registered for the single-tenant path.
    ///
    /// # Errors
    ///
    /// Propagates queue-creation failures.
    pub fn new(context: &Context, policy: Box<dyn SchedulingPolicy>) -> Result<Self, Error> {
        Self::with_auto(context, AutoScheduler::new(context, policy)?)
    }

    /// Wraps an existing [`AutoScheduler`] (keeps its warmed profile
    /// database and quarantine state).
    ///
    /// # Errors
    ///
    /// None today; `Result` keeps room for validation.
    pub fn with_auto(context: &Context, auto: AutoScheduler) -> Result<Self, Error> {
        let arbiter = TenantScheduler::new();
        let ledger = Arc::new(QuotaLedger::new());
        arbiter.register(
            TenantId::DEFAULT,
            TenantSpec::new(haocl_obs::DEFAULT_TENANT),
        );
        ledger.open(TenantId::DEFAULT, haocl_obs::DEFAULT_TENANT, None);
        Ok(ServingPlane {
            inner: Arc::new(ServeInner {
                context: context.clone(),
                auto,
                arbiter,
                ledger,
            }),
        })
    }

    /// Opens a session for a new tenant: allocates its user id in the
    /// host's session registry and registers its weight and quotas with
    /// the arbiter and the memory ledger.
    pub fn open_session(&self, spec: TenantSpec) -> Session {
        let host = self.inner.context.platform.host();
        let user = host.sessions().open(&spec.name);
        let tenant = TenantId::new(user.raw());
        let name = spec.name.clone();
        self.inner
            .ledger
            .open(tenant, &spec.name, spec.quota.mem_bytes);
        self.inner.arbiter.register(tenant, spec);
        Session {
            inner: Arc::clone(&self.inner),
            tenant,
            user,
            name,
        }
    }

    /// The implicit single-tenant session: bills the `"default"` tenant
    /// under user id 0, exactly like an untagged
    /// [`AutoScheduler::launch`].
    pub fn default_session(&self) -> Session {
        Session {
            inner: Arc::clone(&self.inner),
            tenant: TenantId::DEFAULT,
            user: UserId::new(0),
            name: haocl_obs::DEFAULT_TENANT.to_string(),
        }
    }

    /// Closes a session: drops its queue (still-pending launches are
    /// discarded) and removes it from the host session registry.
    pub fn close_session(&self, session: &Session) {
        self.inner.arbiter.unregister(session.tenant);
        self.inner
            .context
            .platform
            .host()
            .sessions()
            .close(session.user);
    }

    /// Dispatches the next launch under the fair-share policy: the
    /// backlogged tenant with the smallest virtual time goes first.
    /// Returns `Ok(None)` when every queue is empty.
    ///
    /// The launch settles before returning (the scheduler's load
    /// tracking needs the completion time), charging its virtual
    /// duration to the tenant's fairness account and compute budget. A
    /// failed launch settles with zero consumption and propagates its
    /// error.
    ///
    /// # Errors
    ///
    /// Launch failures from [`AutoScheduler::launch_tagged`].
    pub fn dispatch_one(&self) -> Result<Option<(TenantId, Event, usize)>, Error> {
        let Some((tenant, pending)) = self.inner.arbiter.next() else {
            return Ok(None);
        };
        let user = UserId::new(tenant.raw());
        let name = self
            .inner
            .arbiter
            .name(tenant)
            .unwrap_or_else(|| haocl_obs::DEFAULT_TENANT.to_string());
        let host = self.inner.context.platform.host();
        if tenant != TenantId::DEFAULT {
            // Tag the wire path: every request this dispatch issues
            // carries the tenant's session id (§III-D's user ID field).
            // The default tenant keeps the host's ambient tag, so the
            // single-tenant path stays byte-identical.
            host.set_user(user);
        }
        let obs = &self.inner.context.platform.obs;
        let outcome = self
            .inner
            .auto
            .launch_tagged(&pending.kernel, pending.range, user, &name);
        let consumed = match &outcome {
            Ok((event, _)) => event.duration(),
            Err(_) => SimDuration::ZERO,
        };
        let throttled = self.inner.arbiter.complete(tenant, consumed);
        if throttled {
            obs.metrics
                .inc_counter(names::TENANT_THROTTLES, &[("tenant", &name)], 1);
        }
        let (event, device) = outcome?;
        obs.metrics
            .inc_counter(names::TENANT_LAUNCHES, &[("tenant", &name)], 1);
        obs.metrics.inc_counter(
            names::TENANT_COMPUTE_NANOS,
            &[("tenant", &name)],
            consumed.as_nanos(),
        );
        let depth = self
            .inner
            .arbiter
            .stats(tenant)
            .map_or(0, |s| s.pending as i64);
        obs.metrics
            .set_gauge(names::TENANT_QUEUE_DEPTH, &[("tenant", &name)], depth);
        host.sessions().note_launch(user);
        host.sessions().note_compute(user, consumed.as_nanos());
        Ok(Some((tenant, event, device)))
    }

    /// Dispatches until every queue is empty, returning the number of
    /// launches completed.
    ///
    /// # Errors
    ///
    /// Stops at the first launch failure.
    pub fn drain(&self) -> Result<u64, Error> {
        let mut count = 0;
        while self.dispatch_one()?.is_some() {
            count += 1;
        }
        Ok(count)
    }

    /// Dispatches until `budget` of virtual *compute* time has been
    /// consumed across all tenants or every queue empties, whichever
    /// first, returning the number of launches completed. The fairness
    /// harness uses this to measure shares *under contention* — queues
    /// stay backlogged across the window.
    ///
    /// # Errors
    ///
    /// Stops at the first launch failure.
    pub fn drain_budget(&self, budget: SimDuration) -> Result<u64, Error> {
        let mut spent = 0u64;
        let mut count = 0;
        while spent < budget.as_nanos() {
            let Some((_, event, _)) = self.dispatch_one()? else {
                break;
            };
            spent += event.duration().as_nanos();
            count += 1;
        }
        Ok(count)
    }

    /// Lifts a tenant's compute-budget throttle and resets its consumed
    /// budget (the start of a new accounting period).
    pub fn replenish(&self, tenant: TenantId) {
        self.inner.arbiter.replenish(tenant);
    }

    /// Whether the tenant's compute budget is exhausted.
    pub fn is_throttled(&self, tenant: TenantId) -> bool {
        self.inner.arbiter.is_throttled(tenant)
    }

    /// The tenant's accounting snapshot, with live memory-ledger bytes.
    pub fn stats(&self, tenant: TenantId) -> Option<TenantStats> {
        self.inner.arbiter.stats(tenant).map(|mut s| {
            s.mem_bytes = self.inner.ledger.used(tenant);
            s
        })
    }

    /// Every tenant's `(id, name, stats)`, ascending by id.
    pub fn all_stats(&self) -> Vec<(TenantId, String, TenantStats)> {
        self.inner
            .arbiter
            .all_stats()
            .into_iter()
            .map(|(id, name, mut s)| {
                s.mem_bytes = self.inner.ledger.used(id);
                (id, name, s)
            })
            .collect()
    }

    /// Total launches queued across all tenants.
    pub fn pending(&self) -> usize {
        self.inner.arbiter.pending()
    }

    /// Whether no launch is queued anywhere.
    pub fn is_idle(&self) -> bool {
        self.inner.arbiter.is_idle()
    }

    /// The scheduler underneath (profile database, quarantine,
    /// policy).
    pub fn auto(&self) -> &AutoScheduler {
        &self.inner.auto
    }
}

impl std::fmt::Debug for ServingPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingPlane")
            .field("arbiter", &self.inner.arbiter)
            .finish()
    }
}

impl Session {
    /// The tenant this session bills against.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The session's user id in the host registry.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The tenant's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Submits a launch through admission control into the tenant's
    /// queue. Nothing executes until the plane dispatches it
    /// ([`ServingPlane::dispatch_one`] / [`ServingPlane::drain`]).
    ///
    /// # Errors
    ///
    /// [`Error::Overloaded`] when the tenant's queue is full, its
    /// compute budget is exhausted, or the session was closed. A shed
    /// submission changes no cluster state.
    pub fn submit(&self, kernel: &Kernel, range: NdRange) -> Result<(), Error> {
        let est = normalized_cost_nanos(&kernel.cost());
        let queued = self.inner.arbiter.submit(
            self.tenant,
            Pending {
                kernel: kernel.clone(),
                range,
            },
            est,
        );
        let obs = &self.inner.context.platform.obs;
        match queued {
            Ok(()) => {
                let depth = self
                    .inner
                    .arbiter
                    .stats(self.tenant)
                    .map_or(0, |s| s.pending as i64);
                obs.metrics
                    .set_gauge(names::TENANT_QUEUE_DEPTH, &[("tenant", &self.name)], depth);
                Ok(())
            }
            Err(e) => Err(self.shed(e)),
        }
    }

    /// Creates a buffer billed to this tenant's device-memory quota.
    /// The charge releases when the last handle drops.
    ///
    /// # Errors
    ///
    /// [`Error::Overloaded`] when the charge would exceed the tenant's
    /// memory quota; buffer-creation failures otherwise (the charge is
    /// rolled back).
    pub fn create_buffer(&self, flags: MemFlags, size: u64) -> Result<Buffer, Error> {
        self.charged_buffer(flags, size, false)
    }

    /// [`Session::create_buffer`] for modeled (timing-only) buffers —
    /// modeled bytes still occupy modeled device memory, so they charge
    /// the quota all the same.
    ///
    /// # Errors
    ///
    /// As [`Session::create_buffer`].
    pub fn create_buffer_modeled(&self, flags: MemFlags, size: u64) -> Result<Buffer, Error> {
        self.charged_buffer(flags, size, true)
    }

    fn charged_buffer(&self, flags: MemFlags, size: u64, modeled: bool) -> Result<Buffer, Error> {
        if let Err(e) = self.inner.ledger.try_charge(self.tenant, size) {
            return Err(self.shed(e));
        }
        let made = if modeled {
            Buffer::new_modeled(&self.inner.context, flags, size)
        } else {
            Buffer::new(&self.inner.context, flags, size)
        };
        let obs = &self.inner.context.platform.obs;
        match made {
            Ok(buffer) => {
                buffer.attach_charge(TenantCharge {
                    ledger: Arc::clone(&self.inner.ledger),
                    tenant: self.tenant,
                    tenant_name: self.name.clone(),
                    bytes: size,
                });
                obs.metrics.set_gauge(
                    names::TENANT_MEM_BYTES,
                    &[("tenant", &self.name)],
                    self.inner.ledger.used(self.tenant) as i64,
                );
                Ok(buffer)
            }
            Err(e) => {
                self.inner.ledger.release(self.tenant, size);
                Err(e)
            }
        }
    }

    /// This tenant's accounting snapshot.
    pub fn stats(&self) -> Option<TenantStats> {
        self.inner.arbiter.stats(self.tenant).map(|mut s| {
            s.mem_bytes = self.inner.ledger.used(self.tenant);
            s
        })
    }

    /// Records the shed in metrics and the session registry, and wraps
    /// the admission error.
    fn shed(&self, e: AdmitError) -> Error {
        let reason = match &e {
            AdmitError::QueueFull { .. } => "queue_full",
            AdmitError::MemoryQuota { .. } => "memory_quota",
            AdmitError::ComputeBudget { .. } => "compute_budget",
            AdmitError::UnknownTenant { .. } => "unknown_tenant",
        };
        let obs = &self.inner.context.platform.obs;
        obs.metrics.inc_counter(
            names::TENANT_SHED,
            &[("tenant", &self.name), ("reason", reason)],
            1,
        );
        self.inner
            .context
            .platform
            .host()
            .sessions()
            .note_shed(self.user);
        Error::Overloaded(e)
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Session({} as {})", self.name, self.user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{DeviceType, Platform};
    use crate::program::Program;
    use haocl_kernel::CostModel;
    use haocl_proto::messages::DeviceKind;
    use haocl_sched::{policies, TenantQuota};

    fn plane_with_kernel() -> (Platform, ServingPlane, Kernel, Buffer) {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let plane = ServingPlane::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
        let prog = Program::from_source(
            &ctx,
            "__kernel void bump(__global int* a) { a[get_global_id(0)] += 1; }",
        );
        prog.build().unwrap();
        let k = Kernel::new(&prog, "bump").unwrap();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 16).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        (p, plane, k, buf)
    }

    #[test]
    fn default_session_drains_like_direct_launches() {
        let (_p, plane, k, _buf) = plane_with_kernel();
        let session = plane.default_session();
        for _ in 0..3 {
            session.submit(&k, NdRange::linear(4, 1)).unwrap();
        }
        assert_eq!(plane.pending(), 3);
        assert_eq!(plane.drain().unwrap(), 3);
        assert!(plane.is_idle());
        let stats = plane.stats(TenantId::DEFAULT).unwrap();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn bounded_queue_sheds_with_typed_error() {
        let (_p, plane, k, _buf) = plane_with_kernel();
        let s = plane
            .open_session(TenantSpec::new("tiny").quota(TenantQuota::unlimited().max_pending(2)));
        s.submit(&k, NdRange::linear(4, 1)).unwrap();
        s.submit(&k, NdRange::linear(4, 1)).unwrap();
        let err = s.submit(&k, NdRange::linear(4, 1)).unwrap_err();
        assert!(matches!(
            err,
            Error::Overloaded(AdmitError::QueueFull { limit: 2, .. })
        ));
        // The shed is visible in the tenant's stats and the registry.
        assert_eq!(s.stats().unwrap().shed, 1);
        assert_eq!(plane.drain().unwrap(), 2);
    }

    #[test]
    fn memory_quota_bounds_buffer_creation_until_drop() {
        let (_p, plane, _k, _buf) = plane_with_kernel();
        let s = plane
            .open_session(TenantSpec::new("memo").quota(TenantQuota::unlimited().mem_bytes(128)));
        let a = s.create_buffer(MemFlags::READ_WRITE, 96).unwrap();
        let err = s.create_buffer(MemFlags::READ_WRITE, 64).unwrap_err();
        assert!(matches!(
            err,
            Error::Overloaded(AdmitError::MemoryQuota { .. })
        ));
        assert_eq!(s.stats().unwrap().mem_bytes, 96);
        drop(a);
        // The drop released the charge: the same request now admits.
        let _b = s.create_buffer(MemFlags::READ_WRITE, 64).unwrap();
        assert_eq!(s.stats().unwrap().mem_bytes, 64);
    }

    #[test]
    fn compute_budget_throttles_until_replenished() {
        let (_p, plane, k, _buf) = plane_with_kernel();
        k.set_cost(CostModel::new().flops(1e9));
        // Budget 1.5× the launch's *normalized* estimate: the first
        // submit always admits, and repeated rounds must throttle —
        // either ahead of time (estimate would overrun) or at
        // settlement (consumption reached the limit).
        let est = normalized_cost_nanos(&k.cost());
        let s = plane.open_session(
            TenantSpec::new("capped")
                .quota(TenantQuota::unlimited().compute(SimDuration::from_nanos(est * 3 / 2))),
        );
        let mut shed = None;
        for _ in 0..64 {
            match s.submit(&k, NdRange::linear(4, 1)) {
                Ok(()) => plane.drain().map(|_| ()).unwrap(),
                Err(e) => {
                    shed = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(
            shed,
            Some(Error::Overloaded(AdmitError::ComputeBudget { .. }))
        ));
        assert!(plane.is_throttled(s.tenant()));
        plane.replenish(s.tenant());
        s.submit(&k, NdRange::linear(4, 1)).unwrap();
        assert_eq!(plane.drain().unwrap(), 1);
    }

    #[test]
    fn weighted_tenants_split_compute_fairly() {
        let (_p, plane, k, _buf) = plane_with_kernel();
        k.set_cost(CostModel::new().flops(1e9));
        let heavy = plane.open_session(TenantSpec::new("heavy").weight(2));
        let light = plane.open_session(TenantSpec::new("light"));
        // Calibrate one launch's virtual compute time so the drain
        // window admits ~20 of the 60 queued launches.
        heavy.submit(&k, NdRange::linear(4, 1)).unwrap();
        plane.drain().unwrap();
        let per_launch = plane.stats(heavy.tenant()).unwrap().compute_nanos;
        assert!(per_launch > 0);
        for _ in 0..30 {
            heavy.submit(&k, NdRange::linear(4, 1)).unwrap();
            light.submit(&k, NdRange::linear(4, 1)).unwrap();
        }
        // Drain a bounded window so both stay backlogged throughout:
        // shares are only meaningful under contention.
        plane
            .drain_budget(SimDuration::from_nanos(per_launch * 20))
            .unwrap();
        let h = plane.stats(heavy.tenant()).unwrap();
        let l = plane.stats(light.tenant()).unwrap();
        assert!(h.pending > 0 && l.pending > 0, "window must stay contended");
        let ratio = h.compute_nanos as f64 / l.compute_nanos as f64;
        assert!(
            (ratio - 2.0).abs() < 0.4,
            "2:1 weights must yield ~2:1 compute ({ratio:.2})"
        );
    }

    #[test]
    fn closed_sessions_shed_with_unknown_tenant() {
        let (_p, plane, k, _buf) = plane_with_kernel();
        let s = plane.open_session(TenantSpec::new("gone"));
        plane.close_session(&s);
        let err = s.submit(&k, NdRange::linear(4, 1)).unwrap_err();
        assert!(matches!(
            err,
            Error::Overloaded(AdmitError::UnknownTenant { .. })
        ));
    }
}
