//! Property tests for the residency/coherence state machine.
//!
//! A buffer's observable contents must match a trivial `Vec<u8>`
//! reference model no matter how host writes, host reads, kernel
//! writes, device-side copies and cross-device migrations interleave —
//! and no matter whether the bytes travelled through the host shadow or
//! over a direct NMP→NMP peer transfer. A second property replays the
//! same state machine on a two-node cluster under seeded chaos (drops,
//! duplication, delays, crashes with failover) and requires the final
//! bytes to stay bit-identical to the reference: journal replay plus
//! residency epoch invalidation must reconstruct every replica the
//! faults destroyed.

use std::time::Duration;

use proptest::prelude::*;

use haocl::{
    Buffer, ChaosPolicy, ChaosSpec, CommandQueue, Context, DeviceKind, DeviceType, Kernel,
    MemFlags, NdRange, Platform, Program, RecoveryPolicy,
};
use haocl_cluster::ClusterConfig;
use haocl_kernel::KernelRegistry;

/// Buffer size in bytes: 8 int lanes.
const SIZE: usize = 32;
const LANES: usize = SIZE / 4;

/// The kernel is a pure bitwise transform, so device execution and the
/// reference model agree exactly — no rounding, no overflow UB.
const SCRAMBLE_SRC: &str =
    "__kernel void scramble(__global int* a) { int i = get_global_id(0); a[i] = a[i] ^ (i + 1); }";

#[derive(Debug, Clone)]
enum Op {
    /// `clEnqueueWriteBuffer` of `data` at `offset` via device `dev`.
    HostWrite {
        buf: usize,
        dev: usize,
        offset: usize,
        data: Vec<u8>,
    },
    /// `clEnqueueReadBuffer`, checked against the reference immediately.
    HostRead {
        buf: usize,
        offset: usize,
        len: usize,
    },
    /// Launch `scramble` over the whole buffer on device `dev`
    /// (migrating the newest replica there first).
    KernelWrite { buf: usize, dev: usize },
    /// `clEnqueueCopyBuffer` from buffer 0 into buffer 1 (or back) on
    /// device `dev`.
    Copy {
        reverse: bool,
        dev: usize,
        src_offset: usize,
        dst_offset: usize,
        len: usize,
    },
}

fn op_strategy(devices: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0..2usize,
            0..devices,
            0..SIZE,
            proptest::collection::vec(any::<u8>(), 1..9)
        )
            .prop_map(|(buf, dev, offset, data)| Op::HostWrite {
                buf,
                dev,
                offset,
                data,
            }),
        (0..2usize, 0..SIZE, 1..SIZE + 1).prop_map(|(buf, offset, len)| Op::HostRead {
            buf,
            offset,
            len
        }),
        (0..2usize, 0..devices).prop_map(|(buf, dev)| Op::KernelWrite { buf, dev }),
        (any::<bool>(), 0..devices, 0..SIZE, 0..SIZE, 1..SIZE + 1).prop_map(
            |(reverse, dev, src_offset, dst_offset, len)| Op::Copy {
                reverse,
                dev,
                src_offset,
                dst_offset,
                len,
            }
        ),
    ]
}

/// Applies the scramble kernel to the reference model.
fn scramble_ref(model: &mut [u8]) {
    for i in 0..LANES {
        let mut v = i32::from_le_bytes(model[i * 4..i * 4 + 4].try_into().unwrap());
        v ^= (i + 1) as i32;
        model[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
}

/// Runs `ops` against `platform`, checking every read against the
/// reference model and the full final contents at the end.
fn check_against_reference(platform: &Platform, ops: &[Op]) {
    let devices = platform.devices(DeviceType::All);
    let ctx = Context::new(platform, &devices).unwrap();
    let queues: Vec<CommandQueue> = devices
        .iter()
        .map(|d| CommandQueue::new(&ctx, d).unwrap())
        .collect();
    let prog = Program::from_source(&ctx, SCRAMBLE_SRC);
    prog.build().unwrap();
    let kernel = Kernel::new(&prog, "scramble").unwrap();
    let buffers = [
        Buffer::new(&ctx, MemFlags::READ_WRITE, SIZE as u64).unwrap(),
        Buffer::new(&ctx, MemFlags::READ_WRITE, SIZE as u64).unwrap(),
    ];
    let mut model = [vec![0u8; SIZE], vec![0u8; SIZE]];

    for op in ops {
        match op {
            Op::HostWrite {
                buf,
                dev,
                offset,
                data,
            } => {
                let len = data.len().min(SIZE - offset);
                let data = &data[..len];
                queues[*dev]
                    .enqueue_write_buffer(&buffers[*buf], *offset as u64, data)
                    .unwrap();
                model[*buf][*offset..*offset + len].copy_from_slice(data);
            }
            Op::HostRead { buf, offset, len } => {
                let len = (*len).min(SIZE - offset);
                let mut out = vec![0u8; len];
                queues[0]
                    .enqueue_read_buffer(&buffers[*buf], *offset as u64, &mut out)
                    .unwrap();
                assert_eq!(out, model[*buf][*offset..*offset + len], "read {op:?}");
            }
            Op::KernelWrite { buf, dev } => {
                kernel.set_arg_buffer(0, &buffers[*buf]).unwrap();
                let ev = queues[*dev]
                    .enqueue_nd_range_kernel(&kernel, NdRange::linear(LANES as u64, 4))
                    .unwrap();
                ev.wait().unwrap();
                scramble_ref(&mut model[*buf]);
            }
            Op::Copy {
                reverse,
                dev,
                src_offset,
                dst_offset,
                len,
            } => {
                let len = (*len).min(SIZE - src_offset).min(SIZE - dst_offset);
                if len == 0 {
                    continue;
                }
                let (src, dst) = if *reverse { (1, 0) } else { (0, 1) };
                queues[*dev]
                    .enqueue_copy_buffer(
                        &buffers[src],
                        &buffers[dst],
                        *src_offset as u64,
                        *dst_offset as u64,
                        len as u64,
                    )
                    .unwrap();
                let slice = model[src][*src_offset..*src_offset + len].to_vec();
                model[dst][*dst_offset..*dst_offset + len].copy_from_slice(&slice);
            }
        }
    }
    for q in &queues {
        q.finish();
    }
    for (buf, model) in buffers.iter().zip(&model) {
        let mut out = vec![0u8; SIZE];
        queues[0].enqueue_read_buffer(buf, 0, &mut out).unwrap();
        assert_eq!(&out, model, "final contents diverged from the reference");
    }
}

fn node_hosts(config: &ClusterConfig) -> Vec<String> {
    config
        .nodes
        .iter()
        .map(|s| s.addr.split(':').next().unwrap_or(&s.addr).to_string())
        .collect()
}

fn chaotic_platform(seed: u64, spec: &str) -> Platform {
    let config = ClusterConfig::gpu_cluster(2);
    let platform = Platform::cluster(&config, KernelRegistry::new()).unwrap();
    let spec = ChaosSpec::parse(spec)
        .unwrap()
        .resolve_wildcards(&node_hosts(&config), seed);
    platform.install_chaos(ChaosPolicy::new(seed, spec));
    platform.set_recovery(Some(RecoveryPolicy {
        base_timeout: Duration::from_millis(10),
        max_attempts: 4,
        failover: true,
    }));
    platform
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Three devices on one node: every interleaving of host I/O, kernel
    /// writes, copies and migrations matches the reference byte model.
    #[test]
    fn coherence_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(3), 1..24)
    ) {
        let platform = Platform::local(
            &[DeviceKind::Gpu, DeviceKind::Gpu, DeviceKind::Gpu],
        ).unwrap();
        check_against_reference(&platform, &ops);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two real NMP nodes under a seeded lossy schedule: peer transfers,
    /// retransmissions and dedup must leave the bytes bit-identical.
    #[test]
    fn coherence_survives_lossy_chaos(
        seed in 0u64..1_000,
        ops in proptest::collection::vec(op_strategy(2), 1..12)
    ) {
        let platform = chaotic_platform(seed, "drop=0.05,dup=0.1,delay=0.2:200us");
        check_against_reference(&platform, &ops);
    }

    /// A node crashes mid-run and the host fails over: journal replay —
    /// including the companion pulls for peer-pushed replicas — plus
    /// residency epoch invalidation must reconstruct the exact bytes.
    #[test]
    fn coherence_survives_crash_failover(
        seed in 0u64..1_000,
        ops in proptest::collection::vec(op_strategy(2), 1..12)
    ) {
        let platform = chaotic_platform(seed, "crash=*@20,dup=0.1");
        check_against_reference(&platform, &ops);
    }
}
