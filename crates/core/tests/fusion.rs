//! Integration tests for fused dispatch: a prover-approved chain must
//! collapse into fewer wire commands while staying byte-identical to
//! the unfused replay, and every fusion decision must be visible in the
//! scheduler audit log.

use haocl::auto::AutoScheduler;
use haocl::graph::LaunchGraph;
use haocl::{Buffer, Context, DeviceKind, DeviceType, Kernel, MemFlags, Platform, Program};
use haocl_kernel::NdRange;
use haocl_sched::policies;

const N: u64 = 64;

const CHAIN_SRC: &str = r#"
    __kernel void square(__global int* y, __global const int* x, int n) {
        int i = get_global_id(0);
        if (i < n) y[i] = x[i] * x[i];
    }
    __kernel void add3(__global int* y, int n) {
        int i = get_global_id(0);
        if (i < n) y[i] = y[i] + 3;
    }
    __kernel void scatter(__global int* y, __global const int* idx, int n) {
        int i = get_global_id(0);
        if (i < n) y[idx[i]] = i;
    }
"#;

struct Rig {
    platform: Platform,
    auto: AutoScheduler,
    program: Program,
    ctx: Context,
}

fn rig() -> Rig {
    let platform = Platform::local(&[DeviceKind::Gpu]).unwrap();
    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let auto = AutoScheduler::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
    let program = Program::from_source(&ctx, CHAIN_SRC);
    program.build().unwrap();
    Rig {
        platform,
        auto,
        program,
        ctx,
    }
}

fn read_back(rig: &Rig, buf: &Buffer) -> Vec<i32> {
    let mut out = vec![0u8; (4 * N) as usize];
    rig.auto.queues()[0]
        .enqueue_read_buffer(buf, 0, &mut out)
        .unwrap();
    out.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Builds the square→add3 elementwise chain and dispatches it through a
/// graph with fusion toggled; returns the result vector and the report.
fn run_chain(fused: bool) -> (Vec<i32>, haocl::GraphReport, Rig) {
    let rig = rig();
    let x = Buffer::new(&rig.ctx, MemFlags::READ_ONLY, 4 * N).unwrap();
    let y = Buffer::new(&rig.ctx, MemFlags::READ_WRITE, 4 * N).unwrap();
    let seed: Vec<u8> = (0..N as i32).flat_map(|v| v.to_le_bytes()).collect();
    rig.auto.queues()[0]
        .enqueue_write_buffer(&x, 0, &seed)
        .unwrap();
    let square = Kernel::new(&rig.program, "square").unwrap();
    square.set_arg_buffer(0, &y).unwrap();
    square.set_arg_buffer(1, &x).unwrap();
    square.set_arg_i32(2, N as i32).unwrap();
    let add3 = Kernel::new(&rig.program, "add3").unwrap();
    add3.set_arg_buffer(0, &y).unwrap();
    add3.set_arg_i32(1, N as i32).unwrap();
    let mut graph = LaunchGraph::new();
    graph.set_fusion(fused);
    graph.add(&square, NdRange::linear(N, 8)).unwrap();
    graph.add(&add3, NdRange::linear(N, 8)).unwrap();
    let report = rig.auto.launch_graph(&graph).unwrap();
    let got = read_back(&rig, &y);
    (got, report, rig)
}

#[test]
fn fused_chain_is_byte_identical_and_saves_commands() {
    let (fused_vals, fused_report, _rig_f) = run_chain(true);
    let (unfused_vals, unfused_report, _rig_u) = run_chain(false);
    let expect: Vec<i32> = (0..N as i32).map(|i| i * i + 3).collect();
    assert_eq!(unfused_vals, expect, "unfused reference is correct");
    assert_eq!(fused_vals, unfused_vals, "fusion changed the bytes");
    assert_eq!(fused_report.nodes, 2);
    assert_eq!(
        fused_report.wire_launches, 1,
        "chain must fuse to one command"
    );
    assert_eq!(fused_report.fused_launches, 1);
    assert_eq!(fused_report.commands_saved, 1);
    assert_eq!(unfused_report.wire_launches, 2);
    assert_eq!(unfused_report.commands_saved, 0);
}

#[test]
fn audit_log_carries_lead_member_and_metric_counters() {
    let (_vals, report, rig) = run_chain(true);
    assert_eq!(report.decisions.len(), 2);
    assert_eq!(report.decisions[0].0, "square");
    let audit = rig.platform.render_audit_log();
    assert!(
        audit.contains("kernel=square+add3") && audit.contains("fused=lead:2"),
        "lead dispatch missing from audit log:\n{audit}"
    );
    assert!(
        audit.contains("kernel=add3") && audit.contains("fused=into:square"),
        "fused member missing from audit log:\n{audit}"
    );
    let metrics = rig.platform.render_metrics();
    assert!(
        metrics.contains("haocl_fused_launches_total 1"),
        "fused-launch counter missing:\n{metrics}"
    );
    assert!(
        metrics.contains("haocl_fusion_commands_saved_total 1"),
        "commands-saved counter missing:\n{metrics}"
    );
}

#[test]
fn unprovable_scatter_is_rejected_with_reason_in_audit() {
    let rig = rig();
    let y = Buffer::new(&rig.ctx, MemFlags::READ_WRITE, 4 * N).unwrap();
    let idx = Buffer::new(&rig.ctx, MemFlags::READ_ONLY, 4 * N).unwrap();
    let seed: Vec<u8> = (0..N as i32).flat_map(|v| v.to_le_bytes()).collect();
    rig.auto.queues()[0]
        .enqueue_write_buffer(&idx, 0, &seed)
        .unwrap();
    rig.auto.queues()[0]
        .enqueue_write_buffer(&y, 0, &seed)
        .unwrap();
    let add3 = Kernel::new(&rig.program, "add3").unwrap();
    add3.set_arg_buffer(0, &y).unwrap();
    add3.set_arg_i32(1, N as i32).unwrap();
    let scatter = Kernel::new(&rig.program, "scatter").unwrap();
    scatter.set_arg_buffer(0, &y).unwrap();
    scatter.set_arg_buffer(1, &idx).unwrap();
    scatter.set_arg_i32(2, N as i32).unwrap();
    let mut graph = LaunchGraph::new();
    graph.add(&add3, NdRange::linear(N, 8)).unwrap();
    graph.add(&scatter, NdRange::linear(N, 8)).unwrap();
    let report = rig.auto.launch_graph(&graph).unwrap();
    assert_eq!(report.wire_launches, 2, "unprovable scatter must not fuse");
    assert_eq!(report.fused_launches, 0);
    let audit = rig.platform.render_audit_log();
    assert!(
        audit.contains("fused=rejected:"),
        "rejection reason missing from audit log:\n{audit}"
    );
    // The scatter still executed: y[idx[i]] = i with idx = identity.
    let got = read_back(&rig, &y);
    let expect: Vec<i32> = (0..N as i32).collect();
    assert_eq!(got, expect);
}

/// A fused dispatch through a graph must leave the device contents
/// byte-identical to the same kernels enqueued one at a time through
/// the plain queue path (the VM oracle runs both for real).
#[test]
fn graph_matches_plain_enqueue_path() {
    let make_rig = rig;
    let rig = make_rig();
    let x = Buffer::new(&rig.ctx, MemFlags::READ_ONLY, 4 * N).unwrap();
    let y = Buffer::new(&rig.ctx, MemFlags::READ_WRITE, 4 * N).unwrap();
    let seed: Vec<u8> = (0..N as i32).flat_map(|v| (v * 7).to_le_bytes()).collect();
    rig.auto.queues()[0]
        .enqueue_write_buffer(&x, 0, &seed)
        .unwrap();
    let square = Kernel::new(&rig.program, "square").unwrap();
    square.set_arg_buffer(0, &y).unwrap();
    square.set_arg_buffer(1, &x).unwrap();
    square.set_arg_i32(2, N as i32).unwrap();
    let add3 = Kernel::new(&rig.program, "add3").unwrap();
    add3.set_arg_buffer(0, &y).unwrap();
    add3.set_arg_i32(1, N as i32).unwrap();
    let q = &rig.auto.queues()[0];
    q.enqueue_nd_range_kernel(&square, NdRange::linear(N, 8))
        .unwrap();
    q.enqueue_nd_range_kernel(&add3, NdRange::linear(N, 8))
        .unwrap();
    q.finish();
    let reference = read_back(&rig, &y);

    // Fresh platform, same work through a fused graph.
    let (fused_vals, report, _rig2) = {
        let rig2 = make_rig();
        let x2 = Buffer::new(&rig2.ctx, MemFlags::READ_ONLY, 4 * N).unwrap();
        let y2 = Buffer::new(&rig2.ctx, MemFlags::READ_WRITE, 4 * N).unwrap();
        rig2.auto.queues()[0]
            .enqueue_write_buffer(&x2, 0, &seed)
            .unwrap();
        let square2 = Kernel::new(&rig2.program, "square").unwrap();
        square2.set_arg_buffer(0, &y2).unwrap();
        square2.set_arg_buffer(1, &x2).unwrap();
        square2.set_arg_i32(2, N as i32).unwrap();
        let add32 = Kernel::new(&rig2.program, "add3").unwrap();
        add32.set_arg_buffer(0, &y2).unwrap();
        add32.set_arg_i32(1, N as i32).unwrap();
        let mut graph = LaunchGraph::new();
        graph.add(&square2, NdRange::linear(N, 8)).unwrap();
        graph.add(&add32, NdRange::linear(N, 8)).unwrap();
        let report = rig2.auto.launch_graph(&graph).unwrap();
        let vals = read_back(&rig2, &y2);
        (vals, report, rig2)
    };
    assert_eq!(report.wire_launches, 1);
    assert_eq!(
        fused_vals, reference,
        "fused graph diverged from plain path"
    );
}
