//! Integration tests for the multi-tenant serving plane: weighted
//! fair-share under contention, typed admission-control sheds, the
//! byte-identical default path, and per-tenant accounting under chaos.

use std::time::Duration;

use haocl::auto::AutoScheduler;
use haocl::serve::ServingPlane;
use haocl::{
    AdmitError, Buffer, ChaosPolicy, ChaosSpec, CommandQueue, Context, DeviceKind, DeviceType,
    Error, Kernel, MemFlags, NdRange, Platform, Program, RecoveryPolicy, TenantQuota, TenantSpec,
};
use haocl_cluster::ClusterConfig;
use haocl_kernel::{CostModel, KernelRegistry};
use haocl_proto::ids::TenantId;
use haocl_sched::policies;
use haocl_sim::SimDuration;

const SIZE: u64 = 32;
const LANES: u64 = SIZE / 4;

/// Order-sensitive integer churn: `k` applications from zeros give a
/// unique digest, so the device contents pin down exactly how many
/// launches really executed.
const CHURN_SRC: &str =
    "__kernel void churn(__global int* a) { int i = get_global_id(0); a[i] = a[i] * 3 + i; }";

fn churn_ref(applications: u64) -> Vec<u8> {
    let mut lanes = vec![0i32; LANES as usize];
    for _ in 0..applications {
        for (i, v) in lanes.iter_mut().enumerate() {
            *v = v.wrapping_mul(3).wrapping_add(i as i32);
        }
    }
    lanes.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn churn_kernel(ctx: &Context) -> Kernel {
    let prog = Program::from_source(ctx, CHURN_SRC);
    prog.build().unwrap();
    let k = Kernel::new(&prog, "churn").unwrap();
    k.set_cost(CostModel::new().flops(1e8).bytes_read(SIZE as f64));
    k
}

/// Four tenants, 2:1:1... weights: under a contended window the two
/// weight-2 tenants each sustain ~2x the compute of each weight-1
/// tenant, within 20% (the acceptance bound).
#[test]
fn weighted_tenants_get_proportional_compute_within_20pct() {
    let p = Platform::local(&[DeviceKind::Gpu, DeviceKind::Gpu]).unwrap();
    let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
    let plane = ServingPlane::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();

    // Calibrate one launch's virtual compute on the default session so
    // the measurement tenants start with clean accounts.
    let cal_kernel = churn_kernel(&ctx);
    let cal_buf = Buffer::new(&ctx, MemFlags::READ_WRITE, SIZE).unwrap();
    cal_kernel.set_arg_buffer(0, &cal_buf).unwrap();
    let calib = plane.default_session();
    calib
        .submit(&cal_kernel, NdRange::linear(LANES, 1))
        .unwrap();
    plane.drain().unwrap();
    let per_launch = plane
        .stats(calib.tenant())
        .map_or(1, |s| s.compute_nanos.max(1));

    let mut sessions = Vec::new();
    for (name, weight) in [
        ("gold-a", 2u32),
        ("gold-b", 2),
        ("bronze-a", 1),
        ("bronze-b", 1),
    ] {
        let session = plane.open_session(TenantSpec::new(name).weight(weight));
        let kernel = churn_kernel(&ctx);
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, SIZE).unwrap();
        kernel.set_arg_buffer(0, &buf).unwrap();
        for _ in 0..30 {
            session.submit(&kernel, NdRange::linear(LANES, 1)).unwrap();
        }
        sessions.push((session, weight));
    }

    // A 24-launch window splits 8:8:4:4 under perfect 2:2:1:1 sharing,
    // leaving every queue backlogged (30 submitted each).
    plane
        .drain_budget(SimDuration::from_nanos(per_launch * 24))
        .unwrap();

    let shares: Vec<(u32, u64, usize)> = sessions
        .iter()
        .map(|(s, w)| {
            let st = plane.stats(s.tenant()).unwrap();
            (*w, st.compute_nanos, st.pending)
        })
        .collect();
    for (weight, compute, pending) in &shares {
        assert!(
            *pending > 0,
            "weight-{weight} tenant must stay backlogged through the window \
             (got {compute} ns, 0 pending)"
        );
    }
    for &(w_hi, hi, _) in shares.iter().filter(|(w, ..)| *w == 2) {
        for &(w_lo, lo, _) in shares.iter().filter(|(w, ..)| *w == 1) {
            let ratio = hi as f64 / lo.max(1) as f64;
            assert!(
                (ratio - 2.0).abs() <= 0.4,
                "weight {w_hi} vs {w_lo}: compute ratio {ratio:.2} strayed \
                 more than 20% from 2.0 ({hi} vs {lo} ns)"
            );
        }
    }
    plane.drain().unwrap();
}

/// The very first opened session must get a tenant id distinct from the
/// pre-registered `"default"` tenant: user ids start at 1 (0 is the
/// reserved ambient user), so `TenantId::new(user)` can never collide
/// with [`TenantId::DEFAULT`].
#[test]
fn first_open_session_does_not_collide_with_default() {
    let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
    let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
    let plane = ServingPlane::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
    let s = plane.open_session(TenantSpec::new("first").weight(7));
    assert_ne!(
        s.tenant(),
        TenantId::DEFAULT,
        "first opened tenant collides with the default tenant"
    );
    assert!(s.user().raw() != 0, "user id 0 is reserved for the host");
}

/// A full bounded queue sheds with a typed, matchable error and no
/// accounting drift: the shed submission never counts as submitted.
#[test]
fn bounded_queue_sheds_with_typed_overloaded_error() {
    let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
    let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
    let plane = ServingPlane::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
    let session =
        plane.open_session(TenantSpec::new("boxed").quota(TenantQuota::unlimited().max_pending(2)));
    let kernel = churn_kernel(&ctx);
    let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, SIZE).unwrap();
    kernel.set_arg_buffer(0, &buf).unwrap();

    session.submit(&kernel, NdRange::linear(LANES, 1)).unwrap();
    session.submit(&kernel, NdRange::linear(LANES, 1)).unwrap();
    let err = session
        .submit(&kernel, NdRange::linear(LANES, 1))
        .unwrap_err();
    match &err {
        Error::Overloaded(AdmitError::QueueFull { tenant, limit }) => {
            assert_eq!((tenant.as_str(), *limit), ("boxed", 2));
        }
        other => panic!("expected a QueueFull shed, got {other:?}"),
    }
    assert!(err.admit_error().is_some());
    assert!(err.status().is_none(), "sheds are not OpenCL status errors");

    let stats = plane.stats(session.tenant()).unwrap();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.shed, 1);
    plane.drain().unwrap();
    let stats = plane.stats(session.tenant()).unwrap();
    assert_eq!(stats.completed, 2, "shed work must never execute");
}

/// Runs the same program once through a raw [`AutoScheduler`] and once
/// through a default [`Session`] on a fresh identical platform: bytes,
/// audit log and virtual clock must match exactly — multi-tenancy is
/// invisible until a second tenant shows up.
#[test]
fn default_session_is_byte_identical_to_direct_autoscheduler() {
    let run = |through_plane: bool| -> (Vec<u8>, String, u64) {
        let p = Platform::local(&[DeviceKind::Gpu, DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let kernel = churn_kernel(&ctx);
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, SIZE).unwrap();
        kernel.set_arg_buffer(0, &buf).unwrap();
        if through_plane {
            let plane = ServingPlane::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
            let session = plane.default_session();
            for _ in 0..6 {
                session.submit(&kernel, NdRange::linear(LANES, 1)).unwrap();
            }
            plane.drain().unwrap();
        } else {
            let auto = AutoScheduler::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
            for _ in 0..6 {
                let (event, _) = auto.launch(&kernel, NdRange::linear(LANES, 1)).unwrap();
                event.wait().unwrap();
            }
        }
        let staging = CommandQueue::new(&ctx, &ctx.devices()[0]).unwrap();
        let mut out = vec![0u8; SIZE as usize];
        staging.enqueue_read_buffer(&buf, 0, &mut out).unwrap();
        staging.finish();
        (out, p.render_audit_log(), p.clock().now().as_nanos())
    };
    let (direct_bytes, direct_audit, direct_now) = run(false);
    let (plane_bytes, plane_audit, plane_now) = run(true);
    assert_eq!(direct_bytes, churn_ref(6), "reference run is correct");
    assert_eq!(plane_bytes, direct_bytes, "bytes diverged");
    assert_eq!(plane_audit, direct_audit, "audit log diverged");
    assert_eq!(plane_now, direct_now, "virtual clock diverged");
    assert!(
        direct_audit.contains("tenant=default"),
        "the single-tenant audit column defaults to `default`"
    );
}

/// Three tenants keep submitting while a node crashes on a lossy
/// network: after recovery, per-tenant accounting (submitted ==
/// completed once drained), buffer digests and the memory ledger must
/// all be exact — journal replay is tenant-aware.
#[test]
fn chaos_crash_preserves_per_tenant_accounting_and_digests() {
    let config = ClusterConfig::gpu_cluster(2);
    let crash_host = config.nodes[1].addr.split(':').next().unwrap().to_string();
    let platform = Platform::cluster(&config, KernelRegistry::new()).unwrap();
    let spec = format!("crash={crash_host}@25,drop=0.03,dup=0.05,delay=0.1:200us");
    platform.install_chaos(ChaosPolicy::new(11, ChaosSpec::parse(&spec).unwrap()));
    platform.set_recovery(Some(RecoveryPolicy {
        base_timeout: Duration::from_millis(10),
        max_attempts: 4,
        failover: true,
    }));
    // Peer-fed replicas are deliberately rolled back to the shadow
    // across a failover (the replayed re-pull can race the crash); pin
    // the data plane to the journaled host relay so digests must
    // survive bit-for-bit.
    platform.set_peer_transfers(false);

    let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
    let plane = ServingPlane::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
    let staging = CommandQueue::new(&ctx, &ctx.devices()[0]).unwrap();

    let mut actors = Vec::new();
    for (name, max_pending) in [("alpha", 64usize), ("beta", 64), ("gamma", 2)] {
        let session = plane.open_session(
            TenantSpec::new(name).quota(
                TenantQuota::unlimited()
                    .mem_bytes(SIZE)
                    .max_pending(max_pending),
            ),
        );
        let kernel = churn_kernel(&ctx);
        let buffer = session.create_buffer(MemFlags::READ_WRITE, SIZE).unwrap();
        kernel.set_arg_buffer(0, &buffer).unwrap();
        actors.push((session, kernel, buffer));
    }

    for _ in 0..8 {
        for (session, kernel, _) in &actors {
            for _ in 0..4 {
                match session.submit(kernel, NdRange::linear(LANES, 1)) {
                    Ok(()) | Err(Error::Overloaded(_)) => {}
                    Err(e) => panic!("launch failed under recovery: {e}"),
                }
            }
        }
        plane.drain().unwrap();
    }

    let mut sheds = 0;
    for (session, _, buffer) in &actors {
        let stats = plane.stats(session.tenant()).unwrap();
        assert!(stats.completed > 0, "{} starved", session.name());
        assert_eq!(
            stats.submitted,
            stats.completed,
            "{}: admitted work lost or double-run across the failover",
            session.name()
        );
        sheds += stats.shed;
        let mut out = vec![0u8; SIZE as usize];
        staging.enqueue_read_buffer(buffer, 0, &mut out).unwrap();
        staging.finish();
        assert_eq!(
            out,
            churn_ref(stats.completed),
            "{}: buffer does not match {} completed applications",
            session.name(),
            stats.completed
        );
        assert_eq!(stats.mem_bytes, SIZE, "{} ledger drifted", session.name());
    }
    assert!(sheds > 0, "the bounded tenant was never shed");

    // Dropping the buffers replenishes every ledger, crash or not.
    let tenants: Vec<_> = actors.iter().map(|(s, ..)| s.tenant()).collect();
    drop(actors);
    for tenant in tenants {
        assert_eq!(plane.stats(tenant).unwrap().mem_bytes, 0);
    }
}
