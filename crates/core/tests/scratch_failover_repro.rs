//! Scratch repro: after a failover triggered by unrelated traffic,
//! revalidate() promotes a stale host shadow over a replica that journal
//! replay actually reconstructed on the survivor.

use std::time::Duration;

use haocl::{
    Buffer, ChaosPolicy, ChaosSpec, CommandQueue, Context, DeviceType, Kernel, MemFlags, NdRange,
    Platform, Program, RecoveryPolicy,
};
use haocl_cluster::ClusterConfig;
use haocl_kernel::KernelRegistry;

const SIZE: usize = 32;
const LANES: usize = SIZE / 4;

const SCRAMBLE_SRC: &str =
    "__kernel void scramble(__global int* a) { int i = get_global_id(0); a[i] = a[i] ^ (i + 1); }";

fn scramble_ref(model: &mut [u8]) {
    for i in 0..LANES {
        let mut v = i32::from_le_bytes(model[i * 4..i * 4 + 4].try_into().unwrap());
        v ^= (i + 1) as i32;
        model[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
}

#[test]
fn stale_shadow_promoted_after_unrelated_failover() {
    let mut failed_frames = Vec::new();
    for frame in 1u64..120 {
        let config = ClusterConfig::gpu_cluster(2);
        let node1_host = config.nodes[1].addr.split(':').next().unwrap().to_string();
        let platform = Platform::cluster(&config, KernelRegistry::new()).unwrap();
        let spec = ChaosSpec::parse(&format!("crash={node1_host}@{frame}")).unwrap();
        platform.install_chaos(ChaosPolicy::new(7, spec));
        platform.set_recovery(Some(RecoveryPolicy {
            base_timeout: Duration::from_millis(10),
            max_attempts: 4,
            failover: true,
        }));

        let devices = platform.devices(DeviceType::All);
        let ctx = Context::new(&platform, &devices).unwrap();
        let queues: Vec<CommandQueue> = devices
            .iter()
            .map(|d| CommandQueue::new(&ctx, d).unwrap())
            .collect();
        let prog = Program::from_source(&ctx, SCRAMBLE_SRC);
        prog.build().unwrap();
        let kernel = Kernel::new(&prog, "scramble").unwrap();

        let buf0 = Buffer::new(&ctx, MemFlags::READ_WRITE, SIZE as u64).unwrap();
        let buf1 = Buffer::new(&ctx, MemFlags::READ_WRITE, SIZE as u64).unwrap();
        let mut model = vec![0u8; SIZE];
        let data: Vec<u8> = (1..=SIZE as u8).collect();

        // Seed buf0 via node1's device, then scramble it there: node1's
        // device becomes the sole current replica, the shadow goes stale.
        if queues[1].enqueue_write_buffer(&buf0, 0, &data).is_err() {
            continue;
        }
        model.copy_from_slice(&data);
        kernel.set_arg_buffer(0, &buf0).unwrap();
        let Ok(ev) = queues[1].enqueue_nd_range_kernel(&kernel, NdRange::linear(LANES as u64, 4))
        else {
            continue;
        };
        if ev.wait().is_err() {
            continue;
        }
        scramble_ref(&mut model);

        // Unrelated traffic to node1 around the crash: this is what
        // detects the failure and bumps node1's epoch.
        for _ in 0..6 {
            let _ = queues[1].enqueue_write_buffer(&buf1, 0, &data);
        }

        // Now read buf0 in full.
        let mut out = vec![0u8; SIZE];
        if queues[0].enqueue_read_buffer(&buf0, 0, &mut out).is_err() {
            continue;
        }
        if out != model {
            failed_frames.push((frame, out.clone()));
        }
    }
    assert!(
        failed_frames.is_empty(),
        "stale reads at crash frames: {:?}",
        failed_frames
            .iter()
            .map(|(f, o)| (*f, o[..8].to_vec()))
            .collect::<Vec<_>>()
    );
}
