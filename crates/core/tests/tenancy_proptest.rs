//! Property tests for tenant memory-quota admission and release.
//!
//! The quota ledger must behave like a trivial per-tenant byte counter
//! under any interleaving of buffer creations and drops across tenants:
//! a creation is admitted iff it fits the creating tenant's quota, a
//! shed changes nothing anywhere (isolation — the other tenants keep
//! allocating), and dropping the last handle replenishes exactly the
//! charged bytes.

use proptest::prelude::*;

use haocl::serve::ServingPlane;
use haocl::{
    AdmitError, Buffer, Context, DeviceKind, DeviceType, Error, MemFlags, Platform, Session,
    TenantQuota, TenantSpec,
};
use haocl_sched::policies;

const TENANTS: usize = 3;
const QUOTA: u64 = 64;

#[derive(Debug, Clone)]
enum QuotaOp {
    /// `Session::create_buffer` of `size` bytes by tenant `tenant`.
    Create { tenant: usize, size: u64 },
    /// Drop tenant `tenant`'s oldest still-held buffer (no-op if none).
    DropOldest { tenant: usize },
}

fn op_strategy() -> impl Strategy<Value = QuotaOp> {
    prop_oneof![
        (0..TENANTS, 1..QUOTA + 1).prop_map(|(tenant, size)| QuotaOp::Create { tenant, size }),
        (0..TENANTS).prop_map(|tenant| QuotaOp::DropOldest { tenant }),
    ]
}

fn open_tenants(plane: &ServingPlane) -> Vec<Session> {
    (0..TENANTS)
        .map(|i| {
            plane.open_session(
                TenantSpec::new(format!("tenant-{i}"))
                    .quota(TenantQuota::unlimited().mem_bytes(QUOTA)),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ledger_matches_a_per_tenant_byte_counter(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let plane = ServingPlane::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
        let sessions = open_tenants(&plane);
        let mut held: Vec<Vec<(Buffer, u64)>> = vec![Vec::new(); TENANTS];
        let mut model = [0u64; TENANTS];

        for op in &ops {
            match *op {
                QuotaOp::Create { tenant, size } => {
                    let fits = model[tenant] + size <= QUOTA;
                    match sessions[tenant].create_buffer(MemFlags::READ_WRITE, size) {
                        Ok(buffer) => {
                            prop_assert!(fits, "admitted {size} over {} used", model[tenant]);
                            model[tenant] += size;
                            held[tenant].push((buffer, size));
                        }
                        Err(Error::Overloaded(AdmitError::MemoryQuota {
                            used, requested, limit, ..
                        })) => {
                            prop_assert!(!fits, "shed {size} with only {} used", model[tenant]);
                            prop_assert_eq!(
                                (used, requested, limit),
                                (model[tenant], size, QUOTA)
                            );
                        }
                        Err(other) => return Err(TestCaseError::fail(format!(
                            "unexpected error: {other}"
                        ))),
                    }
                }
                QuotaOp::DropOldest { tenant } => {
                    if !held[tenant].is_empty() {
                        let (buffer, size) = held[tenant].remove(0);
                        drop(buffer);
                        model[tenant] -= size;
                    }
                }
            }
            // Every tenant's live ledger tracks the model exactly: sheds
            // and drops by one tenant never leak into another's account.
            for (session, used) in sessions.iter().zip(&model) {
                prop_assert_eq!(plane.stats(session.tenant()).unwrap().mem_bytes, *used);
            }
        }

        // Dropping everything replenishes every quota in full.
        held.clear();
        for session in &sessions {
            prop_assert_eq!(plane.stats(session.tenant()).unwrap().mem_bytes, 0);
            let full = session.create_buffer(MemFlags::READ_WRITE, QUOTA);
            prop_assert!(full.is_ok(), "a full-quota allocation fits an empty ledger");
        }
    }
}

/// The deterministic skeleton of the property: a tenant pinned at its
/// quota sheds while a sibling proceeds, and dropping the buffer
/// immediately un-sheds it.
#[test]
fn tenant_at_quota_sheds_while_others_proceed() {
    let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
    let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
    let plane = ServingPlane::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
    let sessions = open_tenants(&plane);

    let pin = sessions[0]
        .create_buffer(MemFlags::READ_WRITE, QUOTA)
        .unwrap();
    let err = sessions[0]
        .create_buffer(MemFlags::READ_WRITE, 1)
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Overloaded(AdmitError::MemoryQuota { .. })
    ));
    // Isolation: the sibling allocates its full quota while tenant 0 is
    // pinned.
    let sibling = sessions[1].create_buffer(MemFlags::READ_WRITE, QUOTA);
    assert!(sibling.is_ok());

    drop(pin);
    assert_eq!(plane.stats(sessions[0].tenant()).unwrap().mem_bytes, 0);
    sessions[0]
        .create_buffer(MemFlags::READ_WRITE, QUOTA)
        .expect("dropping the buffer replenished the quota");
}
