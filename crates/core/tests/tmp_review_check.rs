use haocl::serve::ServingPlane;
use haocl::{Context, DeviceType, Platform};
use haocl_proto::ids::TenantId;
use haocl_proto::messages::DeviceKind;
use haocl_sched::{policies, TenantSpec};

#[test]
fn first_open_session_does_not_collide_with_default() {
    let p = Platform::local(&[DeviceKind::Gpu]).unwrap();
    let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
    let plane = ServingPlane::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
    let s = plane.open_session(TenantSpec::new("first").weight(7));
    eprintln!("first tenant id = {:?}, user = {:?}", s.tenant(), s.user());
    assert_ne!(
        s.tenant(),
        TenantId::DEFAULT,
        "first opened tenant collides with the default tenant"
    );
}
