//! End-to-end observability: one remote `enqueue_nd_range_kernel` under
//! tracing must yield a single causally connected span tree spanning
//! host, fabric, NMP and VM, a valid Chrome trace export, and per-kernel
//! latency histograms — with the scheduler's decisions auditable.

use haocl::auto::AutoScheduler;
use haocl::kernel::Kernel;
use haocl::{Buffer, CommandQueue, Context, DeviceType, MemFlags, Platform, Program};
use haocl_cluster::ClusterConfig;
use haocl_kernel::{CostModel, KernelRegistry, NdRange};
use haocl_obs::{is_connected_tree, orphan_ids, parse_chrome_trace, render_breakdown};
use haocl_sched::policies;

const NEG: &str = "__kernel void neg(__global int* a) { int i = get_global_id(0); a[i] = -a[i]; }";

fn traced_remote_launch() -> Platform {
    // Two GPU nodes over the paper's Gigabit link: node 1 is remote from
    // the host, so the launch crosses the fabric both ways.
    let p = Platform::cluster(&ClusterConfig::gpu_cluster(2), KernelRegistry::new()).unwrap();
    p.set_tracing(true);
    let devs = p.devices(DeviceType::All);
    let ctx = Context::new(&p, &devs).unwrap();
    let q = CommandQueue::new(&ctx, &devs[1]).unwrap();
    let prog = Program::from_source(&ctx, NEG);
    prog.build().unwrap();
    let k = Kernel::new(&prog, "neg").unwrap();
    let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 16).unwrap();
    q.enqueue_write_buffer(&buf, 0, &[1u8; 16]).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    let ev = q
        .enqueue_nd_range_kernel(&k, NdRange::linear(4, 2))
        .unwrap();
    ev.wait().unwrap();
    p
}

#[test]
fn remote_enqueue_yields_one_connected_span_tree() {
    let p = traced_remote_launch();
    let spans = p.obs().recorder.spans();
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    for expected in ["fabric.request", "nmp.dispatch", "vm.run", "fabric.reply"] {
        assert!(
            names.contains(&expected),
            "missing span {expected}: {names:?}"
        );
    }
    assert!(
        names.iter().any(|n| n.starts_with("enqueue_nd_range")),
        "{names:?}"
    );
    assert!(
        is_connected_tree(&spans),
        "spans must form a single connected tree: {spans:#?}"
    );
    // Host submit precedes node dispatch precedes VM run, in virtual time.
    let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
    let dispatch = by_name("nmp.dispatch");
    let vm = by_name("vm.run");
    assert!(dispatch.start <= vm.start && vm.end <= dispatch.end);
    assert_ne!(dispatch.node, "host", "dispatch runs on the node");
}

#[test]
fn chrome_export_roundtrips_without_orphans() {
    let p = traced_remote_launch();
    let json = p.export_chrome_trace();
    let parsed = parse_chrome_trace(&json).expect("valid Chrome trace JSON");
    assert_eq!(parsed.len(), p.obs().recorder.len());
    assert!(orphan_ids(&parsed).is_empty(), "no orphan spans");
    let report = render_breakdown(&parsed);
    assert!(report.contains("Compute"), "{report}");
}

#[test]
fn metrics_dump_has_latency_histogram_and_plane_counters() {
    let p = traced_remote_launch();
    let prom = p.render_metrics();
    assert!(
        prom.contains("# TYPE haocl_kernel_latency_nanos histogram"),
        "{prom}"
    );
    assert!(prom.contains("kernel=\"neg\""), "{prom}");
    assert!(prom.contains("haocl_plane_frames_total"), "{prom}");
    assert!(prom.contains("haocl_plane_bytes_total"), "{prom}");
    assert!(prom.contains("haocl_fabric_frames_total"), "{prom}");
    assert_eq!(
        p.obs().metrics.histogram_count(
            "haocl_kernel_latency_nanos",
            &[("kernel", "neg"), ("kind", "Gpu")]
        ),
        1
    );
}

#[test]
fn auto_scheduler_audits_every_placement() {
    let p = Platform::cluster(&ClusterConfig::gpu_cluster(2), KernelRegistry::new()).unwrap();
    p.set_tracing(true);
    let devs = p.devices(DeviceType::All);
    let ctx = Context::new(&p, &devs).unwrap();
    let auto = AutoScheduler::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
    let prog = Program::from_source(&ctx, NEG);
    prog.build().unwrap();
    let k = Kernel::new(&prog, "neg").unwrap();
    let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 16).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    k.set_cost(CostModel::new().flops(1e9));
    auto.launch(&k, NdRange::linear(4, 2)).unwrap();
    let audit = p.render_audit_log();
    assert!(audit.contains("place kernel=neg"), "{audit}");
    assert!(audit.contains("chosen="), "{audit}");
    assert!(audit.contains("reason=\""), "{audit}");
    // The auto.launch trace nests sched.place and the enqueue under one
    // root.
    let spans = p.obs().recorder.spans();
    assert!(spans.iter().any(|s| s.name == "sched.place"));
    assert!(spans.iter().any(|s| s.name.starts_with("auto.launch")));
    assert!(is_connected_tree(&spans), "{spans:#?}");
    let prom = p.render_metrics();
    assert!(prom.contains("haocl_placements_total"), "{prom}");
}

#[test]
fn tracing_disabled_records_nothing() {
    let p = Platform::cluster(&ClusterConfig::gpu_cluster(2), KernelRegistry::new()).unwrap();
    assert!(!p.tracing_enabled());
    let devs = p.devices(DeviceType::All);
    let ctx = Context::new(&p, &devs).unwrap();
    let q = CommandQueue::new(&ctx, &devs[1]).unwrap();
    let prog = Program::from_source(&ctx, NEG);
    prog.build().unwrap();
    let k = Kernel::new(&prog, "neg").unwrap();
    let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 16).unwrap();
    q.enqueue_write_buffer(&buf, 0, &[1u8; 16]).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    let ev = q
        .enqueue_nd_range_kernel(&k, NdRange::linear(4, 2))
        .unwrap();
    ev.wait().unwrap();
    assert!(p.obs().recorder.is_empty());
    assert!(p.obs().audit.is_empty());
}
