//! The simulated device: timeline, execution, profiling, energy.

use std::collections::{HashMap, HashSet};
use std::fmt;

use haocl_kernel::{ArgValue, CostModel, ExecError, GlobalBuffer, Kernel, NdRange};
use haocl_proto::ids::{BufferId, ProgramId};
use haocl_proto::messages::{DeviceDescriptor, Fidelity, ProfileEntry, WireArg};
use haocl_sim::{Grant, Resource, SimDuration, SimTime};

use crate::memory::{MemoryError, MemoryManager};
use crate::model::DeviceModel;

/// A failure on the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// A buffer-store failure.
    Memory(MemoryError),
    /// A kernel execution failure.
    Exec(String),
    /// The operation is not supported by this device class (e.g. online
    /// compilation on an FPGA).
    NotSupported(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Memory(e) => write!(f, "device memory error: {e}"),
            DeviceError::Exec(msg) => write!(f, "kernel execution error: {msg}"),
            DeviceError::NotSupported(msg) => write!(f, "unsupported operation: {msg}"),
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemoryError> for DeviceError {
    fn from(e: MemoryError) -> Self {
        DeviceError::Memory(e)
    }
}

impl From<ExecError> for DeviceError {
    fn from(e: ExecError) -> Self {
        DeviceError::Exec(e.message().to_string())
    }
}

/// The result of one admitted kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchOutcome {
    /// When the launch ran on the device timeline.
    pub grant: Grant,
    /// Bytecode instructions retired (0 in modeled fidelity or for native
    /// kernels that do not report).
    pub instructions: u64,
}

/// One constituent of a fused dispatch (see [`SimDevice::launch_fused`]).
#[derive(Debug, Clone, Copy)]
pub struct FusedPart<'a> {
    /// The kernel to run.
    pub kernel: &'a Kernel,
    /// Bound arguments, in parameter order.
    pub args: &'a [WireArg],
    /// Launch geometry.
    pub range: NdRange,
    /// Device-independent cost (for virtual timing).
    pub cost: CostModel,
}

#[derive(Debug, Clone, Default)]
struct KernelProfile {
    runs: u64,
    total: SimDuration,
}

/// One simulated device: a performance model, a buffer store, a serialized
/// execution timeline, a per-kernel profile and an energy meter.
///
/// All timing is virtual; kernels still execute for real in
/// [`Fidelity::Full`] so results are verifiable.
#[derive(Debug)]
pub struct SimDevice {
    model: DeviceModel,
    memory: MemoryManager,
    timeline: Resource,
    profile: HashMap<String, KernelProfile>,
    loaded_programs: HashSet<ProgramId>,
    energy_joules: f64,
}

impl SimDevice {
    /// Creates an idle device from its model.
    pub fn new(model: DeviceModel) -> Self {
        let capacity = model.mem_bytes;
        let name = model.name.clone();
        SimDevice {
            model,
            memory: MemoryManager::new(capacity),
            timeline: Resource::new(name),
            profile: HashMap::new(),
            loaded_programs: HashSet::new(),
            energy_joules: 0.0,
        }
    }

    /// The device's performance model.
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    /// Injects (or lifts, with `1.0`) a degradation multiplier on every
    /// subsequent kernel time — the simulator-side lever behind the
    /// `SetThrottle` control call. Clamped to ≥ 1.0; already-queued work
    /// is not retimed.
    pub fn set_throttle(&mut self, factor: f64) {
        self.model.throttle = factor.max(1.0);
    }

    /// The wire descriptor for this device at `index`.
    pub fn descriptor(&self, index: u8) -> DeviceDescriptor {
        self.model.descriptor(index)
    }

    /// The buffer store (for inspection).
    pub fn memory(&self) -> &MemoryManager {
        &self.memory
    }

    /// Total energy charged so far, joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy_joules
    }

    /// Total busy time on the execution timeline.
    pub fn busy_time(&self) -> SimDuration {
        self.timeline.busy_time()
    }

    /// The instant this device becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.timeline.busy_until()
    }

    /// Allocates buffer `id` of `size` bytes.
    ///
    /// # Errors
    ///
    /// Propagates [`MemoryError`] (duplicate handle / out of memory).
    pub fn alloc_buffer(&mut self, id: BufferId, size: u64) -> Result<(), DeviceError> {
        Ok(self.memory.alloc(id, size)?)
    }

    /// Releases buffer `id`.
    ///
    /// # Errors
    ///
    /// Propagates [`MemoryError::UnknownBuffer`].
    pub fn free_buffer(&mut self, id: BufferId) -> Result<(), DeviceError> {
        Ok(self.memory.free(id)?)
    }

    /// Writes host data into a device buffer, charging the PCIe transfer
    /// on the device timeline.
    ///
    /// # Errors
    ///
    /// Propagates buffer-store failures.
    pub fn write_buffer(
        &mut self,
        id: BufferId,
        offset: u64,
        data: &[u8],
        at: SimTime,
    ) -> Result<Grant, DeviceError> {
        self.memory.write(id, offset, data)?;
        let dur = self.model.transfer_time(data.len() as u64);
        Ok(self.charge(at, dur))
    }

    /// Reads a device buffer back to the host, charging the PCIe transfer.
    ///
    /// # Errors
    ///
    /// Propagates buffer-store failures.
    pub fn read_buffer(
        &mut self,
        id: BufferId,
        offset: u64,
        len: u64,
        at: SimTime,
    ) -> Result<(Vec<u8>, Grant), DeviceError> {
        let data = self.memory.read(id, offset, len)?;
        let dur = self.model.transfer_time(len);
        let grant = self.charge(at, dur);
        Ok((data, grant))
    }

    /// Allocates a *virtual* buffer: capacity accounting only, no backing
    /// bytes (paper-scale modeled runs).
    ///
    /// # Errors
    ///
    /// Propagates [`MemoryError`] (duplicate handle / out of memory).
    pub fn alloc_buffer_modeled(&mut self, id: BufferId, size: u64) -> Result<(), DeviceError> {
        Ok(self.memory.alloc_virtual(id, size)?)
    }

    /// Charges a host↔device transfer of `len` bytes at `[offset,
    /// offset+len)` of buffer `id` without moving data (modeled
    /// transfers; works for both real and virtual buffers).
    ///
    /// # Errors
    ///
    /// Propagates buffer-store failures (unknown buffer, out-of-bounds).
    pub fn transfer_modeled(
        &mut self,
        id: BufferId,
        offset: u64,
        len: u64,
        at: SimTime,
    ) -> Result<Grant, DeviceError> {
        let size = self.memory.size_of(id)?;
        if offset.checked_add(len).is_none_or(|end| end > size) {
            return Err(DeviceError::Memory(MemoryError::OutOfBounds {
                buffer: id,
                offset,
                len,
                size,
            }));
        }
        let dur = self.model.transfer_time(len);
        Ok(self.charge(at, dur))
    }

    /// Copies between two device buffers, charging device-memory traffic.
    ///
    /// # Errors
    ///
    /// Propagates buffer-store failures.
    pub fn copy_buffer(
        &mut self,
        src: BufferId,
        dst: BufferId,
        src_offset: u64,
        dst_offset: u64,
        len: u64,
        at: SimTime,
    ) -> Result<Grant, DeviceError> {
        self.memory.copy(src, dst, src_offset, dst_offset, len)?;
        // On-device copy moves 2·len bytes through device memory.
        let secs = if self.model.mem_bandwidth > 0.0 {
            (2 * len) as f64 / self.model.mem_bandwidth
        } else {
            0.0
        };
        Ok(self.charge(at, SimDuration::from_secs_f64(secs)))
    }

    /// Records that `program` is resident, charging FPGA reconfiguration
    /// the first time a given program is loaded.
    pub fn note_program_loaded(&mut self, program: ProgramId, at: SimTime) -> Grant {
        let first_load = self.loaded_programs.insert(program);
        let dur = if first_load {
            self.model.reconfig_time
        } else {
            SimDuration::ZERO
        };
        self.charge(at, dur)
    }

    /// Launches `kernel` with wire arguments at virtual time `at`.
    ///
    /// In [`Fidelity::Full`] the kernel executes against this device's
    /// buffers; in [`Fidelity::Modeled`] only the cost model is charged.
    /// Either way the duration on the timeline comes from the model, so
    /// both fidelities produce identical virtual timing.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] for unknown buffers, argument mismatches or
    /// kernel runtime failures.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        args: &[WireArg],
        range: &NdRange,
        cost: &CostModel,
        fidelity: Fidelity,
        at: SimTime,
    ) -> Result<LaunchOutcome, DeviceError> {
        let mut instructions = 0;
        if fidelity == Fidelity::Full {
            instructions = self.execute_full(kernel, args, range)?;
        }
        let dur = self.model.kernel_time(cost);
        let grant = self.charge(at, dur);
        let entry = self.profile.entry(kernel.name().to_string()).or_default();
        entry.runs += 1;
        entry.total += dur;
        Ok(LaunchOutcome {
            grant,
            instructions,
        })
    }

    /// Launches a prover-approved chain of kernels back-to-back under one
    /// dispatch: the constituent bodies run sequentially (in [`Fidelity::Full`]),
    /// their modeled durations are summed into a single timeline grant,
    /// and each constituent still gets its own profile row.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] like [`SimDevice::launch`]; a failing part
    /// aborts the chain (earlier parts' writes remain, matching a device
    /// fault mid-command).
    pub fn launch_fused(
        &mut self,
        parts: &[FusedPart<'_>],
        fidelity: Fidelity,
        at: SimTime,
    ) -> Result<LaunchOutcome, DeviceError> {
        let mut instructions = 0;
        if fidelity == Fidelity::Full {
            for p in parts {
                instructions += self.execute_full(p.kernel, p.args, &p.range)?;
            }
        }
        let mut total = SimDuration::ZERO;
        for p in parts {
            let dur = self.model.kernel_time(&p.cost);
            total += dur;
            let entry = self.profile.entry(p.kernel.name().to_string()).or_default();
            entry.runs += 1;
            entry.total += dur;
        }
        let grant = self.charge(at, total);
        Ok(LaunchOutcome {
            grant,
            instructions,
        })
    }

    /// Runs one kernel body against this device's buffers, returning the
    /// instructions retired (the full-fidelity core of a launch).
    fn execute_full(
        &mut self,
        kernel: &Kernel,
        args: &[WireArg],
        range: &NdRange,
    ) -> Result<u64, DeviceError> {
        // Gather the buffer handles referenced by the arguments.
        let buffer_ids: Vec<BufferId> = args
            .iter()
            .filter_map(|a| match a {
                WireArg::Buffer(id) => Some(*id),
                _ => None,
            })
            .collect();
        let (mut taken, slots) = self.memory.take_for_launch(&buffer_ids)?;
        let mut slot_iter = slots.into_iter();
        let resolved: Vec<ArgValue> = args
            .iter()
            .map(|a| match a {
                WireArg::F32(v) => ArgValue::from_f32(*v),
                WireArg::F64(v) => ArgValue::from_f64(*v),
                WireArg::I32(v) => ArgValue::from_i32(*v),
                WireArg::U32(v) => ArgValue::from_u32(*v),
                WireArg::I64(v) => ArgValue::from_i64(*v),
                WireArg::U64(v) => ArgValue::from_u64(*v),
                WireArg::Buffer(_) => {
                    ArgValue::global(slot_iter.next().expect("slot per buffer arg"))
                }
                WireArg::LocalBytes(b) => ArgValue::local_bytes(*b as usize),
            })
            .collect();
        let mut buffers: Vec<GlobalBuffer> =
            taken.iter_mut().map(|(_, b)| std::mem::take(b)).collect();
        let result = kernel.execute(&resolved, &mut buffers, range);
        for ((_, slot), buf) in taken.iter_mut().zip(buffers) {
            *slot = buf;
        }
        self.memory.restore(taken);
        Ok(result?.instructions)
    }

    /// The per-kernel profile rows this device reports to the runtime
    /// monitor, sorted by kernel name.
    pub fn profile_entries(&self, device_index: u8) -> Vec<ProfileEntry> {
        let mut entries: Vec<ProfileEntry> = self
            .profile
            .iter()
            .map(|(kernel, p)| ProfileEntry {
                device: device_index,
                kernel: kernel.clone(),
                runs: p.runs,
                mean_nanos: p.total.as_nanos().checked_div(p.runs).unwrap_or(0),
                busy_nanos: self.timeline.busy_time().as_nanos(),
            })
            .collect();
        entries.sort_by(|a, b| a.kernel.cmp(&b.kernel));
        entries
    }

    fn charge(&mut self, at: SimTime, dur: SimDuration) -> Grant {
        self.energy_joules += self.model.energy(dur);
        self.timeline.acquire(at, dur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use std::sync::Arc;

    fn compiled(src: &str, name: &str) -> Kernel {
        let p = haocl_clc::compile(src).unwrap();
        Kernel::Compiled(Arc::new(p.kernel(name).unwrap().clone()))
    }

    fn gpu() -> SimDevice {
        SimDevice::new(presets::tesla_p4())
    }

    #[test]
    fn full_fidelity_launch_mutates_buffers() {
        let mut dev = gpu();
        let buf = BufferId::new(1);
        dev.alloc_buffer(buf, 16).unwrap();
        let data: Vec<u8> = [1.0f32, 2.0, 3.0, 4.0]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        dev.write_buffer(buf, 0, &data, SimTime::ZERO).unwrap();
        let k = compiled(
            "__kernel void dbl(__global float* a) { int i = get_global_id(0); a[i] = a[i] * 2.0f; }",
            "dbl",
        );
        let cost = CostModel::new()
            .flops(4.0)
            .bytes_read(16.0)
            .bytes_written(16.0);
        let out = dev
            .launch(
                &k,
                &[WireArg::Buffer(buf)],
                &NdRange::linear(4, 1),
                &cost,
                Fidelity::Full,
                SimTime::ZERO,
            )
            .unwrap();
        assert!(out.instructions > 0);
        let (bytes, _) = dev.read_buffer(buf, 0, 16, SimTime::ZERO).unwrap();
        let vals: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn modeled_fidelity_charges_time_without_touching_buffers() {
        let mut dev = gpu();
        let buf = BufferId::new(1);
        dev.alloc_buffer(buf, 16).unwrap();
        let k = compiled(
            "__kernel void dbl(__global float* a) { int i = get_global_id(0); a[i] = a[i] * 2.0f; }",
            "dbl",
        );
        let cost = CostModel::new().flops(1e9);
        let out = dev
            .launch(
                &k,
                &[WireArg::Buffer(buf)],
                &NdRange::linear(4, 1),
                &cost,
                Fidelity::Modeled,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(out.instructions, 0);
        assert!(out.grant.service() > SimDuration::ZERO);
        // Buffer untouched (still zeroed).
        let (bytes, _) = dev.read_buffer(buf, 0, 16, SimTime::ZERO).unwrap();
        assert!(bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn both_fidelities_charge_identical_virtual_time() {
        let k = compiled(
            "__kernel void nop(__global float* a) { int i = get_global_id(0); a[i] = a[i]; }",
            "nop",
        );
        let cost = CostModel::new().flops(1e8).bytes_read(1e6);
        let time_for = |fid: Fidelity| {
            let mut dev = gpu();
            dev.alloc_buffer(BufferId::new(1), 64).unwrap();
            let out = dev
                .launch(
                    &k,
                    &[WireArg::Buffer(BufferId::new(1))],
                    &NdRange::linear(16, 1),
                    &cost,
                    fid,
                    SimTime::ZERO,
                )
                .unwrap();
            out.grant.service()
        };
        assert_eq!(time_for(Fidelity::Full), time_for(Fidelity::Modeled));
    }

    #[test]
    fn launches_serialize_on_the_timeline() {
        let mut dev = gpu();
        dev.alloc_buffer(BufferId::new(1), 64).unwrap();
        let k = compiled(
            "__kernel void nop(__global float* a) { a[0] = 1.0f; }",
            "nop",
        );
        let cost = CostModel::new().flops(1e9);
        let args = [WireArg::Buffer(BufferId::new(1))];
        let r = NdRange::linear(1, 1);
        let a = dev
            .launch(&k, &args, &r, &cost, Fidelity::Modeled, SimTime::ZERO)
            .unwrap();
        let b = dev
            .launch(&k, &args, &r, &cost, Fidelity::Modeled, SimTime::ZERO)
            .unwrap();
        assert_eq!(b.grant.start, a.grant.end);
    }

    #[test]
    fn unknown_buffer_argument_fails() {
        let mut dev = gpu();
        let k = compiled("__kernel void f(__global float* a) { a[0] = 1.0f; }", "f");
        let err = dev
            .launch(
                &k,
                &[WireArg::Buffer(BufferId::new(404))],
                &NdRange::linear(1, 1),
                &CostModel::new(),
                Fidelity::Full,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            DeviceError::Memory(MemoryError::UnknownBuffer(_))
        ));
    }

    #[test]
    fn failed_launch_restores_buffers() {
        let mut dev = gpu();
        dev.alloc_buffer(BufferId::new(1), 4).unwrap();
        // Kernel reads out of bounds → exec error; buffer must survive.
        let k = compiled("__kernel void f(__global int* a) { a[0] = a[99]; }", "f");
        let err = dev
            .launch(
                &k,
                &[WireArg::Buffer(BufferId::new(1))],
                &NdRange::linear(1, 1),
                &CostModel::new(),
                Fidelity::Full,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, DeviceError::Exec(_)));
        assert!(dev.memory().contains(BufferId::new(1)));
    }

    #[test]
    fn same_buffer_twice_resolves_to_one_binding() {
        let mut dev = gpu();
        dev.alloc_buffer(BufferId::new(1), 8).unwrap();
        let k = compiled(
            "__kernel void f(__global int* a, __global int* b) { a[0] = 7; b[1] = a[0]; }",
            "f",
        );
        dev.launch(
            &k,
            &[
                WireArg::Buffer(BufferId::new(1)),
                WireArg::Buffer(BufferId::new(1)),
            ],
            &NdRange::linear(1, 1),
            &CostModel::new(),
            Fidelity::Full,
            SimTime::ZERO,
        )
        .unwrap();
        let (bytes, _) = dev
            .read_buffer(BufferId::new(1), 0, 8, SimTime::ZERO)
            .unwrap();
        let vals: Vec<i32> = bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![7, 7]);
    }

    #[test]
    fn fpga_reconfiguration_charged_once_per_program() {
        let mut dev = SimDevice::new(presets::vu9p());
        let p = ProgramId::new(1);
        let first = dev.note_program_loaded(p, SimTime::ZERO);
        assert_eq!(first.service(), presets::vu9p().reconfig_time);
        let again = dev.note_program_loaded(p, SimTime::ZERO);
        assert_eq!(again.service(), SimDuration::ZERO);
        let other = dev.note_program_loaded(ProgramId::new(2), SimTime::ZERO);
        assert_eq!(other.service(), presets::vu9p().reconfig_time);
    }

    #[test]
    fn profile_records_runs_and_mean() {
        let mut dev = gpu();
        dev.alloc_buffer(BufferId::new(1), 4).unwrap();
        let k = compiled("__kernel void f(__global int* a) { a[0] = 1; }", "f");
        let cost = CostModel::new().flops(1e9);
        for _ in 0..3 {
            dev.launch(
                &k,
                &[WireArg::Buffer(BufferId::new(1))],
                &NdRange::linear(1, 1),
                &cost,
                Fidelity::Modeled,
                SimTime::ZERO,
            )
            .unwrap();
        }
        let entries = dev.profile_entries(0);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].runs, 3);
        assert!(entries[0].mean_nanos > 0);
    }

    #[test]
    fn energy_accumulates_with_work() {
        let mut dev = gpu();
        dev.alloc_buffer(BufferId::new(1), 4).unwrap();
        let before = dev.energy_joules();
        let k = compiled("__kernel void f(__global int* a) { a[0] = 1; }", "f");
        dev.launch(
            &k,
            &[WireArg::Buffer(BufferId::new(1))],
            &NdRange::linear(1, 1),
            &CostModel::new().flops(5.5e12),
            Fidelity::Modeled,
            SimTime::ZERO,
        )
        .unwrap();
        // ~1.43 s of GPU time at 75 W.
        assert!(dev.energy_joules() > before + 50.0);
    }

    #[test]
    fn transfers_charge_pcie_time() {
        let mut dev = gpu();
        dev.alloc_buffer(BufferId::new(1), 1 << 20).unwrap();
        let data = vec![0u8; 1 << 20];
        let g = dev
            .write_buffer(BufferId::new(1), 0, &data, SimTime::ZERO)
            .unwrap();
        let expect = presets::tesla_p4().transfer_time(1 << 20);
        assert_eq!(g.service(), expect);
    }
}
