//! Simulated heterogeneous compute devices.
//!
//! The paper's cluster mixes Intel Xeon E5-2686 CPUs, NVIDIA Tesla P4
//! GPUs and Xilinx VU9P FPGAs. None of that silicon is available here, so
//! this crate substitutes *analytic device models* driving a virtual
//! clock, while kernels still execute for real (on the [`haocl_kernel`]
//! VM or as native code) so results stay verifiable:
//!
//! * [`model`] — the roofline-style [`DeviceModel`]: peak compute, memory
//!   bandwidth, launch overhead, divergence penalties, and the FPGA's
//!   streaming-pipeline character (fill latency, bitstream load).
//! * [`presets`] — calibrated models for the paper's three device types.
//! * [`memory`] — per-device buffer store with capacity accounting.
//! * [`device`] — [`SimDevice`]: a device timeline that admits transfers
//!   and launches, executes them, charges virtual time and energy, and
//!   records the per-kernel profile the scheduler feeds on.
//!
//! # Examples
//!
//! ```
//! use haocl_device::presets;
//! use haocl_kernel::CostModel;
//!
//! let gpu = presets::tesla_p4();
//! let fpga = presets::vu9p();
//! // A uniform compute-heavy launch runs faster on the GPU...
//! let dense = CostModel::new().flops(1e10).bytes_read(1e8);
//! assert!(gpu.kernel_time(&dense) < fpga.kernel_time(&dense));
//! // ...but the FPGA wins on energy for streaming workloads.
//! let stream = CostModel::new().flops(1e10).bytes_read(1e8).streaming();
//! let gpu_energy = gpu.energy(gpu.kernel_time(&stream));
//! let fpga_energy = fpga.energy(fpga.kernel_time(&stream));
//! assert!(fpga_energy < gpu_energy);
//! ```

pub mod device;
pub mod memory;
pub mod model;
pub mod presets;

pub use device::{DeviceError, FusedPart, LaunchOutcome, SimDevice};
pub use memory::MemoryManager;
pub use model::DeviceModel;

pub use haocl_proto::messages::DeviceKind;
