//! Per-device buffer store with capacity accounting.

use std::collections::HashMap;
use std::fmt;

use haocl_kernel::GlobalBuffer;
use haocl_proto::ids::BufferId;

/// A device memory allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// A data-carrying operation touched a virtual (modeled) buffer.
    VirtualBuffer(BufferId),
    /// The allocation would exceed device capacity.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still free.
        available: u64,
    },
    /// The buffer handle is unknown on this device.
    UnknownBuffer(BufferId),
    /// The handle is already allocated on this device.
    DuplicateBuffer(BufferId),
    /// An access fell outside a buffer.
    OutOfBounds {
        /// The buffer accessed.
        buffer: BufferId,
        /// Byte offset requested.
        offset: u64,
        /// Length requested.
        len: u64,
        /// Actual buffer size.
        size: u64,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "out of device memory: requested {requested} bytes, {available} free"
            ),
            MemoryError::UnknownBuffer(id) => write!(f, "unknown buffer {id}"),
            MemoryError::VirtualBuffer(id) => write!(
                f,
                "buffer {id} is virtual (modeled); it carries no real data"
            ),
            MemoryError::DuplicateBuffer(id) => write!(f, "buffer {id} already exists"),
            MemoryError::OutOfBounds {
                buffer,
                offset,
                len,
                size,
            } => write!(
                f,
                "access [{offset}, {offset}+{len}) outside buffer {buffer} of {size} bytes"
            ),
        }
    }
}

impl std::error::Error for MemoryError {}

/// How a buffer is stored on the device.
#[derive(Debug)]
enum Backing {
    /// Real bytes (full-fidelity execution).
    Real(GlobalBuffer),
    /// Capacity accounting only, no bytes (modeled runs at paper scale).
    Virtual(u64),
}

impl Backing {
    fn len(&self) -> u64 {
        match self {
            Backing::Real(b) => b.len() as u64,
            Backing::Virtual(size) => *size,
        }
    }
}

/// Manages the buffers resident on one device.
///
/// # Examples
///
/// ```
/// use haocl_device::MemoryManager;
/// use haocl_proto::ids::BufferId;
///
/// let mut mem = MemoryManager::new(1024);
/// let id = BufferId::new(1);
/// mem.alloc(id, 256)?;
/// mem.write(id, 0, &[1, 2, 3])?;
/// assert_eq!(mem.read(id, 0, 3)?, vec![1, 2, 3]);
/// assert_eq!(mem.used_bytes(), 256);
/// # Ok::<(), haocl_device::memory::MemoryError>(())
/// ```
#[derive(Debug, Default)]
pub struct MemoryManager {
    capacity: u64,
    used: u64,
    buffers: HashMap<BufferId, Backing>,
}

/// Buffers checked out by [`MemoryManager::take_for_launch`]: the
/// deduplicated backing stores plus, per input position, the slot index
/// its buffer landed in.
pub type LaunchBuffers = (Vec<(BufferId, GlobalBuffer)>, Vec<usize>);

impl MemoryManager {
    /// Creates a store with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryManager {
            capacity,
            used: 0,
            buffers: HashMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of live buffers.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Allocates a zero-filled buffer under `id`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::DuplicateBuffer`] if `id` exists;
    /// [`MemoryError::OutOfMemory`] if capacity would be exceeded.
    pub fn alloc(&mut self, id: BufferId, size: u64) -> Result<(), MemoryError> {
        self.alloc_backing(id, size, false)
    }

    /// Allocates a *virtual* buffer: capacity is accounted for but no
    /// bytes are backed. Only modeled transfers and modeled launches may
    /// touch it.
    ///
    /// # Errors
    ///
    /// Same as [`MemoryManager::alloc`].
    pub fn alloc_virtual(&mut self, id: BufferId, size: u64) -> Result<(), MemoryError> {
        self.alloc_backing(id, size, true)
    }

    fn alloc_backing(&mut self, id: BufferId, size: u64, virt: bool) -> Result<(), MemoryError> {
        if self.buffers.contains_key(&id) {
            return Err(MemoryError::DuplicateBuffer(id));
        }
        let available = self.capacity - self.used;
        if size > available {
            return Err(MemoryError::OutOfMemory {
                requested: size,
                available,
            });
        }
        let backing = if virt {
            Backing::Virtual(size)
        } else {
            Backing::Real(GlobalBuffer::zeroed(size as usize))
        };
        self.buffers.insert(id, backing);
        self.used += size;
        Ok(())
    }

    /// Frees the buffer under `id`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::UnknownBuffer`] if `id` is not allocated.
    pub fn free(&mut self, id: BufferId) -> Result<(), MemoryError> {
        match self.buffers.remove(&id) {
            Some(buf) => {
                self.used -= buf.len();
                Ok(())
            }
            None => Err(MemoryError::UnknownBuffer(id)),
        }
    }

    /// Writes `data` into the buffer at `offset`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::UnknownBuffer`] or [`MemoryError::OutOfBounds`].
    pub fn write(&mut self, id: BufferId, offset: u64, data: &[u8]) -> Result<(), MemoryError> {
        let backing = self
            .buffers
            .get_mut(&id)
            .ok_or(MemoryError::UnknownBuffer(id))?;
        let buf = match backing {
            Backing::Real(b) => b,
            Backing::Virtual(_) => return Err(MemoryError::VirtualBuffer(id)),
        };
        let size = buf.len() as u64;
        let len = data.len() as u64;
        if offset.checked_add(len).is_none_or(|end| end > size) {
            return Err(MemoryError::OutOfBounds {
                buffer: id,
                offset,
                len,
                size,
            });
        }
        buf.as_bytes_mut()[offset as usize..(offset + len) as usize].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes from the buffer at `offset`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::UnknownBuffer`] or [`MemoryError::OutOfBounds`].
    pub fn read(&self, id: BufferId, offset: u64, len: u64) -> Result<Vec<u8>, MemoryError> {
        let backing = self
            .buffers
            .get(&id)
            .ok_or(MemoryError::UnknownBuffer(id))?;
        let buf = match backing {
            Backing::Real(b) => b,
            Backing::Virtual(_) => return Err(MemoryError::VirtualBuffer(id)),
        };
        let size = buf.len() as u64;
        if offset.checked_add(len).is_none_or(|end| end > size) {
            return Err(MemoryError::OutOfBounds {
                buffer: id,
                offset,
                len,
                size,
            });
        }
        Ok(buf.as_bytes()[offset as usize..(offset + len) as usize].to_vec())
    }

    /// Copies `len` bytes between two buffers (or within one).
    ///
    /// # Errors
    ///
    /// [`MemoryError::UnknownBuffer`] or [`MemoryError::OutOfBounds`].
    pub fn copy(
        &mut self,
        src: BufferId,
        dst: BufferId,
        src_offset: u64,
        dst_offset: u64,
        len: u64,
    ) -> Result<(), MemoryError> {
        let data = self.read(src, src_offset, len)?;
        self.write(dst, dst_offset, &data)
    }

    /// Whether `id` is allocated here.
    pub fn contains(&self, id: BufferId) -> bool {
        self.buffers.contains_key(&id)
    }

    /// Size in bytes of buffer `id`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::UnknownBuffer`] if `id` is not allocated.
    pub fn size_of(&self, id: BufferId) -> Result<u64, MemoryError> {
        self.buffers
            .get(&id)
            .map(Backing::len)
            .ok_or(MemoryError::UnknownBuffer(id))
    }

    /// Whether `id` is a virtual (modeled) buffer.
    ///
    /// # Errors
    ///
    /// [`MemoryError::UnknownBuffer`] if `id` is not allocated.
    pub fn is_virtual(&self, id: BufferId) -> Result<bool, MemoryError> {
        self.buffers
            .get(&id)
            .map(|b| matches!(b, Backing::Virtual(_)))
            .ok_or(MemoryError::UnknownBuffer(id))
    }

    /// Temporarily removes the buffers named by `ids` (deduplicated, in
    /// first-appearance order) for a kernel launch, returning them with a
    /// mapping from each input position to its slot.
    ///
    /// Re-insert with [`MemoryManager::restore`].
    ///
    /// # Errors
    ///
    /// [`MemoryError::UnknownBuffer`] if any id is missing (no buffers are
    /// removed in that case).
    pub fn take_for_launch(&mut self, ids: &[BufferId]) -> Result<LaunchBuffers, MemoryError> {
        for id in ids {
            match self.buffers.get(id) {
                None => return Err(MemoryError::UnknownBuffer(*id)),
                Some(Backing::Virtual(_)) => return Err(MemoryError::VirtualBuffer(*id)),
                Some(Backing::Real(_)) => {}
            }
        }
        let mut taken: Vec<(BufferId, GlobalBuffer)> = Vec::new();
        let mut slots = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(pos) = taken.iter().position(|(t, _)| t == id) {
                slots.push(pos);
            } else {
                let Some(Backing::Real(buf)) = self.buffers.remove(id) else {
                    unreachable!("checked above");
                };
                taken.push((*id, buf));
                slots.push(taken.len() - 1);
            }
        }
        Ok((taken, slots))
    }

    /// Returns buffers taken by [`MemoryManager::take_for_launch`].
    pub fn restore(&mut self, taken: Vec<(BufferId, GlobalBuffer)>) {
        for (id, buf) in taken {
            self.buffers.insert(id, Backing::Real(buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> BufferId {
        BufferId::new(n)
    }

    #[test]
    fn alloc_free_tracks_usage() {
        let mut m = MemoryManager::new(1000);
        m.alloc(id(1), 400).unwrap();
        m.alloc(id(2), 600).unwrap();
        assert_eq!(m.used_bytes(), 1000);
        assert_eq!(m.buffer_count(), 2);
        m.free(id(1)).unwrap();
        assert_eq!(m.used_bytes(), 600);
    }

    #[test]
    fn over_allocation_fails() {
        let mut m = MemoryManager::new(100);
        m.alloc(id(1), 80).unwrap();
        let err = m.alloc(id(2), 21).unwrap_err();
        assert_eq!(
            err,
            MemoryError::OutOfMemory {
                requested: 21,
                available: 20
            }
        );
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut m = MemoryManager::new(100);
        m.alloc(id(1), 10).unwrap();
        assert_eq!(m.alloc(id(1), 10), Err(MemoryError::DuplicateBuffer(id(1))));
    }

    #[test]
    fn write_read_roundtrip_with_offset() {
        let mut m = MemoryManager::new(100);
        m.alloc(id(1), 10).unwrap();
        m.write(id(1), 4, &[9, 8, 7]).unwrap();
        assert_eq!(m.read(id(1), 4, 3).unwrap(), vec![9, 8, 7]);
        assert_eq!(m.read(id(1), 0, 4).unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn out_of_bounds_write_rejected() {
        let mut m = MemoryManager::new(100);
        m.alloc(id(1), 10).unwrap();
        let err = m.write(id(1), 8, &[1, 2, 3]).unwrap_err();
        assert!(matches!(err, MemoryError::OutOfBounds { .. }));
        // Offset overflow must not wrap around.
        let err = m.write(id(1), u64::MAX, &[1]).unwrap_err();
        assert!(matches!(err, MemoryError::OutOfBounds { .. }));
    }

    #[test]
    fn copy_between_buffers() {
        let mut m = MemoryManager::new(100);
        m.alloc(id(1), 4).unwrap();
        m.alloc(id(2), 4).unwrap();
        m.write(id(1), 0, &[1, 2, 3, 4]).unwrap();
        m.copy(id(1), id(2), 1, 0, 3).unwrap();
        assert_eq!(m.read(id(2), 0, 4).unwrap(), vec![2, 3, 4, 0]);
    }

    #[test]
    fn take_for_launch_deduplicates() {
        let mut m = MemoryManager::new(100);
        m.alloc(id(1), 4).unwrap();
        m.alloc(id(2), 4).unwrap();
        let (taken, slots) = m.take_for_launch(&[id(1), id(2), id(1)]).unwrap();
        assert_eq!(taken.len(), 2);
        assert_eq!(slots, vec![0, 1, 0]);
        assert_eq!(m.buffer_count(), 0);
        m.restore(taken);
        assert_eq!(m.buffer_count(), 2);
    }

    #[test]
    fn take_for_launch_is_atomic_on_failure() {
        let mut m = MemoryManager::new(100);
        m.alloc(id(1), 4).unwrap();
        let err = m.take_for_launch(&[id(1), id(9)]).unwrap_err();
        assert_eq!(err, MemoryError::UnknownBuffer(id(9)));
        // Nothing was removed.
        assert!(m.contains(id(1)));
    }

    #[test]
    fn virtual_buffers_account_capacity_without_bytes() {
        let mut m = MemoryManager::new(100);
        m.alloc_virtual(id(1), 80).unwrap();
        assert_eq!(m.used_bytes(), 80);
        assert!(m.is_virtual(id(1)).unwrap());
        assert_eq!(m.size_of(id(1)).unwrap(), 80);
        // Real data operations are rejected.
        assert_eq!(
            m.write(id(1), 0, &[1]),
            Err(MemoryError::VirtualBuffer(id(1)))
        );
        assert_eq!(m.read(id(1), 0, 1), Err(MemoryError::VirtualBuffer(id(1))));
        assert_eq!(
            m.take_for_launch(&[id(1)]).unwrap_err(),
            MemoryError::VirtualBuffer(id(1))
        );
        m.free(id(1)).unwrap();
        assert_eq!(m.used_bytes(), 0);
    }

    #[test]
    fn size_of_reports_length() {
        let mut m = MemoryManager::new(100);
        m.alloc(id(1), 42).unwrap();
        assert_eq!(m.size_of(id(1)).unwrap(), 42);
        assert!(m.size_of(id(2)).is_err());
    }
}
