//! The analytic device performance model.

use haocl_kernel::CostModel;
use haocl_proto::messages::{DeviceDescriptor, DeviceKind};
use haocl_sim::SimDuration;

/// A roofline-style performance and power model of one device.
///
/// Kernel time is `max(compute_time, memory_time) + fixed overheads`,
/// where the effective compute rate depends on how well the launch's
/// structure (uniform? streaming?) matches the device class:
///
/// * **CPU** — modest peak, tolerant of divergence.
/// * **GPU** — high peak for uniform data-parallel work, heavily
///   penalized by divergence.
/// * **FPGA** — modelled as a streaming processor (paper §III-A): a deep
///   pipeline with a fill latency per launch and a *streaming efficiency*
///   factor — near its peak on streaming passes, far below it otherwise.
///   Loading a bitstream (reconfiguration) costs extra, once per program.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Device class.
    pub kind: DeviceKind,
    /// Human-readable model name.
    pub name: String,
    /// Global memory capacity, bytes.
    pub mem_bytes: u64,
    /// Peak single-precision compute, FLOP/s.
    pub peak_flops: f64,
    /// Global memory bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Host-to-device (PCIe) bandwidth, bytes/s.
    pub pcie_bandwidth: f64,
    /// Fixed cost to launch any kernel.
    pub launch_overhead: SimDuration,
    /// Fraction of peak sustained on bulk data-parallel (batch) work.
    pub batch_fraction: f64,
    /// Fraction of peak sustained on sequential streaming passes. High
    /// for dataflow pipelines (FPGAs), low for latency-hiding architectures
    /// that need massive independent parallelism (GPUs).
    pub streaming_fraction: f64,
    /// Multiplier (>1) applied to compute time for divergent launches.
    pub divergence_penalty: f64,
    /// Pipeline fill latency added per launch (FPGAs).
    pub pipeline_fill: SimDuration,
    /// Bitstream load / reconfiguration time (FPGAs; zero otherwise).
    pub reconfig_time: SimDuration,
    /// Power draw under load, watts.
    pub load_power_watts: f64,
    /// Idle power draw, watts.
    pub idle_power_watts: f64,
    /// Degradation multiplier (≥ 1.0) applied to every kernel time —
    /// `1.0` is a healthy device; `3.0` models a thermally throttled or
    /// retry-storming part running 3× slow. Injectable at runtime via
    /// the `SetThrottle` control call, so drift detection can be
    /// exercised against an established healthy baseline.
    pub throttle: f64,
}

impl DeviceModel {
    /// Virtual execution time of a launch described by `cost`.
    ///
    /// Uses the roofline: compute-bound time and memory-bound time are
    /// computed independently and the kernel takes the larger, plus the
    /// launch overhead (and pipeline fill for streaming processors).
    pub fn kernel_time(&self, cost: &CostModel) -> SimDuration {
        let fraction = if cost.is_streaming() {
            self.streaming_fraction
        } else {
            self.batch_fraction
        };
        let mut rate = self.peak_flops * fraction;
        if !cost.is_uniform() {
            rate /= self.divergence_penalty;
        }
        let compute_secs = if rate > 0.0 {
            cost.total_flops() / rate
        } else {
            0.0
        };
        let memory_secs = if self.mem_bandwidth > 0.0 {
            cost.total_bytes() / self.mem_bandwidth
        } else {
            0.0
        };
        let body = SimDuration::from_secs_f64(compute_secs.max(memory_secs));
        let healthy = self.launch_overhead + self.pipeline_fill + body;
        if self.throttle > 1.0 {
            SimDuration::from_nanos((healthy.as_nanos() as f64 * self.throttle) as u64)
        } else {
            healthy
        }
    }

    /// Returns the model with a degradation multiplier applied
    /// (builder-style; clamped to ≥ 1.0).
    pub fn with_throttle(mut self, factor: f64) -> Self {
        self.throttle = factor.max(1.0);
        self
    }

    /// Virtual time to move `bytes` across the host↔device link (PCIe).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.pcie_bandwidth <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / self.pcie_bandwidth)
    }

    /// Energy consumed running under load for `dur`, joules.
    pub fn energy(&self, dur: SimDuration) -> f64 {
        self.load_power_watts * dur.as_secs_f64()
    }

    /// The wire descriptor advertised to the host.
    pub fn descriptor(&self, index: u8) -> DeviceDescriptor {
        DeviceDescriptor {
            index,
            kind: self.kind,
            name: self.name.clone(),
            mem_bytes: self.mem_bytes,
            gflops: self.peak_flops / 1e9,
            mem_bandwidth_gbps: self.mem_bandwidth / 1e9,
            power_watts: self.load_power_watts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn compute_bound_launch_scales_with_flops() {
        let gpu = presets::tesla_p4();
        let small = CostModel::new().flops(1e9);
        let large = CostModel::new().flops(4e9);
        let t1 = gpu.kernel_time(&small) - gpu.launch_overhead;
        let t4 = gpu.kernel_time(&large) - gpu.launch_overhead;
        let ratio = t4.as_secs_f64() / t1.as_secs_f64();
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn memory_bound_launch_ignores_extra_bandwidth_headroom() {
        let gpu = presets::tesla_p4();
        // Almost no compute, lots of traffic: memory roofline dominates.
        let cost = CostModel::new().flops(1.0).bytes_read(192e9 / 2.0);
        let t = gpu.kernel_time(&cost);
        assert!((t.as_secs_f64() - 0.5).abs() < 0.01, "t = {t}");
    }

    #[test]
    fn divergence_penalizes_gpu_more_than_cpu() {
        let gpu = presets::tesla_p4();
        let cpu = presets::xeon_e5_2686();
        let uniform = CostModel::new().flops(1e10);
        let divergent = CostModel::new().flops(1e10).divergent();
        let gpu_slowdown =
            gpu.kernel_time(&divergent).as_secs_f64() / gpu.kernel_time(&uniform).as_secs_f64();
        let cpu_slowdown =
            cpu.kernel_time(&divergent).as_secs_f64() / cpu.kernel_time(&uniform).as_secs_f64();
        assert!(gpu_slowdown > cpu_slowdown);
    }

    #[test]
    fn fpga_prefers_streaming() {
        let fpga = presets::vu9p();
        let stream = CostModel::new().flops(1e10).streaming();
        let batch = CostModel::new().flops(1e10);
        assert!(fpga.kernel_time(&stream) < fpga.kernel_time(&batch));
    }

    #[test]
    fn transfer_time_is_linear_in_bytes() {
        let gpu = presets::tesla_p4();
        let t1 = gpu.transfer_time(1 << 20);
        let t2 = gpu.transfer_time(2 << 20);
        // Within a nanosecond of exactly double (float rounding).
        let diff = t2.as_nanos() as i64 - 2 * t1.as_nanos() as i64;
        assert!(diff.abs() <= 1, "diff {diff}ns");
    }

    #[test]
    fn descriptor_mirrors_model() {
        let fpga = presets::vu9p();
        let d = fpga.descriptor(3);
        assert_eq!(d.index, 3);
        assert_eq!(d.kind, DeviceKind::Fpga);
        assert_eq!(d.mem_bytes, fpga.mem_bytes);
        assert!((d.gflops - fpga.peak_flops / 1e9).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_time() {
        let gpu = presets::tesla_p4();
        let e = gpu.energy(SimDuration::from_secs(2));
        assert!((e - 2.0 * gpu.load_power_watts).abs() < 1e-9);
    }

    #[test]
    fn throttle_scales_kernel_time_uniformly() {
        let healthy = presets::tesla_p4();
        let sick = presets::tesla_p4().with_throttle(3.0);
        let cost = CostModel::new().flops(1e10);
        let ratio =
            sick.kernel_time(&cost).as_secs_f64() / healthy.kernel_time(&cost).as_secs_f64();
        assert!((ratio - 3.0).abs() < 0.01, "ratio {ratio}");
        // Transfers are unaffected — throttling models compute-side
        // degradation, not link health.
        assert_eq!(sick.transfer_time(1 << 20), healthy.transfer_time(1 << 20));
        // Sub-unity factors are clamped: health never speeds a device up.
        let boosted = presets::tesla_p4().with_throttle(0.5);
        assert_eq!(boosted.kernel_time(&cost), healthy.kernel_time(&cost));
    }
}
