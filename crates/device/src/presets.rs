//! Calibrated device models for the paper's cluster hardware.
//!
//! Numbers come from public spec sheets, derated to sustained rates. The
//! reproduction only needs the *ratios* to be faithful — GPU ≫ FPGA ≫ CPU
//! on uniform dense compute, FPGA best on energy and on streaming passes —
//! because the paper's figures are speedups normalized to a single node.

use haocl_proto::messages::DeviceKind;
use haocl_sim::SimDuration;

use crate::model::DeviceModel;

/// Intel Xeon E5-2686 v4 (18 cores, AVX2) — the CPU in every node of the
/// paper's Alibaba Cloud cluster.
pub fn xeon_e5_2686() -> DeviceModel {
    DeviceModel {
        kind: DeviceKind::Cpu,
        name: "Intel Xeon E5-2686 v4 (simulated)".to_string(),
        mem_bytes: 64 << 30,
        peak_flops: 1.0e12,
        mem_bandwidth: 70.0e9,
        // Host memory is the device memory: copies still cost a memcpy.
        pcie_bandwidth: 20.0e9,
        launch_overhead: SimDuration::from_micros(4),
        batch_fraction: 0.55,
        streaming_fraction: 0.50,
        divergence_penalty: 1.3,
        pipeline_fill: SimDuration::ZERO,
        reconfig_time: SimDuration::ZERO,
        load_power_watts: 145.0,
        idle_power_watts: 60.0,
        throttle: 1.0,
    }
}

/// NVIDIA Tesla P4 — the GPU in the paper's 16 GPU nodes.
pub fn tesla_p4() -> DeviceModel {
    DeviceModel {
        kind: DeviceKind::Gpu,
        name: "NVIDIA Tesla P4 (simulated)".to_string(),
        mem_bytes: 8 << 30,
        peak_flops: 5.5e12,
        mem_bandwidth: 192.0e9,
        pcie_bandwidth: 12.0e9,
        launch_overhead: SimDuration::from_micros(10),
        batch_fraction: 0.70,
        streaming_fraction: 0.25,
        divergence_penalty: 4.0,
        pipeline_fill: SimDuration::ZERO,
        reconfig_time: SimDuration::ZERO,
        load_power_watts: 75.0,
        idle_power_watts: 8.0,
        throttle: 1.0,
    }
}

/// Xilinx VU9P — the FPGA in the paper's 4 FPGA nodes, used as a
/// streaming processor with pre-built bitstreams (§III-D).
pub fn vu9p() -> DeviceModel {
    DeviceModel {
        kind: DeviceKind::Fpga,
        name: "Xilinx VU9P (simulated)".to_string(),
        mem_bytes: 16 << 30,
        peak_flops: 1.8e12,
        mem_bandwidth: 60.0e9,
        pcie_bandwidth: 10.0e9,
        launch_overhead: SimDuration::from_micros(20),
        // Off its streaming sweet spot the dataflow pipeline stalls
        // (batch), but as a pure dataflow pipe it nears peak (streaming).
        batch_fraction: 0.35,
        streaming_fraction: 0.85,
        divergence_penalty: 2.0,
        pipeline_fill: SimDuration::from_micros(50),
        reconfig_time: SimDuration::from_secs(2),
        load_power_watts: 45.0,
        idle_power_watts: 12.0,
        throttle: 1.0,
    }
}

/// The preset for a device kind (the node constructor's default).
pub fn by_kind(kind: DeviceKind) -> DeviceModel {
    match kind {
        DeviceKind::Cpu => xeon_e5_2686(),
        DeviceKind::Gpu => tesla_p4(),
        DeviceKind::Fpga => vu9p(),
    }
}

/// A degraded variant of the kind's preset: every kernel runs `factor`×
/// slow (thermal throttling / ECC retry storms), while the advertised
/// descriptor still claims full speed — exactly the silent sub-healthy
/// device the drift detector exists to catch.
pub fn throttled(kind: DeviceKind, factor: f64) -> DeviceModel {
    by_kind(kind).with_throttle(factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl_kernel::CostModel;

    #[test]
    fn presets_have_expected_kinds() {
        assert_eq!(xeon_e5_2686().kind, DeviceKind::Cpu);
        assert_eq!(tesla_p4().kind, DeviceKind::Gpu);
        assert_eq!(vu9p().kind, DeviceKind::Fpga);
        assert_eq!(by_kind(DeviceKind::Gpu).name, tesla_p4().name);
    }

    #[test]
    fn gpu_beats_cpu_and_fpga_on_uniform_dense_compute() {
        let cost = CostModel::new().flops(1e11).bytes_read(1e8);
        let gpu = tesla_p4().kernel_time(&cost);
        let cpu = xeon_e5_2686().kernel_time(&cost);
        let fpga = vu9p().kernel_time(&cost);
        assert!(gpu < fpga, "gpu {gpu} vs fpga {fpga}");
        assert!(fpga < cpu, "fpga {fpga} vs cpu {cpu}");
    }

    #[test]
    fn fpga_is_most_energy_efficient_on_streaming_work() {
        let cost = CostModel::new().flops(1e11).bytes_read(1e9).streaming();
        let joules = |m: &DeviceModel| m.energy(m.kernel_time(&cost));
        let gpu = joules(&tesla_p4());
        let cpu = joules(&xeon_e5_2686());
        let fpga = joules(&vu9p());
        assert!(fpga < gpu, "fpga {fpga} J vs gpu {gpu} J");
        assert!(fpga < cpu, "fpga {fpga} J vs cpu {cpu} J");
    }

    #[test]
    fn throttled_preset_runs_slow_but_advertises_full_speed() {
        let sick = throttled(DeviceKind::Gpu, 2.0);
        let healthy = tesla_p4();
        let cost = CostModel::new().flops(1e10);
        assert!(sick.kernel_time(&cost) > healthy.kernel_time(&cost));
        // The descriptor betrays nothing — degradation is only visible
        // in observed timings.
        assert_eq!(sick.descriptor(0), healthy.descriptor(0));
    }

    #[test]
    fn only_the_fpga_pays_reconfiguration() {
        assert_eq!(tesla_p4().reconfig_time, SimDuration::ZERO);
        assert_eq!(xeon_e5_2686().reconfig_time, SimDuration::ZERO);
        assert!(vu9p().reconfig_time > SimDuration::ZERO);
    }
}
