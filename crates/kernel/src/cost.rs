//! Launch cost models.
//!
//! A [`CostModel`] describes a whole kernel launch in device-independent
//! terms — floating-point work, memory traffic, and the structural traits
//! (uniformity, streamability) that decide how well each device class
//! digests it. `haocl-device` converts a cost model into virtual seconds
//! using its per-device rates; `haocl-sched`'s heterogeneity-aware policy
//! compares the conversions across device classes to place work.

/// Device-independent cost of one kernel launch.
///
/// # Examples
///
/// ```
/// use haocl_kernel::CostModel;
///
/// // 1024×1024 single-precision matrix multiply.
/// let n = 1024_f64;
/// let cost = CostModel::new()
///     .flops(2.0 * n * n * n)
///     .bytes_read(3.0 * 4.0 * n * n)
///     .bytes_written(4.0 * n * n);
/// assert!(cost.arithmetic_intensity() > 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    flops: f64,
    bytes_read: f64,
    bytes_written: f64,
    uniform: bool,
    streaming: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            flops: 0.0,
            bytes_read: 0.0,
            bytes_written: 0.0,
            uniform: true,
            streaming: false,
        }
    }
}

impl CostModel {
    /// An empty cost model (zero work, uniform, non-streaming).
    pub fn new() -> Self {
        CostModel::default()
    }

    /// Sets total floating-point operations for the launch.
    ///
    /// # Panics
    ///
    /// Panics if `flops` is negative or not finite.
    pub fn flops(mut self, flops: f64) -> Self {
        assert!(flops.is_finite() && flops >= 0.0, "flops must be >= 0");
        self.flops = flops;
        self
    }

    /// Sets total bytes read from global memory.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or not finite.
    pub fn bytes_read(mut self, bytes: f64) -> Self {
        assert!(bytes.is_finite() && bytes >= 0.0, "bytes must be >= 0");
        self.bytes_read = bytes;
        self
    }

    /// Sets total bytes written to global memory.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or not finite.
    pub fn bytes_written(mut self, bytes: f64) -> Self {
        assert!(bytes.is_finite() && bytes >= 0.0, "bytes must be >= 0");
        self.bytes_written = bytes;
        self
    }

    /// Marks the launch as control/data-divergent (GPU-unfriendly), e.g.
    /// irregular graph traversal.
    pub fn divergent(mut self) -> Self {
        self.uniform = false;
        self
    }

    /// Marks the launch as a sequential streaming pass (FPGA-friendly).
    pub fn streaming(mut self) -> Self {
        self.streaming = true;
        self
    }

    /// Total floating-point operations.
    pub fn total_flops(&self) -> f64 {
        self.flops
    }

    /// Total bytes read.
    pub fn total_bytes_read(&self) -> f64 {
        self.bytes_read
    }

    /// Total bytes written.
    pub fn total_bytes_written(&self) -> f64 {
        self.bytes_written
    }

    /// Total memory traffic (read + written).
    pub fn total_bytes(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }

    /// Whether control flow and memory access are regular across items.
    pub fn is_uniform(&self) -> bool {
        self.uniform
    }

    /// Whether the access pattern is a sequential stream.
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// FLOPs per byte of memory traffic (∞-safe: returns `f64::INFINITY`
    /// for pure-compute launches, `0.0` for empty ones).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.total_bytes();
        if bytes == 0.0 {
            if self.flops == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.flops / bytes
        }
    }

    /// Splits the launch into `parts` equal shares (for data-parallel
    /// partitioning across devices).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn split(&self, parts: u32) -> CostModel {
        assert!(parts > 0, "cannot split into zero parts");
        CostModel {
            flops: self.flops / f64::from(parts),
            bytes_read: self.bytes_read / f64::from(parts),
            bytes_written: self.bytes_written / f64::from(parts),
            uniform: self.uniform,
            streaming: self.streaming,
        }
    }

    /// Scales the model by a factor (for partial ranges).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(&self, factor: f64) -> CostModel {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be >= 0"
        );
        CostModel {
            flops: self.flops * factor,
            bytes_read: self.bytes_read * factor,
            bytes_written: self.bytes_written * factor,
            uniform: self.uniform,
            streaming: self.streaming,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let c = CostModel::new()
            .flops(100.0)
            .bytes_read(40.0)
            .bytes_written(10.0)
            .divergent()
            .streaming();
        assert_eq!(c.total_flops(), 100.0);
        assert_eq!(c.total_bytes(), 50.0);
        assert!(!c.is_uniform());
        assert!(c.is_streaming());
        assert!((c.arithmetic_intensity() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn intensity_edge_cases() {
        assert_eq!(CostModel::new().arithmetic_intensity(), 0.0);
        assert_eq!(
            CostModel::new().flops(5.0).arithmetic_intensity(),
            f64::INFINITY
        );
    }

    #[test]
    fn split_divides_work() {
        let c = CostModel::new().flops(100.0).bytes_read(60.0).split(4);
        assert_eq!(c.total_flops(), 25.0);
        assert_eq!(c.total_bytes_read(), 15.0);
    }

    #[test]
    fn scale_multiplies() {
        let c = CostModel::new().flops(8.0).scale(0.5);
        assert_eq!(c.total_flops(), 4.0);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn split_zero_panics() {
        let _ = CostModel::new().split(0);
    }

    #[test]
    #[should_panic(expected = "flops must be")]
    fn negative_flops_panics() {
        let _ = CostModel::new().flops(-1.0);
    }
}
