//! Kernel abstraction for the HaoCL runtime.
//!
//! Device nodes execute kernels in one of two forms:
//!
//! * **Compiled** — OpenCL C source compiled by [`haocl_clc`] and run on
//!   its work-item VM. This is the `clCreateProgramWithSource` path used
//!   by CPU and GPU nodes.
//! * **Native** — a pre-built Rust implementation registered in a
//!   [`KernelRegistry`]. This models the paper's FPGA flow (§III-D):
//!   *"the tasks are pre-built as executable binaries with the bitstreams"*
//!   — FPGA nodes cannot compile arbitrary source online and instead look
//!   kernels up in their bitstream store. Native kernels are also the fast
//!   path for large launches on any device.
//!
//! Both forms execute through one entry point, [`Kernel::execute`], and
//! both are costed for virtual time with a [`CostModel`].
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use haocl_kernel::{ArgValue, GlobalBuffer, Kernel, NdRange};
//!
//! let program = haocl_clc::compile(
//!     "__kernel void neg(__global int* a) { int i = get_global_id(0); a[i] = -a[i]; }",
//! )?;
//! let kernel = Kernel::Compiled(Arc::new(program.kernel("neg").unwrap().clone()));
//! let mut bufs = vec![GlobalBuffer::from_i32(&[1, -2, 3])];
//! kernel.execute(&[ArgValue::global(0)], &mut bufs, &NdRange::linear(3, 1))?;
//! assert_eq!(bufs[0].as_i32(), vec![-1, 2, -3]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cost;
pub mod registry;

use std::fmt;
use std::sync::Arc;

pub use cost::CostModel;
pub use registry::KernelRegistry;

// The VM's launch vocabulary is the kernel vocabulary; re-export it so
// downstream crates depend on `haocl-kernel` only.
pub use haocl_clc::vm::{ArgValue, ExecError, ExecStats, GlobalBuffer, NdRange, Value};
pub use haocl_clc::{ClcError, CompiledKernel, CompiledProgram};

/// A pre-built kernel implementation (the "bitstream" form).
///
/// Implementations must be deterministic: the cluster runtime may re-run a
/// kernel on a different node and expects identical buffers.
pub trait NativeKernel: Send + Sync {
    /// The kernel name used for lookup (matches the OpenCL kernel name).
    fn name(&self) -> &str;

    /// Number of arguments the kernel expects.
    fn arity(&self) -> usize;

    /// Executes the kernel across `range`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on argument mismatches or out-of-bounds
    /// accesses, mirroring the VM's failure modes.
    fn execute(
        &self,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        range: &NdRange,
    ) -> Result<ExecStats, ExecError>;
}

/// An executable kernel in either form.
#[derive(Clone)]
pub enum Kernel {
    /// Bytecode compiled from OpenCL C source.
    Compiled(Arc<CompiledKernel>),
    /// A registered pre-built implementation.
    Native(Arc<dyn NativeKernel>),
}

impl Kernel {
    /// The kernel's name.
    pub fn name(&self) -> &str {
        match self {
            Kernel::Compiled(k) => &k.name,
            Kernel::Native(k) => k.name(),
        }
    }

    /// Number of arguments the kernel expects.
    pub fn arity(&self) -> usize {
        match self {
            Kernel::Compiled(k) => k.arity(),
            Kernel::Native(k) => k.arity(),
        }
    }

    /// Whether this is a pre-built native kernel (bitstream form).
    pub fn is_native(&self) -> bool {
        matches!(self, Kernel::Native(_))
    }

    /// Executes the kernel across `range` against `buffers`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for invalid arguments, out-of-bounds buffer
    /// accesses, division by zero or barrier divergence.
    pub fn execute(
        &self,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        range: &NdRange,
    ) -> Result<ExecStats, ExecError> {
        if args.len() != self.arity() {
            return Err(ExecError::from_message(format!(
                "kernel `{}` expects {} argument(s), got {}",
                self.name(),
                self.arity(),
                args.len()
            )));
        }
        match self {
            Kernel::Compiled(k) => haocl_clc::vm::run_ndrange(k, args, buffers, range),
            Kernel::Native(k) => k.execute(args, buffers, range),
        }
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kernel::Compiled(k) => write!(f, "Kernel::Compiled({})", k.name),
            Kernel::Native(k) => write!(f, "Kernel::Native({})", k.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;

    impl NativeKernel for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }

        fn arity(&self) -> usize {
            1
        }

        fn execute(
            &self,
            _args: &[ArgValue],
            buffers: &mut [GlobalBuffer],
            range: &NdRange,
        ) -> Result<ExecStats, ExecError> {
            let mut data = buffers[0].as_i32();
            for v in data.iter_mut() {
                *v *= 2;
            }
            buffers[0] = GlobalBuffer::from_i32(&data);
            Ok(ExecStats {
                instructions: range.total_items(),
                work_items: range.total_items(),
                work_groups: range.total_groups(),
                barriers: 0,
            })
        }
    }

    #[test]
    fn native_kernel_executes() {
        let k = Kernel::Native(Arc::new(Doubler));
        assert_eq!(k.name(), "doubler");
        assert!(k.is_native());
        let mut bufs = vec![GlobalBuffer::from_i32(&[1, 2, 3, 4])];
        k.execute(&[ArgValue::global(0)], &mut bufs, &NdRange::linear(4, 1))
            .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![2, 4, 6, 8]);
    }

    #[test]
    fn compiled_kernel_executes() {
        let p = haocl_clc::compile(
            "__kernel void half(__global int* a) { int i = get_global_id(0); a[i] = a[i] / 2; }",
        )
        .unwrap();
        let k = Kernel::Compiled(Arc::new(p.kernel("half").unwrap().clone()));
        assert!(!k.is_native());
        assert_eq!(k.arity(), 1);
        let mut bufs = vec![GlobalBuffer::from_i32(&[2, 4, 6, 8])];
        k.execute(&[ArgValue::global(0)], &mut bufs, &NdRange::linear(4, 2))
            .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn arity_mismatch_fails_before_dispatch() {
        let k = Kernel::Native(Arc::new(Doubler));
        let mut bufs = vec![GlobalBuffer::from_i32(&[1])];
        let err = k
            .execute(&[], &mut bufs, &NdRange::linear(1, 1))
            .unwrap_err();
        assert!(err.message().contains("expects 1 argument"));
    }

    #[test]
    fn debug_shows_form_and_name() {
        let k = Kernel::Native(Arc::new(Doubler));
        assert_eq!(format!("{k:?}"), "Kernel::Native(doubler)");
    }
}
