//! The pre-built kernel store ("bitstream registry").
//!
//! FPGA nodes in the paper cannot compile arbitrary OpenCL source online;
//! their kernels arrive as pre-built bitstreams (§III-D). The
//! [`KernelRegistry`] models that store: named [`NativeKernel`]s are
//! registered at deployment time and looked up by name at launch time.
//! CPU/GPU nodes also consult the registry as a fast path before falling
//! back to source compilation.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::NativeKernel;

/// A thread-safe, shareable store of pre-built kernels keyed by name.
///
/// Cloning is cheap and clones share the same underlying store.
///
/// # Examples
///
/// ```
/// use haocl_kernel::KernelRegistry;
///
/// let registry = KernelRegistry::new();
/// assert!(registry.get("matmul").is_none());
/// assert!(registry.is_empty());
/// ```
#[derive(Clone, Default)]
pub struct KernelRegistry {
    inner: Arc<RwLock<HashMap<String, Arc<dyn NativeKernel>>>>,
}

impl KernelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        KernelRegistry::default()
    }

    /// Registers (or replaces) a kernel under its own name.
    ///
    /// Returns the previously registered kernel, if any.
    pub fn register(&self, kernel: Arc<dyn NativeKernel>) -> Option<Arc<dyn NativeKernel>> {
        let name = kernel.name().to_string();
        self.inner.write().insert(name, kernel)
    }

    /// Looks up a kernel by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn NativeKernel>> {
        self.inner.read().get(name).cloned()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().contains_key(name)
    }

    /// Removes a kernel by name, returning it if present.
    pub fn unregister(&self, name: &str) -> Option<Arc<dyn NativeKernel>> {
        self.inner.write().remove(name)
    }

    /// Registered kernel names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the registry has no kernels.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

impl std::fmt::Debug for KernelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelRegistry")
            .field("kernels", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArgValue, ExecError, ExecStats, GlobalBuffer, NdRange};

    struct Noop(&'static str);

    impl NativeKernel for Noop {
        fn name(&self) -> &str {
            self.0
        }

        fn arity(&self) -> usize {
            0
        }

        fn execute(
            &self,
            _args: &[ArgValue],
            _buffers: &mut [GlobalBuffer],
            _range: &NdRange,
        ) -> Result<ExecStats, ExecError> {
            Ok(ExecStats::default())
        }
    }

    #[test]
    fn register_and_lookup() {
        let r = KernelRegistry::new();
        assert!(r.register(Arc::new(Noop("a"))).is_none());
        assert!(r.contains("a"));
        assert_eq!(r.get("a").unwrap().name(), "a");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn replace_returns_previous() {
        let r = KernelRegistry::new();
        r.register(Arc::new(Noop("k")));
        let prev = r.register(Arc::new(Noop("k")));
        assert!(prev.is_some());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn unregister_removes() {
        let r = KernelRegistry::new();
        r.register(Arc::new(Noop("k")));
        assert!(r.unregister("k").is_some());
        assert!(r.unregister("k").is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let r = KernelRegistry::new();
        let r2 = r.clone();
        r.register(Arc::new(Noop("shared")));
        assert!(r2.contains("shared"));
    }

    #[test]
    fn names_are_sorted() {
        let r = KernelRegistry::new();
        r.register(Arc::new(Noop("zeta")));
        r.register(Arc::new(Noop("alpha")));
        assert_eq!(r.names(), vec!["alpha", "zeta"]);
    }
}
