//! Seeded, deterministic fault injection for the fabric.
//!
//! A [`ChaosPolicy`] decides, for every frame the fabric is asked to
//! transmit, whether to deliver it intact, drop it, delay it, duplicate
//! it, hold it for reordering, or reset the connection — plus whether
//! either endpoint host is currently *blackholed* by a simulated NMP
//! crash or a network partition. Decisions are a pure function of
//! `(seed, spec, directed link, per-link frame index)`: two policies
//! built from the same seed and spec return identical verdict sequences
//! for identical frame sequences, which is what makes chaos runs
//! reproducible and failures replayable from a one-line spec.
//!
//! The policy never touches wall-clock time or the shared virtual
//! [`Clock`](haocl_sim::Clock): delays are expressed as extra *virtual*
//! arrival time, and crash/partition windows count frames, not seconds.
//!
//! Configuration comes from [`ChaosSpec::parse`] — either a named preset
//! (`crash`, `partition`, `lossy`) or a comma-separated clause list:
//!
//! ```text
//! drop=0.02,delay=0.05:200us,dup=0.02,reorder=0.02,reset=0.001,
//! crash=gpu0@120,partition=gpu1@50..90
//! ```
//!
//! The environment knobs `HAOCL_CHAOS_SPEC` / `HAOCL_CHAOS_SEED` feed
//! [`ChaosPolicy::from_env`]; a `*` host in a clause is resolved against
//! the candidate host list by the seed.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use haocl_sim::SimDuration;

/// What a [`ChaosPolicy`] decided for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosVerdict {
    /// Silently lose the frame (includes crash/partition blackholes).
    pub drop: bool,
    /// Transmit the frame twice back to back.
    pub duplicate: bool,
    /// Hold the frame and release it after the link's next frame.
    pub reorder: bool,
    /// Fail the send with a connection reset.
    pub reset: bool,
    /// Extra virtual time added to the frame's arrival.
    pub extra_delay: SimDuration,
}

impl ChaosVerdict {
    /// A verdict that delivers the frame untouched.
    pub fn deliver() -> Self {
        ChaosVerdict::default()
    }

    /// Whether the frame passes through unmodified.
    pub fn is_clean(&self) -> bool {
        *self == ChaosVerdict::default()
    }

    /// Short tag naming the injected fault (`"ok"` when clean). Drop
    /// wins over the others because a dropped frame is never sent.
    pub fn kind(&self) -> &'static str {
        if self.reset {
            "reset"
        } else if self.drop {
            "drop"
        } else if self.reorder {
            "reorder"
        } else if self.duplicate {
            "dup"
        } else if self.extra_delay > SimDuration::ZERO {
            "delay"
        } else {
            "ok"
        }
    }
}

/// The declarative fault schedule: probabilities for per-frame faults
/// plus frame-counted crash/partition windows per host.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosSpec {
    /// Probability of dropping a frame.
    pub drop_p: f64,
    /// Probability of delaying a frame.
    pub delay_p: f64,
    /// Extra virtual arrival time for delayed frames.
    pub delay: SimDuration,
    /// Probability of duplicating a frame.
    pub dup_p: f64,
    /// Probability of holding a frame for reordering.
    pub reorder_p: f64,
    /// Probability of failing a send with a connection reset.
    pub reset_p: f64,
    /// NMP crashes: `(host, frame_threshold)`. Once the policy has seen
    /// `frame_threshold` frames touching `host`, the host blackholes
    /// permanently (frames dropped both directions, connects refused).
    pub crashes: Vec<(String, u64)>,
    /// Partitions: `(host, from, to)` — frames touching `host` while its
    /// observed-frame count is in `from..to` are dropped; the host heals
    /// afterwards.
    pub partitions: Vec<(String, u64, u64)>,
}

impl ChaosSpec {
    /// Parses a spec string: a preset name (`crash`, `partition`,
    /// `lossy`) or a comma-separated clause list (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    pub fn parse(s: &str) -> Result<ChaosSpec, String> {
        match s.trim() {
            "crash" => return Ok(ChaosSpec::preset_crash()),
            "partition" => return Ok(ChaosSpec::preset_partition()),
            "lossy" => return Ok(ChaosSpec::preset_lossy()),
            _ => {}
        }
        let mut spec = ChaosSpec::default();
        for clause in s.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause `{clause}` is not key=value"))?;
            match key.trim() {
                "drop" => spec.drop_p = parse_probability(value)?,
                "dup" => spec.dup_p = parse_probability(value)?,
                "reorder" => spec.reorder_p = parse_probability(value)?,
                "reset" => spec.reset_p = parse_probability(value)?,
                "delay" => {
                    let (p, dur) = value
                        .split_once(':')
                        .ok_or_else(|| format!("delay clause `{value}` needs p:duration"))?;
                    spec.delay_p = parse_probability(p)?;
                    spec.delay = parse_duration(dur)?;
                }
                "crash" => {
                    let (host, at) = value
                        .split_once('@')
                        .ok_or_else(|| format!("crash clause `{value}` needs host@frames"))?;
                    let at = at
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("crash threshold `{at}` is not an integer"))?;
                    spec.crashes.push((host.trim().to_string(), at));
                }
                "partition" => {
                    let (host, window) = value
                        .split_once('@')
                        .ok_or_else(|| format!("partition clause `{value}` needs host@a..b"))?;
                    let (a, b) = window
                        .split_once("..")
                        .ok_or_else(|| format!("partition window `{window}` needs a..b"))?;
                    let a = a
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("partition start `{a}` is not an integer"))?;
                    let b = b
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("partition end `{b}` is not an integer"))?;
                    if b <= a {
                        return Err(format!("partition window {a}..{b} is empty"));
                    }
                    spec.partitions.push((host.trim().to_string(), a, b));
                }
                other => return Err(format!("unknown chaos clause `{other}`")),
            }
        }
        Ok(spec)
    }

    /// Preset: one NMP crashes mid-run (host chosen by the seed when the
    /// clause target is `*`).
    pub fn preset_crash() -> ChaosSpec {
        ChaosSpec {
            crashes: vec![("*".to_string(), 40)],
            ..ChaosSpec::default()
        }
    }

    /// Preset: one host partitions away for a frame window, then heals.
    pub fn preset_partition() -> ChaosSpec {
        ChaosSpec {
            partitions: vec![("*".to_string(), 30, 120)],
            ..ChaosSpec::default()
        }
    }

    /// Preset: a lossy, jittery network with no permanent failures.
    pub fn preset_lossy() -> ChaosSpec {
        ChaosSpec {
            drop_p: 0.02,
            delay_p: 0.05,
            delay: SimDuration::from_micros(200),
            dup_p: 0.02,
            reorder_p: 0.02,
            ..ChaosSpec::default()
        }
    }

    /// Replaces `*` hosts in crash/partition clauses with a concrete
    /// host picked deterministically from `hosts` by `seed`.
    ///
    /// Callers pass only *node* hosts so the client host is never a
    /// crash target.
    ///
    /// # Panics
    ///
    /// Panics if a wildcard needs resolving and `hosts` is empty.
    pub fn resolve_wildcards(mut self, hosts: &[String], seed: u64) -> ChaosSpec {
        let mut pick = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut resolve = |host: &mut String| {
            if host == "*" {
                assert!(!hosts.is_empty(), "wildcard chaos target with no hosts");
                *host = hosts[pick.gen_range(0..hosts.len())].clone();
            }
        };
        for (host, _) in &mut self.crashes {
            resolve(host);
        }
        for (host, _, _) in &mut self.partitions {
            resolve(host);
        }
        self
    }

    /// Renders the spec back into the clause grammar [`ChaosSpec::parse`]
    /// accepts — the repro line chaos tests print on failure.
    pub fn to_spec_string(&self) -> String {
        let mut clauses = Vec::new();
        if self.drop_p > 0.0 {
            clauses.push(format!("drop={}", self.drop_p));
        }
        if self.delay_p > 0.0 {
            clauses.push(format!(
                "delay={}:{}ns",
                self.delay_p,
                self.delay.as_nanos()
            ));
        }
        if self.dup_p > 0.0 {
            clauses.push(format!("dup={}", self.dup_p));
        }
        if self.reorder_p > 0.0 {
            clauses.push(format!("reorder={}", self.reorder_p));
        }
        if self.reset_p > 0.0 {
            clauses.push(format!("reset={}", self.reset_p));
        }
        for (host, at) in &self.crashes {
            clauses.push(format!("crash={host}@{at}"));
        }
        for (host, a, b) in &self.partitions {
            clauses.push(format!("partition={host}@{a}..{b}"));
        }
        clauses.join(",")
    }
}

fn parse_probability(s: &str) -> Result<f64, String> {
    let p = s
        .trim()
        .parse::<f64>()
        .map_err(|_| format!("probability `{s}` is not a number"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability {p} outside [0, 1]"));
    }
    Ok(p)
}

fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let s = s.trim();
    let (digits, scale) = if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1)
    };
    let n = digits
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("duration `{s}` is not <integer>[ns|us|ms|s]"))?;
    Ok(SimDuration::from_nanos(n * scale))
}

/// FNV-1a over a directed link name; mixes a stable per-link stream
/// selector into the seed.
fn link_hash(src: &str, dst: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.bytes().chain([0u8]).chain(dst.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Aggregate injection counters, for metrics and repro logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosSummary {
    /// Frames the policy examined.
    pub frames: u64,
    /// Frames dropped by probability.
    pub drops: u64,
    /// Frames delayed.
    pub delays: u64,
    /// Frames duplicated.
    pub dups: u64,
    /// Frames held for reordering.
    pub reorders: u64,
    /// Sends failed with a reset.
    pub resets: u64,
    /// Frames swallowed by a crash or partition blackhole.
    pub blackholed: u64,
}

/// The per-frame fault decider. See the module docs.
pub struct ChaosPolicy {
    seed: u64,
    spec: ChaosSpec,
    /// Per-directed-link decision streams.
    links: HashMap<(String, String), StdRng>,
    /// Frames observed touching each host (either direction).
    host_frames: HashMap<String, u64>,
    summary: ChaosSummary,
    /// The first [`SCHEDULE_CAP`] non-clean decisions, as
    /// `(global_frame_index, src, dst, kind)` — the reproducibility
    /// fingerprint tests compare across same-seed runs.
    schedule: Vec<(u64, String, String, &'static str)>,
}

/// How many injected-fault events the schedule fingerprint retains.
const SCHEDULE_CAP: usize = 4096;

impl ChaosPolicy {
    /// Builds a policy from a seed and a parsed spec.
    pub fn new(seed: u64, spec: ChaosSpec) -> ChaosPolicy {
        ChaosPolicy {
            seed,
            spec,
            links: HashMap::new(),
            host_frames: HashMap::new(),
            summary: ChaosSummary::default(),
            schedule: Vec::new(),
        }
    }

    /// Builds a policy from `HAOCL_CHAOS_SPEC` / `HAOCL_CHAOS_SEED`,
    /// resolving wildcard hosts against `hosts`. Returns `None` when no
    /// spec is set, `Some(Err)` when the spec fails to parse.
    pub fn from_env(hosts: &[String]) -> Option<Result<ChaosPolicy, String>> {
        let spec = std::env::var("HAOCL_CHAOS_SPEC").ok()?;
        let seed = std::env::var("HAOCL_CHAOS_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0);
        Some(
            ChaosSpec::parse(&spec)
                .map(|parsed| ChaosPolicy::new(seed, parsed.resolve_wildcards(hosts, seed))),
        )
    }

    /// The policy's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The (wildcard-resolved) spec in force.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// Whether `host` has passed a crash threshold.
    pub fn is_crashed(&self, host: &str) -> bool {
        self.spec
            .crashes
            .iter()
            .any(|(h, at)| h == host && self.host_frames.get(host).copied().unwrap_or(0) >= *at)
    }

    fn blackholed(&self, host: &str) -> bool {
        let seen = self.host_frames.get(host).copied().unwrap_or(0);
        self.spec
            .crashes
            .iter()
            .any(|(h, at)| h == host && seen >= *at)
            || self
                .spec
                .partitions
                .iter()
                .any(|(h, a, b)| h == host && (*a..*b).contains(&seen))
    }

    /// Decides the fate of one frame on the directed link `src → dst`.
    ///
    /// Must be called exactly once per transmitted frame, in the link's
    /// send order — the per-link RNG stream *is* the fault schedule.
    pub fn on_frame(&mut self, src: &str, dst: &str) -> ChaosVerdict {
        // Crash/partition windows are evaluated against each endpoint's
        // frame count *before* this frame, then the counters advance.
        let blackholed = self.blackholed(src) || self.blackholed(dst);
        for host in [src, dst] {
            *self.host_frames.entry(host.to_string()).or_insert(0) += 1;
        }
        let frame_index = self.summary.frames;
        self.summary.frames += 1;

        let seed = self.seed;
        let rng = self
            .links
            .entry((src.to_string(), dst.to_string()))
            .or_insert_with(|| StdRng::seed_from_u64(seed ^ link_hash(src, dst)));
        // Always burn the same number of draws per frame so a link's
        // stream position depends only on its frame count.
        let roll_drop = rng.gen_bool(self.spec.drop_p);
        let roll_delay = rng.gen_bool(self.spec.delay_p);
        let roll_dup = rng.gen_bool(self.spec.dup_p);
        let roll_reorder = rng.gen_bool(self.spec.reorder_p);
        let roll_reset = rng.gen_bool(self.spec.reset_p);

        let mut verdict = ChaosVerdict::deliver();
        if blackholed {
            verdict.drop = true;
            self.summary.blackholed += 1;
        } else if roll_reset {
            verdict.reset = true;
            self.summary.resets += 1;
        } else if roll_drop {
            verdict.drop = true;
            self.summary.drops += 1;
        } else {
            if roll_delay {
                verdict.extra_delay = self.spec.delay;
                self.summary.delays += 1;
            }
            if roll_dup {
                verdict.duplicate = true;
                self.summary.dups += 1;
            }
            if roll_reorder {
                verdict.reorder = true;
                self.summary.reorders += 1;
            }
        }
        if !verdict.is_clean() && self.schedule.len() < SCHEDULE_CAP {
            self.schedule.push((
                frame_index,
                src.to_string(),
                dst.to_string(),
                verdict.kind(),
            ));
        }
        verdict
    }

    /// Aggregate injection counters so far.
    pub fn summary(&self) -> ChaosSummary {
        self.summary
    }

    /// The injected-fault schedule fingerprint: one line per non-clean
    /// decision (capped), suitable for golden comparison and repro logs.
    pub fn schedule_lines(&self) -> Vec<String> {
        self.schedule
            .iter()
            .map(|(i, src, dst, kind)| format!("#{i} {src}->{dst} {kind}"))
            .collect()
    }
}

impl std::fmt::Debug for ChaosPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosPolicy")
            .field("seed", &self.seed)
            .field("spec", &self.spec.to_spec_string())
            .field("summary", &self.summary)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic frame sequence exercising several links and both
    /// directions.
    fn synthetic_sequence() -> Vec<(String, String)> {
        let hosts = ["10.0.0.1", "10.0.1.1", "10.0.1.2", "10.0.2.1"];
        let mut seq = Vec::new();
        for i in 0..400usize {
            let a = hosts[i % hosts.len()];
            let b = hosts[(i / 3 + 1) % hosts.len()];
            if a != b {
                seq.push((a.to_string(), b.to_string()));
            }
        }
        seq
    }

    #[test]
    fn same_seed_and_spec_give_identical_schedules() {
        let spec =
            ChaosSpec::parse("drop=0.1,delay=0.2:100us,dup=0.05,reorder=0.05,reset=0.01").unwrap();
        let mut a = ChaosPolicy::new(42, spec.clone());
        let mut b = ChaosPolicy::new(42, spec);
        for (src, dst) in synthetic_sequence() {
            assert_eq!(a.on_frame(&src, &dst), b.on_frame(&src, &dst));
        }
        assert_eq!(a.schedule_lines(), b.schedule_lines());
        assert_eq!(a.summary(), b.summary());
        assert!(a.summary().drops > 0, "10% drop over ~300 frames must fire");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let spec = ChaosSpec::parse("drop=0.1,dup=0.1").unwrap();
        let mut a = ChaosPolicy::new(1, spec.clone());
        let mut b = ChaosPolicy::new(2, spec);
        let mut diverged = false;
        for (src, dst) in synthetic_sequence() {
            if a.on_frame(&src, &dst) != b.on_frame(&src, &dst) {
                diverged = true;
            }
        }
        assert!(diverged, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn link_streams_are_independent_of_other_links() {
        // Interleaving traffic on an unrelated link must not perturb the
        // decisions a given link sees at each of its own frame indices.
        let spec = ChaosSpec::parse("drop=0.3").unwrap();
        let mut alone = ChaosPolicy::new(9, spec.clone());
        let mut mixed = ChaosPolicy::new(9, spec);
        let mut alone_verdicts = Vec::new();
        let mut mixed_verdicts = Vec::new();
        for i in 0..100 {
            alone_verdicts.push(alone.on_frame("h", "n1"));
            if i % 2 == 0 {
                mixed.on_frame("h", "n2");
            }
            mixed_verdicts.push(mixed.on_frame("h", "n1"));
        }
        assert_eq!(alone_verdicts, mixed_verdicts);
    }

    #[test]
    fn crash_blackholes_after_threshold_and_refuses_forever() {
        let spec = ChaosSpec::parse("crash=n1@5").unwrap();
        let mut p = ChaosPolicy::new(0, spec);
        for _ in 0..5 {
            assert!(!p.on_frame("h", "n1").drop);
        }
        assert!(p.is_crashed("n1"));
        for _ in 0..10 {
            assert!(p.on_frame("h", "n1").drop, "crashed host must blackhole");
            assert!(p.on_frame("n1", "h").drop, "both directions");
        }
        assert!(!p.on_frame("h", "n2").drop, "other hosts unaffected");
        assert!(!p.is_crashed("n2"));
    }

    #[test]
    fn partition_window_opens_and_heals() {
        let spec = ChaosSpec::parse("partition=n1@3..6").unwrap();
        let mut p = ChaosPolicy::new(0, spec);
        let mut fates = Vec::new();
        for _ in 0..10 {
            fates.push(p.on_frame("h", "n1").drop);
        }
        assert_eq!(
            fates,
            vec![false, false, false, true, true, true, false, false, false, false]
        );
        assert!(!p.is_crashed("n1"), "a partition is not a crash");
    }

    #[test]
    fn spec_grammar_roundtrips() {
        let text = "drop=0.02,delay=0.05:200000ns,dup=0.02,crash=gpu0@120,partition=gpu1@50..90";
        let spec = ChaosSpec::parse(text).unwrap();
        assert_eq!(spec.drop_p, 0.02);
        assert_eq!(spec.delay, SimDuration::from_micros(200));
        assert_eq!(spec.crashes, vec![("gpu0".to_string(), 120)]);
        assert_eq!(spec.partitions, vec![("gpu1".to_string(), 50, 90)]);
        let rendered = spec.to_spec_string();
        assert_eq!(ChaosSpec::parse(&rendered).unwrap(), spec);
    }

    #[test]
    fn presets_parse_and_resolve_wildcards() {
        let hosts = vec!["10.0.1.1".to_string(), "10.0.1.2".to_string()];
        for name in ["crash", "partition", "lossy"] {
            let spec = ChaosSpec::parse(name).unwrap().resolve_wildcards(&hosts, 3);
            for (h, _) in &spec.crashes {
                assert!(hosts.contains(h), "unresolved wildcard in {name}");
            }
            for (h, _, _) in &spec.partitions {
                assert!(hosts.contains(h), "unresolved wildcard in {name}");
            }
        }
        // Wildcard choice is a pure function of the seed.
        let a = ChaosSpec::preset_crash().resolve_wildcards(&hosts, 7);
        let b = ChaosSpec::preset_crash().resolve_wildcards(&hosts, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "drop",
            "drop=2.0",
            "drop=x",
            "delay=0.5",
            "delay=0.5:abc",
            "crash=n1",
            "crash=n1@x",
            "partition=n1@9..3",
            "partition=n1@5",
            "warp=0.5",
        ] {
            assert!(ChaosSpec::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn durations_parse_with_units() {
        assert_eq!(
            parse_duration("200us").unwrap(),
            SimDuration::from_micros(200)
        );
        assert_eq!(parse_duration("3ms").unwrap(), SimDuration::from_millis(3));
        assert_eq!(parse_duration("1s").unwrap(), SimDuration::from_secs(1));
        assert_eq!(parse_duration("500").unwrap(), SimDuration::from_nanos(500));
        assert_eq!(
            parse_duration("500ns").unwrap(),
            SimDuration::from_nanos(500)
        );
    }
}
