//! Backbone failure taxonomy.

use std::error::Error;
use std::fmt;

/// A communication backbone failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The address already has a bound listener.
    AddressInUse {
        /// The contested address.
        addr: String,
    },
    /// No listener is bound at the target address.
    ConnectionRefused {
        /// The address dialed.
        addr: String,
    },
    /// The peer closed the connection (or its thread exited).
    Disconnected,
    /// A frame arrived malformed (bad length prefix or truncated body).
    BadFrame {
        /// Details of the corruption.
        reason: String,
    },
    /// A blocking receive timed out.
    Timeout,
    /// A blocking receive timed out *while a frame was partially
    /// assembled*. The partial bytes stay buffered in the receiver, so a
    /// later receive resynchronizes on the remaining chunks — the caller
    /// must keep the connection and retry rather than treat the stream
    /// as idle.
    TimeoutMidFrame {
        /// Bytes of the incomplete frame already buffered.
        pending: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::AddressInUse { addr } => write!(f, "address {addr} already in use"),
            NetError::ConnectionRefused { addr } => {
                write!(f, "connection refused: no listener at {addr}")
            }
            NetError::Disconnected => f.write_str("peer disconnected"),
            NetError::BadFrame { reason } => write!(f, "malformed frame: {reason}"),
            NetError::Timeout => f.write_str("receive timed out"),
            NetError::TimeoutMidFrame { pending } => {
                write!(
                    f,
                    "receive timed out mid-frame ({pending} byte(s) buffered)"
                )
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(NetError::AddressInUse {
            addr: "10.0.0.1:7000".into()
        }
        .to_string()
        .contains("10.0.0.1:7000"));
        assert!(NetError::Disconnected.to_string().contains("disconnected"));
    }
}
