//! The in-process network fabric with a virtual-time link model.
//!
//! Addresses are `"host:port"` strings, exactly like the paper's cluster
//! configuration file. A node [`Fabric::bind`]s an acceptor at its
//! address; the host [`Fabric::connect`]s from its own host name. Every
//! frame transmission:
//!
//! 1. serializes on the *sender host's NIC* (one transmit resource per
//!    host name — the paper's Gigabit links are full-duplex, so receive
//!    does not contend with transmit),
//! 2. takes one propagation latency,
//! 3. arrives with a virtual timestamp the receiver reads back.
//!
//! The shared host NIC is the backbone's bottleneck under fan-out, which
//! is what limits scaling for communication-heavy benchmarks in Fig. 2.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use haocl_sim::{Clock, Resource, SimDuration, SimTime};

use crate::chaos::{ChaosPolicy, ChaosVerdict};
use crate::error::NetError;
use crate::frame::{encode_frame_pooled, segment_pooled, FrameAssembler};
use crate::pool::{BufferPool, PoolStats, PooledBytes};

/// Bandwidth/latency model of every link in the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Link bandwidth, bytes per second.
    pub bandwidth_bps: f64,
    /// One-way propagation + switching latency.
    pub latency: SimDuration,
}

impl LinkModel {
    /// Gigabit Ethernet: 125 MB/s, 50 µs one-way latency (the paper's
    /// interconnect).
    pub fn gigabit_ethernet() -> Self {
        LinkModel {
            bandwidth_bps: 125.0e6,
            latency: SimDuration::from_micros(50),
        }
    }

    /// 10-Gigabit Ethernet (for ablation sweeps).
    pub fn ten_gigabit_ethernet() -> Self {
        LinkModel {
            bandwidth_bps: 1.25e9,
            latency: SimDuration::from_micros(20),
        }
    }

    /// A custom link.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not positive and finite.
    pub fn custom(bandwidth_bps: f64, latency: SimDuration) -> Self {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "bandwidth must be positive"
        );
        LinkModel {
            bandwidth_bps,
            latency,
        }
    }

    /// Virtual time to push `bytes` through the link (excluding latency).
    pub fn transmit_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }
}

#[derive(Debug, Clone)]
struct Chunk {
    /// A view into the frame's pooled allocation — chunks of one frame
    /// share storage instead of carrying per-MTU copies.
    bytes: PooledBytes,
    arrival: SimTime,
}

/// Cumulative transmit counters for one [`Fabric`].
///
/// The fabric itself stays dependency-free: it only counts, and an
/// observability layer above it periodically snapshots these into its
/// own metric registry. `charged_bytes` uses the *virtual* frame length
/// (modeled bulk transfers count at full size), so it matches the bytes
/// the link model actually billed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FabricStats {
    /// Frames that crossed a real (non-loopback) link.
    pub frames: u64,
    /// Bytes charged to the link model, including virtual lengths.
    pub charged_bytes: u64,
    /// Frames short-circuited between co-located peers.
    pub loopback_frames: u64,
}

#[derive(Default)]
struct StatCells {
    frames: AtomicU64,
    charged_bytes: AtomicU64,
    loopback_frames: AtomicU64,
}

struct FabricInner {
    link: LinkModel,
    clock: Clock,
    listeners: Mutex<HashMap<String, Sender<Conn>>>,
    /// Transmit NIC per host name.
    nics: Mutex<HashMap<String, Resource>>,
    stats: StatCells,
    /// Frame-buffer recycling shared by every connection on the fabric.
    pool: BufferPool,
    /// Fault injector; `None` (the default) delivers every frame intact.
    chaos: Mutex<Option<ChaosPolicy>>,
}

/// The shared in-process network.
///
/// Cloning is cheap; clones address the same fabric.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl Fabric {
    /// Creates a fabric on `clock` with the given link model.
    pub fn new(clock: Clock, link: LinkModel) -> Self {
        Fabric {
            inner: Arc::new(FabricInner {
                link,
                clock,
                listeners: Mutex::new(HashMap::new()),
                nics: Mutex::new(HashMap::new()),
                stats: StatCells::default(),
                pool: BufferPool::new(),
                chaos: Mutex::new(None),
            }),
        }
    }

    /// The fabric's link model.
    pub fn link(&self) -> LinkModel {
        self.inner.link
    }

    /// A snapshot of the frame-buffer pool's recycling counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.pool.stats()
    }

    /// A consistent-enough snapshot of the fabric's transmit counters.
    pub fn stats(&self) -> FabricStats {
        let s = &self.inner.stats;
        FabricStats {
            frames: s.frames.load(Ordering::Relaxed),
            charged_bytes: s.charged_bytes.load(Ordering::Relaxed),
            loopback_frames: s.loopback_frames.load(Ordering::Relaxed),
        }
    }

    /// The fabric's virtual clock.
    ///
    /// The fabric itself never advances it: frames carry their virtual
    /// arrival times, and the endpoint that observes a frame (e.g. the
    /// cluster host claiming a response) advances the clock then. This
    /// keeps virtual timestamps a pure function of the submission order,
    /// independent of how the OS schedules the transport threads.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// Binds an acceptor at `addr` (`"host:port"`).
    ///
    /// # Errors
    ///
    /// [`NetError::AddressInUse`] if a listener is already bound there.
    pub fn bind(&self, addr: &str) -> Result<Listener, NetError> {
        let mut listeners = self.inner.listeners.lock();
        if listeners.contains_key(addr) {
            return Err(NetError::AddressInUse {
                addr: addr.to_string(),
            });
        }
        let (tx, rx) = unbounded();
        listeners.insert(addr.to_string(), tx);
        Ok(Listener {
            addr: addr.to_string(),
            incoming: rx,
            fabric: Arc::clone(&self.inner),
        })
    }

    /// Dials the listener at `to`, identifying as host `from`.
    ///
    /// `from` is the *host name* of the caller (no port); it selects which
    /// transmit NIC the caller's frames serialize on.
    ///
    /// # Errors
    ///
    /// [`NetError::ConnectionRefused`] if nothing is bound at `to`, or
    /// [`NetError::Disconnected`] if the listener was dropped.
    pub fn connect(&self, from: &str, to: &str) -> Result<Conn, NetError> {
        if let Some(chaos) = self.inner.chaos.lock().as_ref() {
            if chaos.is_crashed(&host_of(from)) || chaos.is_crashed(&host_of(to)) {
                return Err(NetError::ConnectionRefused {
                    addr: to.to_string(),
                });
            }
        }
        let listeners = self.inner.listeners.lock();
        let tx = listeners
            .get(to)
            .ok_or_else(|| NetError::ConnectionRefused {
                addr: to.to_string(),
            })?
            .clone();
        drop(listeners);
        let (a_tx, b_rx) = unbounded::<Chunk>();
        let (b_tx, a_rx) = unbounded::<Chunk>();
        let client = Conn::assemble(
            host_of(from),
            to.to_string(),
            a_tx,
            a_rx,
            Arc::clone(&self.inner),
        );
        let server = Conn::assemble(
            host_of(to),
            from.to_string(),
            b_tx,
            b_rx,
            Arc::clone(&self.inner),
        );
        tx.send(server).map_err(|_| NetError::Disconnected)?;
        Ok(client)
    }

    /// Removes the listener at `addr`, refusing future connections.
    pub fn unbind(&self, addr: &str) {
        self.inner.listeners.lock().remove(addr);
    }

    /// Installs a fault injector. Every subsequent frame transmission
    /// consults it; connects to or from a crashed host are refused.
    ///
    /// Installed *after* cluster bring-up so handshakes never count
    /// toward (or fall victim to) the fault schedule.
    pub fn install_chaos(&self, policy: ChaosPolicy) {
        *self.inner.chaos.lock() = Some(policy);
    }

    /// Removes the fault injector, returning it (with its counters).
    pub fn clear_chaos(&self) -> Option<ChaosPolicy> {
        self.inner.chaos.lock().take()
    }

    /// Runs `f` against the installed fault injector, if any.
    pub fn with_chaos<R>(&self, f: impl FnOnce(&mut ChaosPolicy) -> R) -> Option<R> {
        self.inner.chaos.lock().as_mut().map(f)
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let listeners = self.inner.listeners.lock();
        f.debug_struct("Fabric")
            .field("link", &self.inner.link)
            .field("listeners", &listeners.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// The host-name part of a `"host:port"` address.
///
/// Frames between two addresses sharing a host name take the loopback
/// path; peers that dial out (the host runtime, an NMP executing a peer
/// transfer) identify themselves by this name so their frames serialize
/// on the right transmit NIC.
pub fn host_name_of(addr: &str) -> String {
    addr.split(':').next().unwrap_or(addr).to_string()
}

fn host_of(addr: &str) -> String {
    host_name_of(addr)
}

/// An acceptor bound to an address.
pub struct Listener {
    addr: String,
    incoming: Receiver<Conn>,
    fabric: Arc<FabricInner>,
}

impl Listener {
    /// The bound address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Blocks until a connection arrives.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the fabric is torn down.
    pub fn accept(&self) -> Result<Conn, NetError> {
        self.incoming.recv().map_err(|_| NetError::Disconnected)
    }

    /// Accepts a pending connection without blocking.
    pub fn try_accept(&self) -> Option<Conn> {
        self.incoming.try_recv().ok()
    }

    /// Blocks up to `timeout` (wall-clock) for a connection.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] on expiry, [`NetError::Disconnected`] on
    /// teardown.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<Conn, NetError> {
        use crossbeam::channel::RecvTimeoutError;
        self.incoming.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.fabric.listeners.lock().remove(&self.addr);
    }
}

impl std::fmt::Debug for Listener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Listener({})", self.addr)
    }
}

/// The transmit half of a connection.
///
/// Obtained from [`Conn::split`]; owning it independently of the receive
/// half lets one thread pump requests while another drains responses —
/// the shape the cluster backbone's pipelined demultiplexer needs.
pub struct ConnSender {
    local_host: String,
    peer: String,
    tx: Sender<Chunk>,
    fabric: Arc<FabricInner>,
    /// A frame held back by a chaos reorder verdict, released after the
    /// next frame on this connection (whole frames only — chunks of two
    /// frames must never interleave on the channel).
    stash: Option<(PooledBytes, SimTime)>,
}

impl ConnSender {
    /// The remote address or host this side talks to.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Sends one frame at virtual time `at`; returns its arrival time at
    /// the peer.
    ///
    /// The frame serializes on this host's transmit NIC — concurrent
    /// frames from the same host queue behind each other — then takes one
    /// propagation latency. Sending is asynchronous and never advances
    /// the fabric's shared clock: the virtual cost is encoded entirely in
    /// the returned (and delivered) arrival time, and whoever *observes*
    /// the frame land advances the clock then. Back-to-back sends
    /// therefore pipeline instead of each charging the sender a one-way
    /// trip.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the peer is gone.
    pub fn send_frame(&mut self, payload: &[u8], at: SimTime) -> Result<SimTime, NetError> {
        self.send_frame_virtual(payload, at, 0)
    }

    /// Like [`ConnSender::send_frame`], but charges the link as if the
    /// payload were at least `virtual_len` bytes long.
    ///
    /// This is the *modeled transfer* path: a tiny descriptor frame
    /// stands in for a bulk data package whose bytes are not actually
    /// materialized (paper-scale benchmarking), while virtual timing is
    /// identical to shipping the real data.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the peer is gone.
    pub fn send_frame_virtual(
        &mut self,
        payload: &[u8],
        at: SimTime,
        virtual_len: u64,
    ) -> Result<SimTime, NetError> {
        self.send_frame_with(at, virtual_len, |buf| buf.extend_from_slice(payload))
    }

    /// Like [`ConnSender::send_frame_virtual`], but `write` appends the
    /// payload directly into a recycled frame buffer — the zero-copy
    /// path for callers that serialize a message anyway (no intermediate
    /// payload vector, no per-chunk copies).
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the peer is gone.
    pub fn send_frame_with(
        &mut self,
        at: SimTime,
        virtual_len: u64,
        write: impl FnOnce(&mut Vec<u8>),
    ) -> Result<SimTime, NetError> {
        let frame = encode_frame_pooled(&self.fabric.pool, write);
        // Loopback: co-located peers (same host name) never touch the
        // NIC — the paper's single-node deployment runs the host process
        // on the device node itself.
        let arrival = if host_of(&self.peer) == self.local_host {
            self.fabric
                .stats
                .loopback_frames
                .fetch_add(1, Ordering::Relaxed);
            at
        } else {
            let charged = (frame.len() as u64).max(virtual_len.saturating_add(4));
            let service = self.fabric.link.transmit_time(charged as usize);
            self.fabric.stats.frames.fetch_add(1, Ordering::Relaxed);
            self.fabric
                .stats
                .charged_bytes
                .fetch_add(charged, Ordering::Relaxed);
            let grant = {
                let mut nics = self.fabric.nics.lock();
                let nic = nics
                    .entry(self.local_host.clone())
                    .or_insert_with(|| Resource::new(format!("nic:{}", self.local_host)));
                nic.acquire(at, service)
            };
            grant.end + self.fabric.link.latency
        };
        let verdict = {
            let mut chaos = self.fabric.chaos.lock();
            match chaos.as_mut() {
                Some(policy) => policy.on_frame(&self.local_host, &host_of(&self.peer)),
                None => ChaosVerdict::deliver(),
            }
        };
        if verdict.reset {
            return Err(NetError::Disconnected);
        }
        if verdict.drop {
            // Lost in the network after NIC serialization: the sender
            // still paid the transmit time and learns nothing.
            return Ok(arrival);
        }
        let arrival = arrival + verdict.extra_delay;
        if verdict.reorder && self.stash.is_none() {
            // Held back; the link's next frame overtakes it. If no next
            // frame ever comes, the hold degenerates to a drop — which
            // the host's retry path recovers like any other loss.
            self.stash = Some((frame, arrival));
            return Ok(arrival);
        }
        self.transmit(&frame, arrival)?;
        if verdict.duplicate {
            self.transmit(&frame, arrival)?;
        }
        if let Some((held, held_arrival)) = self.stash.take() {
            self.transmit(&held, held_arrival)?;
        }
        Ok(arrival)
    }

    /// Pushes one already-encoded frame's chunks onto the channel,
    /// contiguously. Chunks are views of the frame's pooled allocation.
    fn transmit(&self, frame: &PooledBytes, arrival: SimTime) -> Result<(), NetError> {
        for chunk in segment_pooled(frame) {
            self.tx
                .send(Chunk {
                    bytes: chunk,
                    arrival,
                })
                .map_err(|_| NetError::Disconnected)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for ConnSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ConnSender({} -> {})", self.local_host, self.peer)
    }
}

/// The receive half of a connection. See [`ConnSender`].
pub struct ConnReceiver {
    local_host: String,
    peer: String,
    rx: Receiver<Chunk>,
    assembler: FrameAssembler,
    /// Frames completed by earlier chunks but not yet returned.
    ready: Vec<(PooledBytes, SimTime)>,
}

impl ConnReceiver {
    /// The remote address or host this side talks to.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Blocks until a whole frame is available; returns it with its
    /// virtual arrival time.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the peer is gone before a frame
    /// completes; [`NetError::BadFrame`] on corruption.
    pub fn recv_frame(&mut self) -> Result<(PooledBytes, SimTime), NetError> {
        loop {
            if !self.ready.is_empty() {
                return Ok(self.ready.remove(0));
            }
            let chunk = self.rx.recv().map_err(|_| NetError::Disconnected)?;
            self.ingest(chunk)?;
        }
    }

    /// Like [`ConnReceiver::recv_frame`] with a wall-clock timeout.
    ///
    /// # Errors
    ///
    /// Additionally returns [`NetError::Timeout`] on expiry, or
    /// [`NetError::TimeoutMidFrame`] when the deadline hit with a frame
    /// partially assembled. In the latter case the partial bytes remain
    /// buffered: a later receive picks up exactly where this one
    /// stopped, so no chunk is ever silently discarded.
    pub fn recv_frame_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<(PooledBytes, SimTime), NetError> {
        use crossbeam::channel::RecvTimeoutError;
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if !self.ready.is_empty() {
                return Ok(self.ready.remove(0));
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let chunk = self.rx.recv_timeout(remaining).map_err(|e| match e {
                RecvTimeoutError::Timeout => {
                    let pending = self.assembler.pending_bytes();
                    if pending > 0 {
                        NetError::TimeoutMidFrame { pending }
                    } else {
                        NetError::Timeout
                    }
                }
                RecvTimeoutError::Disconnected => NetError::Disconnected,
            })?;
            self.ingest(chunk)?;
        }
    }

    /// Receives a frame if one is already complete or completable from
    /// queued chunks, without blocking.
    pub fn try_recv_frame(&mut self) -> Result<Option<(PooledBytes, SimTime)>, NetError> {
        loop {
            if !self.ready.is_empty() {
                return Ok(Some(self.ready.remove(0)));
            }
            match self.rx.try_recv() {
                Ok(chunk) => self.ingest(chunk)?,
                Err(_) => return Ok(None),
            }
        }
    }

    fn ingest(&mut self, chunk: Chunk) -> Result<(), NetError> {
        let arrival = chunk.arrival;
        for frame in self.assembler.push_pooled(&chunk.bytes)? {
            self.ready.push((frame, arrival));
        }
        Ok(())
    }
}

impl std::fmt::Debug for ConnReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ConnReceiver({} -> {})", self.local_host, self.peer)
    }
}

/// One side of an established connection: a [`ConnSender`] and a
/// [`ConnReceiver`] joined at the hip. Use the delegating methods for
/// simple lock-step request/reply traffic, or [`Conn::split`] to drive
/// the two directions from different threads.
pub struct Conn {
    sender: ConnSender,
    receiver: ConnReceiver,
}

impl Conn {
    fn assemble(
        local_host: String,
        peer: String,
        tx: Sender<Chunk>,
        rx: Receiver<Chunk>,
        fabric: Arc<FabricInner>,
    ) -> Self {
        Conn {
            sender: ConnSender {
                local_host: local_host.clone(),
                peer: peer.clone(),
                tx,
                fabric: Arc::clone(&fabric),
                stash: None,
            },
            receiver: ConnReceiver {
                local_host,
                peer,
                rx,
                assembler: FrameAssembler::new(),
                ready: Vec::new(),
            },
        }
    }

    /// Splits the connection into independently owned transmit and
    /// receive halves.
    pub fn split(self) -> (ConnSender, ConnReceiver) {
        (self.sender, self.receiver)
    }

    /// The remote address or host this side talks to.
    pub fn peer(&self) -> &str {
        &self.sender.peer
    }

    /// Sends one frame at virtual time `at`; returns its arrival time at
    /// the peer. See [`ConnSender::send_frame`].
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the peer is gone.
    pub fn send_frame(&mut self, payload: &[u8], at: SimTime) -> Result<SimTime, NetError> {
        self.sender.send_frame(payload, at)
    }

    /// Sends one frame charged as at least `virtual_len` bytes. See
    /// [`ConnSender::send_frame_virtual`].
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the peer is gone.
    pub fn send_frame_virtual(
        &mut self,
        payload: &[u8],
        at: SimTime,
        virtual_len: u64,
    ) -> Result<SimTime, NetError> {
        self.sender.send_frame_virtual(payload, at, virtual_len)
    }

    /// Serializes the payload straight into a recycled frame buffer. See
    /// [`ConnSender::send_frame_with`].
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the peer is gone.
    pub fn send_frame_with(
        &mut self,
        at: SimTime,
        virtual_len: u64,
        write: impl FnOnce(&mut Vec<u8>),
    ) -> Result<SimTime, NetError> {
        self.sender.send_frame_with(at, virtual_len, write)
    }

    /// Blocks until a whole frame is available. See
    /// [`ConnReceiver::recv_frame`].
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the peer is gone before a frame
    /// completes; [`NetError::BadFrame`] on corruption.
    pub fn recv_frame(&mut self) -> Result<(PooledBytes, SimTime), NetError> {
        self.receiver.recv_frame()
    }

    /// Like [`Conn::recv_frame`] with a wall-clock timeout.
    ///
    /// # Errors
    ///
    /// Additionally returns [`NetError::Timeout`] on expiry.
    pub fn recv_frame_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<(PooledBytes, SimTime), NetError> {
        self.receiver.recv_frame_timeout(timeout)
    }

    /// Receives a frame if one is already complete or completable from
    /// queued chunks, without blocking.
    pub fn try_recv_frame(&mut self) -> Result<Option<(PooledBytes, SimTime)>, NetError> {
        self.receiver.try_recv_frame()
    }
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Conn({} -> {})",
            self.sender.local_host, self.sender.peer
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;

    fn fabric() -> Fabric {
        Fabric::new(Clock::new(), LinkModel::gigabit_ethernet())
    }

    #[test]
    fn bind_connect_accept_roundtrip() {
        let f = fabric();
        let listener = f.bind("node1:7001").unwrap();
        let mut client = f.connect("host", "node1:7001").unwrap();
        let mut server = listener.accept().unwrap();
        assert_eq!(server.peer(), "host");
        assert_eq!(client.peer(), "node1:7001");

        client.send_frame(b"ping", SimTime::ZERO).unwrap();
        let (data, _) = server.recv_frame().unwrap();
        assert_eq!(data, b"ping");

        server.send_frame(b"pong", SimTime::ZERO).unwrap();
        let (data, _) = client.recv_frame().unwrap();
        assert_eq!(data, b"pong");
    }

    #[test]
    fn double_bind_rejected() {
        let f = fabric();
        let _l = f.bind("n:1").unwrap();
        let err = f.bind("n:1").unwrap_err();
        assert!(matches!(err, NetError::AddressInUse { .. }));
    }

    #[test]
    fn connect_to_unbound_refused() {
        let f = fabric();
        let err = f.connect("host", "nowhere:9").unwrap_err();
        assert!(matches!(err, NetError::ConnectionRefused { .. }));
    }

    #[test]
    fn dropping_listener_frees_address() {
        let f = fabric();
        drop(f.bind("n:1").unwrap());
        assert!(f.bind("n:1").is_ok());
    }

    #[test]
    fn large_frame_transits_in_chunks() {
        let f = fabric();
        let listener = f.bind("n:1").unwrap();
        let mut client = f.connect("host", "n:1").unwrap();
        let mut server = listener.accept().unwrap();
        let payload: Vec<u8> = (0..100_000).map(|i| (i % 256) as u8).collect();
        client.send_frame(&payload, SimTime::ZERO).unwrap();
        let (data, _) = server.recv_frame().unwrap();
        assert_eq!(data, payload);
    }

    #[test]
    fn arrival_time_includes_transmit_and_latency() {
        let f = fabric();
        let listener = f.bind("n:1").unwrap();
        let mut client = f.connect("host", "n:1").unwrap();
        let mut server = listener.accept().unwrap();
        let payload = vec![0u8; 125_000]; // 1 ms at 125 MB/s (+ prefix)
        let arrival = client.send_frame(&payload, SimTime::ZERO).unwrap();
        let (_, at) = server.recv_frame().unwrap();
        assert_eq!(at, arrival);
        let expect_min = SimTime::ZERO
            + LinkModel::gigabit_ethernet().transmit_time(125_000)
            + LinkModel::gigabit_ethernet().latency;
        assert!(at >= expect_min, "{at} < {expect_min}");
    }

    #[test]
    fn same_host_fanout_serializes_on_the_nic() {
        let f = fabric();
        let l1 = f.bind("n1:1").unwrap();
        let l2 = f.bind("n2:1").unwrap();
        let mut c1 = f.connect("host", "n1:1").unwrap();
        let mut c2 = f.connect("host", "n2:1").unwrap();
        let _s1 = l1.accept().unwrap();
        let _s2 = l2.accept().unwrap();
        let payload = vec![0u8; 1_000_000];
        let a1 = c1.send_frame(&payload, SimTime::ZERO).unwrap();
        let a2 = c2.send_frame(&payload, SimTime::ZERO).unwrap();
        // Second transfer queued behind the first on host's NIC.
        let service = LinkModel::gigabit_ethernet().transmit_time(1_000_004);
        assert_eq!(a2 - a1, service);
    }

    #[test]
    fn different_hosts_do_not_contend() {
        let f = fabric();
        let l = f.bind("sink:1").unwrap();
        let mut c1 = f.connect("hostA", "sink:1").unwrap();
        let mut c2 = f.connect("hostB", "sink:1").unwrap();
        let _s1 = l.accept().unwrap();
        let _s2 = l.accept().unwrap();
        let payload = vec![0u8; 1_000_000];
        let a1 = c1.send_frame(&payload, SimTime::ZERO).unwrap();
        let a2 = c2.send_frame(&payload, SimTime::ZERO).unwrap();
        assert_eq!(a1, a2, "independent NICs transmit in parallel");
    }

    #[test]
    fn disconnected_peer_detected() {
        let f = fabric();
        let listener = f.bind("n:1").unwrap();
        let mut client = f.connect("host", "n:1").unwrap();
        let server = listener.accept().unwrap();
        drop(server);
        // Sends may buffer; receive must detect the closed peer.
        let err = client.recv_frame().unwrap_err();
        assert_eq!(err, NetError::Disconnected);
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let f = fabric();
        let listener = f.bind("n:1").unwrap();
        let _client = f.connect("host", "n:1").unwrap();
        let mut server = listener.accept().unwrap();
        assert_eq!(server.try_recv_frame().unwrap(), None);
    }

    #[test]
    fn recv_timeout_expires() {
        let f = fabric();
        let listener = f.bind("n:1").unwrap();
        let _client = f.connect("host", "n:1").unwrap();
        let mut server = listener.accept().unwrap();
        let err = server
            .recv_frame_timeout(Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
    }

    #[test]
    fn cross_thread_request_reply() {
        let f = fabric();
        let listener = f.bind("n:1").unwrap();
        let handle = std::thread::spawn(move || {
            let mut server = listener.accept().unwrap();
            let (req, at) = server.recv_frame().unwrap();
            server.send_frame(&req, at).unwrap(); // echo
        });
        let mut client = f.connect("host", "n:1").unwrap();
        client.send_frame(b"echo me", SimTime::ZERO).unwrap();
        let (reply, _) = client.recv_frame().unwrap();
        assert_eq!(reply, b"echo me");
        handle.join().unwrap();
    }

    #[test]
    fn colocated_peers_use_loopback() {
        let f = fabric();
        let listener = f.bind("nodeA:7100").unwrap();
        // Host process running on nodeA itself.
        let mut client = f.connect("nodeA", "nodeA:7100").unwrap();
        let mut server = listener.accept().unwrap();
        let arrival = client
            .send_frame(&vec![0u8; 1_000_000], SimTime::ZERO)
            .unwrap();
        assert_eq!(arrival, SimTime::ZERO, "loopback is free in virtual time");
        let (_, at) = server.recv_frame().unwrap();
        assert_eq!(at, SimTime::ZERO);
        // The reply path is loopback too.
        let back = server.send_frame(b"ok", SimTime::ZERO).unwrap();
        assert_eq!(back, SimTime::ZERO);
    }

    #[test]
    fn virtual_frames_charge_like_bulk_data() {
        let f = fabric();
        let listener = f.bind("n:1").unwrap();
        let mut client = f.connect("host", "n:1").unwrap();
        let mut server = listener.accept().unwrap();
        // A 20-byte descriptor charged as 1 MB.
        let arrival = client
            .send_frame_virtual(&[7u8; 20], SimTime::ZERO, 1_000_000)
            .unwrap();
        let (payload, at) = server.recv_frame().unwrap();
        assert_eq!(payload, vec![7u8; 20]);
        assert_eq!(at, arrival);
        let expect = SimTime::ZERO
            + LinkModel::gigabit_ethernet().transmit_time(1_000_004)
            + LinkModel::gigabit_ethernet().latency;
        assert_eq!(at, expect);
    }

    #[test]
    fn split_halves_work_from_different_threads() {
        let f = fabric();
        let listener = f.bind("n:1").unwrap();
        let client = f.connect("host", "n:1").unwrap();
        let server = listener.accept().unwrap();
        let (mut ctx, mut crx) = client.split();
        assert_eq!(ctx.peer(), "n:1");
        assert_eq!(crx.peer(), "n:1");
        // Echo server on its own thread using the un-split API.
        let echo = std::thread::spawn(move || {
            let mut server = server;
            for _ in 0..3 {
                let (req, at) = server.recv_frame().unwrap();
                server.send_frame(&req, at).unwrap();
            }
        });
        // Transmit from this thread while a second drains replies.
        let drain = std::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..3 {
                let (reply, _) = crx.recv_frame().unwrap();
                got.push(reply);
            }
            got
        });
        for i in 0..3u8 {
            ctx.send_frame(&[i], SimTime::ZERO).unwrap();
        }
        echo.join().unwrap();
        let got = drain.join().unwrap();
        assert_eq!(got, vec![vec![0u8], vec![1], vec![2]]);
    }

    #[test]
    fn timeout_mid_frame_is_distinguishable_and_resynchronizable() {
        // A deadline expiring while a frame is partially assembled must
        // not silently discard the buffered chunk: the receiver reports
        // TimeoutMidFrame and a later receive completes the frame.
        let (tx, rx) = unbounded();
        let mut receiver = ConnReceiver {
            local_host: "h".to_string(),
            peer: "n:1".to_string(),
            rx,
            assembler: FrameAssembler::new(),
            ready: Vec::new(),
        };
        let frame = encode_frame(b"split across chunks");
        tx.send(Chunk {
            bytes: PooledBytes::copy_from_slice(&frame[..5]),
            arrival: SimTime::ZERO,
        })
        .unwrap();
        let err = receiver
            .recv_frame_timeout(Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, NetError::TimeoutMidFrame { pending: 5 });
        // An idle timeout (nothing buffered) still reports plain Timeout.
        tx.send(Chunk {
            bytes: PooledBytes::copy_from_slice(&frame[5..]),
            arrival: SimTime::ZERO,
        })
        .unwrap();
        let (payload, _) = receiver
            .recv_frame_timeout(Duration::from_millis(10))
            .unwrap();
        assert_eq!(payload, b"split across chunks");
        let err = receiver
            .recv_frame_timeout(Duration::from_millis(5))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
    }

    #[test]
    fn chaos_drop_loses_frames_silently() {
        use crate::chaos::{ChaosPolicy, ChaosSpec};
        let f = fabric();
        let listener = f.bind("n:1").unwrap();
        let mut client = f.connect("host", "n:1").unwrap();
        let mut server = listener.accept().unwrap();
        f.install_chaos(ChaosPolicy::new(1, ChaosSpec::parse("drop=1.0").unwrap()));
        // The sender learns nothing: the send succeeds with a normal
        // arrival time, but the frame never lands.
        client.send_frame(b"lost", SimTime::ZERO).unwrap();
        let err = server
            .recv_frame_timeout(Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
        assert_eq!(f.with_chaos(|c| c.summary().drops), Some(1));
        // Clearing chaos restores clean delivery.
        f.clear_chaos();
        client.send_frame(b"through", SimTime::ZERO).unwrap();
        let (payload, _) = server.recv_frame().unwrap();
        assert_eq!(payload, b"through");
    }

    #[test]
    fn chaos_duplicate_delivers_twice_and_reorder_swaps() {
        use crate::chaos::{ChaosPolicy, ChaosSpec};
        let f = fabric();
        let listener = f.bind("n:1").unwrap();
        let mut client = f.connect("host", "n:1").unwrap();
        let mut server = listener.accept().unwrap();
        f.install_chaos(ChaosPolicy::new(2, ChaosSpec::parse("dup=1.0").unwrap()));
        client.send_frame(b"twice", SimTime::ZERO).unwrap();
        assert_eq!(server.recv_frame().unwrap().0, b"twice");
        assert_eq!(server.recv_frame().unwrap().0, b"twice");

        // Reorder: the first frame is held and released after the second.
        f.install_chaos(ChaosPolicy::new(
            2,
            ChaosSpec::parse("reorder=1.0").unwrap(),
        ));
        client.send_frame(b"first", SimTime::ZERO).unwrap();
        client.send_frame(b"second", SimTime::ZERO).unwrap();
        assert_eq!(server.recv_frame().unwrap().0, b"second");
        assert_eq!(server.recv_frame().unwrap().0, b"first");
    }

    #[test]
    fn chaos_reset_fails_the_send() {
        use crate::chaos::{ChaosPolicy, ChaosSpec};
        let f = fabric();
        let _listener = f.bind("n:1").unwrap();
        let mut client = f.connect("host", "n:1").unwrap();
        f.install_chaos(ChaosPolicy::new(3, ChaosSpec::parse("reset=1.0").unwrap()));
        let err = client.send_frame(b"never", SimTime::ZERO).unwrap_err();
        assert_eq!(err, NetError::Disconnected);
    }

    #[test]
    fn chaos_crash_blackholes_and_refuses_connects() {
        use crate::chaos::{ChaosPolicy, ChaosSpec};
        let f = fabric();
        let listener = f.bind("n:1").unwrap();
        let mut client = f.connect("host", "n:1").unwrap();
        let mut server = listener.accept().unwrap();
        f.install_chaos(ChaosPolicy::new(4, ChaosSpec::parse("crash=n@2").unwrap()));
        // Two frames pass, then the host is gone.
        client.send_frame(b"a", SimTime::ZERO).unwrap();
        client.send_frame(b"b", SimTime::ZERO).unwrap();
        client.send_frame(b"c", SimTime::ZERO).unwrap();
        assert_eq!(server.recv_frame().unwrap().0, b"a");
        assert_eq!(server.recv_frame().unwrap().0, b"b");
        assert_eq!(
            server
                .recv_frame_timeout(Duration::from_millis(20))
                .unwrap_err(),
            NetError::Timeout
        );
        // The crashed node cannot answer either…
        server.send_frame(b"reply", SimTime::ZERO).unwrap();
        assert_eq!(
            client
                .recv_frame_timeout(Duration::from_millis(20))
                .unwrap_err(),
            NetError::Timeout
        );
        // …and new connections to it are refused.
        let err = f.connect("host", "n:1").unwrap_err();
        assert!(matches!(err, NetError::ConnectionRefused { .. }));
        assert!(
            f.connect("host2", "other:1").is_err(),
            "unbound still refused"
        );
    }

    #[test]
    fn traffic_is_charged_to_arrival_times_not_the_clock() {
        let clock = Clock::new();
        let f = Fabric::new(clock.clone(), LinkModel::gigabit_ethernet());
        let listener = f.bind("n:1").unwrap();
        let mut client = f.connect("host", "n:1").unwrap();
        let mut server = listener.accept().unwrap();
        let sent = client
            .send_frame(&vec![0u8; 125_000], SimTime::ZERO)
            .unwrap();
        let (_, arrival) = server.recv_frame().unwrap();
        // The link's cost shows up in the frame's virtual arrival...
        assert!(arrival > SimTime::ZERO);
        assert_eq!(arrival, sent);
        // ...while the shared clock is left to the observing endpoint.
        assert_eq!(clock.now(), SimTime::ZERO);
    }
}
