//! Length-prefixed framing with MTU segmentation.
//!
//! Every message/data package travels as one *frame*: a little-endian
//! `u32` length prefix followed by the payload. On the wire a frame is
//! segmented into [`MTU`]-sized chunks (standard Ethernet payload size)
//! and reassembled by a [`FrameAssembler`] at the receiver — partial
//! arrival, interleaved boundary cases and corrupt prefixes are all
//! exercised by the tests rather than hidden behind an in-process queue.
//!
//! The hot path is copy-free end to end: [`segment`] yields borrowed
//! sub-slices (the single-chunk ≤ MTU common case borrows the input
//! frame outright), [`segment_pooled`] yields [`PooledBytes`] views
//! sharing one pooled allocation, and the assembler's fast path slices
//! complete frames straight out of the arriving chunk's storage.

use crate::error::NetError;
use crate::pool::{BufferPool, PooledBytes};

/// Ethernet payload size used for segmentation.
pub const MTU: usize = 1500;

/// Maximum accepted frame payload (guards against corrupt prefixes).
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Encodes a payload as a frame: length prefix plus body.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Builds a frame in a pooled buffer: `write` appends the payload, and
/// the length prefix is patched afterwards. One checkout, zero
/// intermediate copies.
pub fn encode_frame_pooled(pool: &BufferPool, write: impl FnOnce(&mut Vec<u8>)) -> PooledBytes {
    let mut buf = pool.take();
    let v = buf.bytes_mut();
    v.extend_from_slice(&[0u8; 4]);
    write(v);
    let len = (v.len() - 4) as u32;
    v[..4].copy_from_slice(&len.to_le_bytes());
    buf.seal()
}

/// Splits an encoded frame into MTU-sized chunks (the last may be
/// short) without copying: each chunk borrows the input, and a frame
/// that already fits in one MTU is yielded as-is.
///
/// An empty frame still produces one chunk (the 4-byte prefix).
pub fn segment(frame: &[u8]) -> impl Iterator<Item = &[u8]> {
    frame.chunks(MTU)
}

/// [`segment`] over a pooled frame: every chunk is a [`PooledBytes`]
/// view sharing the frame's backing storage.
pub fn segment_pooled(frame: &PooledBytes) -> impl Iterator<Item = PooledBytes> + '_ {
    (0..frame.len().max(1))
        .step_by(MTU)
        .map(|start| frame.slice(start..frame.len().min(start + MTU)))
}

/// Incremental reassembly of frames from a chunk stream.
///
/// # Examples
///
/// ```
/// use haocl_net::frame::{encode_frame, segment, FrameAssembler};
///
/// let payload = vec![7u8; 4000];
/// let mut asm = FrameAssembler::new();
/// let mut frames = Vec::new();
/// for chunk in segment(&encode_frame(&payload)) {
///     frames.extend(asm.push(chunk)?);
/// }
/// assert_eq!(frames, vec![payload]);
/// # Ok::<(), haocl_net::NetError>(())
/// ```
#[derive(Debug, Default)]
pub struct FrameAssembler {
    /// Bytes of a frame spanning chunk boundaries (empty on the fast
    /// path, where complete frames are sliced out of arriving chunks).
    buf: Vec<u8>,
}

impl FrameAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Feeds received bytes in; returns every frame completed by them.
    ///
    /// # Errors
    ///
    /// [`NetError::BadFrame`] if a length prefix exceeds
    /// [`MAX_FRAME_LEN`].
    pub fn push(&mut self, chunk: &[u8]) -> Result<Vec<Vec<u8>>, NetError> {
        Ok(self
            .push_pooled(&PooledBytes::copy_from_slice(chunk))?
            .into_iter()
            .map(|f| f.to_vec())
            .collect())
    }

    /// [`FrameAssembler::push`] over a pooled chunk. Frames contained
    /// entirely within `chunk` are returned as views of its storage —
    /// no copy; only frames spanning chunk boundaries are assembled
    /// through the internal buffer.
    ///
    /// # Errors
    ///
    /// [`NetError::BadFrame`] if a length prefix exceeds
    /// [`MAX_FRAME_LEN`].
    pub fn push_pooled(&mut self, chunk: &PooledBytes) -> Result<Vec<PooledBytes>, NetError> {
        let mut out = Vec::new();
        let mut rest = chunk.clone();
        if self.buf.is_empty() {
            // Fast path: whole frames at the front of the chunk are
            // zero-copy slices of its backing storage.
            while let Some(total) = frame_total_len(&rest)? {
                out.push(rest.slice(4..total));
                rest = rest.slice(total..rest.len());
            }
        }
        if !rest.is_empty() {
            self.buf.extend_from_slice(&rest);
        }
        while let Some(total) = frame_total_len(&self.buf)? {
            out.push(PooledBytes::from_vec(self.buf[4..total].to_vec()));
            self.buf.drain(..total);
        }
        Ok(out)
    }

    /// Bytes buffered awaiting completion of the current frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

/// Total length (prefix + payload) of the frame at the front of
/// `bytes`, `None` while incomplete.
fn frame_total_len(bytes: &[u8]) -> Result<Option<usize>, NetError> {
    if bytes.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(NetError::BadFrame {
            reason: format!("length prefix {len} exceeds limit"),
        });
    }
    let total = 4 + len as usize;
    Ok((bytes.len() >= total).then_some(total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_payload_roundtrips() {
        let mut asm = FrameAssembler::new();
        let frames = asm.push(&encode_frame(&[])).unwrap();
        assert_eq!(frames, vec![Vec::<u8>::new()]);
        assert_eq!(asm.pending_bytes(), 0);
    }

    #[test]
    fn single_chunk_roundtrips() {
        let mut asm = FrameAssembler::new();
        let frames = asm.push(&encode_frame(b"abc")).unwrap();
        assert_eq!(frames, vec![b"abc".to_vec()]);
    }

    #[test]
    fn single_chunk_segmentation_borrows_the_frame() {
        let frame = encode_frame(&[5u8; 100]);
        let chunks: Vec<&[u8]> = segment(&frame).collect();
        assert_eq!(chunks.len(), 1);
        // The ≤ MTU common case must not copy: same allocation.
        assert!(std::ptr::eq(chunks[0], frame.as_slice()));
    }

    #[test]
    fn large_frame_segments_and_reassembles() {
        let payload: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let frame = encode_frame(&payload);
        let chunks: Vec<&[u8]> = segment(&frame).collect();
        assert!(chunks.len() > 1);
        assert!(chunks.iter().all(|c| c.len() <= MTU));
        let mut asm = FrameAssembler::new();
        let mut frames = Vec::new();
        for c in &chunks {
            frames.extend(asm.push(c).unwrap());
        }
        assert_eq!(frames, vec![payload]);
    }

    #[test]
    fn pooled_segmentation_shares_storage() {
        let pool = BufferPool::new();
        let payload = vec![3u8; 4000];
        let frame = encode_frame_pooled(&pool, |v| v.extend_from_slice(&payload));
        assert_eq!(frame.len(), 4004);
        let chunks: Vec<PooledBytes> = segment_pooled(&frame).collect();
        assert_eq!(chunks.len(), 3);
        // Chunk views alias the frame's allocation, not copies of it.
        assert!(std::ptr::eq(&chunks[0][..MTU], &frame[..MTU]));
        let mut asm = FrameAssembler::new();
        let mut frames = Vec::new();
        for c in &chunks {
            frames.extend(asm.push_pooled(c).unwrap());
        }
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0], payload);
    }

    #[test]
    fn assembler_fast_path_is_zero_copy() {
        let pool = BufferPool::new();
        let chunk = encode_frame_pooled(&pool, |v| v.extend_from_slice(b"tiny"));
        let mut asm = FrameAssembler::new();
        let frames = asm.push_pooled(&chunk).unwrap();
        assert_eq!(frames.len(), 1);
        // The returned frame is a view into the chunk's own storage.
        assert!(std::ptr::eq(&frames[0][..], &chunk[4..]));
        assert_eq!(asm.pending_bytes(), 0);
    }

    #[test]
    fn two_frames_in_one_chunk() {
        let mut bytes = encode_frame(b"one");
        bytes.extend_from_slice(&encode_frame(b"two"));
        let mut asm = FrameAssembler::new();
        let frames = asm.push(&bytes).unwrap();
        assert_eq!(frames, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn frame_split_at_awkward_boundaries() {
        let payload = vec![9u8; 100];
        let bytes = encode_frame(&payload);
        let mut asm = FrameAssembler::new();
        // Feed one byte at a time: the worst case.
        let mut frames = Vec::new();
        for b in &bytes {
            frames.extend(asm.push(std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(frames, vec![payload]);
    }

    #[test]
    fn oversized_prefix_rejected() {
        let mut asm = FrameAssembler::new();
        let bad = (MAX_FRAME_LEN + 1).to_le_bytes();
        let err = asm.push(&bad).unwrap_err();
        assert!(matches!(err, NetError::BadFrame { .. }));
    }

    #[test]
    fn pending_bytes_tracks_partial_frames() {
        let mut asm = FrameAssembler::new();
        let bytes = encode_frame(&[1, 2, 3, 4]);
        asm.push(&bytes[..5]).unwrap();
        assert_eq!(asm.pending_bytes(), 5);
        asm.push(&bytes[5..]).unwrap();
        assert_eq!(asm.pending_bytes(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_payload_sequences_reassemble(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..5000), 1..6),
            cut in 1usize..2000,
        ) {
            // Concatenate all frames, feed them in `cut`-sized pieces.
            let mut stream = Vec::new();
            for p in &payloads {
                stream.extend_from_slice(&encode_frame(p));
            }
            let mut asm = FrameAssembler::new();
            let mut frames = Vec::new();
            for piece in stream.chunks(cut) {
                frames.extend(asm.push(piece).unwrap());
            }
            prop_assert_eq!(frames, payloads);
            prop_assert_eq!(asm.pending_bytes(), 0);
        }

        #[test]
        fn pooled_and_copying_paths_agree(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..4000), 1..5),
            cut in 1usize..1600,
        ) {
            let pool = BufferPool::new();
            let mut stream = Vec::new();
            for p in &payloads {
                let f = encode_frame_pooled(&pool, |v| v.extend_from_slice(p));
                stream.extend_from_slice(&f);
            }
            let mut asm = FrameAssembler::new();
            let mut frames = Vec::new();
            for piece in stream.chunks(cut) {
                let chunk = PooledBytes::copy_from_slice(piece);
                frames.extend(asm.push_pooled(&chunk).unwrap());
            }
            let got: Vec<Vec<u8>> = frames.iter().map(|f| f.to_vec()).collect();
            prop_assert_eq!(got, payloads);
            prop_assert_eq!(asm.pending_bytes(), 0);
        }
    }
}
