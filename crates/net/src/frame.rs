//! Length-prefixed framing with MTU segmentation.
//!
//! Every message/data package travels as one *frame*: a little-endian
//! `u32` length prefix followed by the payload. On the wire a frame is
//! segmented into [`MTU`]-sized chunks (standard Ethernet payload size)
//! and reassembled by a [`FrameAssembler`] at the receiver — partial
//! arrival, interleaved boundary cases and corrupt prefixes are all
//! exercised by the tests rather than hidden behind an in-process queue.

use crate::error::NetError;

/// Ethernet payload size used for segmentation.
pub const MTU: usize = 1500;

/// Maximum accepted frame payload (guards against corrupt prefixes).
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Encodes a payload as a frame: length prefix plus body.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits an encoded frame into MTU-sized chunks (the last may be short).
///
/// An empty frame still produces one chunk (the 4-byte prefix).
pub fn segment(frame: &[u8]) -> Vec<Vec<u8>> {
    frame.chunks(MTU).map(|c| c.to_vec()).collect()
}

/// Incremental reassembly of frames from a chunk stream.
///
/// # Examples
///
/// ```
/// use haocl_net::frame::{encode_frame, segment, FrameAssembler};
///
/// let payload = vec![7u8; 4000];
/// let mut asm = FrameAssembler::new();
/// let mut frames = Vec::new();
/// for chunk in segment(&encode_frame(&payload)) {
///     frames.extend(asm.push(&chunk)?);
/// }
/// assert_eq!(frames, vec![payload]);
/// # Ok::<(), haocl_net::NetError>(())
/// ```
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
}

impl FrameAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Feeds received bytes in; returns every frame completed by them.
    ///
    /// # Errors
    ///
    /// [`NetError::BadFrame`] if a length prefix exceeds
    /// [`MAX_FRAME_LEN`].
    pub fn push(&mut self, chunk: &[u8]) -> Result<Vec<Vec<u8>>, NetError> {
        self.buf.extend_from_slice(chunk);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes"));
            if len > MAX_FRAME_LEN {
                return Err(NetError::BadFrame {
                    reason: format!("length prefix {len} exceeds limit"),
                });
            }
            let total = 4 + len as usize;
            if self.buf.len() < total {
                break;
            }
            let mut rest = self.buf.split_off(total);
            std::mem::swap(&mut self.buf, &mut rest);
            out.push(rest[4..].to_vec());
        }
        Ok(out)
    }

    /// Bytes buffered awaiting completion of the current frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_payload_roundtrips() {
        let mut asm = FrameAssembler::new();
        let frames = asm.push(&encode_frame(&[])).unwrap();
        assert_eq!(frames, vec![Vec::<u8>::new()]);
        assert_eq!(asm.pending_bytes(), 0);
    }

    #[test]
    fn single_chunk_roundtrips() {
        let mut asm = FrameAssembler::new();
        let frames = asm.push(&encode_frame(b"abc")).unwrap();
        assert_eq!(frames, vec![b"abc".to_vec()]);
    }

    #[test]
    fn large_frame_segments_and_reassembles() {
        let payload: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let chunks = segment(&encode_frame(&payload));
        assert!(chunks.len() > 1);
        assert!(chunks.iter().all(|c| c.len() <= MTU));
        let mut asm = FrameAssembler::new();
        let mut frames = Vec::new();
        for c in &chunks {
            frames.extend(asm.push(c).unwrap());
        }
        assert_eq!(frames, vec![payload]);
    }

    #[test]
    fn two_frames_in_one_chunk() {
        let mut bytes = encode_frame(b"one");
        bytes.extend_from_slice(&encode_frame(b"two"));
        let mut asm = FrameAssembler::new();
        let frames = asm.push(&bytes).unwrap();
        assert_eq!(frames, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn frame_split_at_awkward_boundaries() {
        let payload = vec![9u8; 100];
        let bytes = encode_frame(&payload);
        let mut asm = FrameAssembler::new();
        // Feed one byte at a time: the worst case.
        let mut frames = Vec::new();
        for b in &bytes {
            frames.extend(asm.push(std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(frames, vec![payload]);
    }

    #[test]
    fn oversized_prefix_rejected() {
        let mut asm = FrameAssembler::new();
        let bad = (MAX_FRAME_LEN + 1).to_le_bytes();
        let err = asm.push(&bad).unwrap_err();
        assert!(matches!(err, NetError::BadFrame { .. }));
    }

    #[test]
    fn pending_bytes_tracks_partial_frames() {
        let mut asm = FrameAssembler::new();
        let bytes = encode_frame(&[1, 2, 3, 4]);
        asm.push(&bytes[..5]).unwrap();
        assert_eq!(asm.pending_bytes(), 5);
        asm.push(&bytes[5..]).unwrap();
        assert_eq!(asm.pending_bytes(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_payload_sequences_reassemble(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..5000), 1..6),
            cut in 1usize..2000,
        ) {
            // Concatenate all frames, feed them in `cut`-sized pieces.
            let mut stream = Vec::new();
            for p in &payloads {
                stream.extend_from_slice(&encode_frame(p));
            }
            let mut asm = FrameAssembler::new();
            let mut frames = Vec::new();
            for piece in stream.chunks(cut) {
                frames.extend(asm.push(piece).unwrap());
            }
            prop_assert_eq!(frames, payloads);
            prop_assert_eq!(asm.pending_bytes(), 0);
        }
    }
}
