//! The HaoCL communication backbone.
//!
//! The paper builds its backbone on Boost.Asio: every node runs a message
//! listener and a data listener on known `ip:port` addresses; the host
//! connects to each node from a configuration file, sends message/data
//! packages and (synchronously, on the host side) awaits responses
//! (§III-C). This crate reproduces that design in-process:
//!
//! * [`fabric`] — the "Ethernet": an address registry where nodes
//!   [`Fabric::bind`] acceptors and peers [`Fabric::connect`]. Every
//!   transmission charges the sender's NIC on a virtual-time link model
//!   (Gigabit by default), so fan-out from the host serializes exactly as
//!   it would on real hardware — this contention is what bends the
//!   paper's Fig. 2 scaling curves.
//! * [`frame`] — length-prefixed frames, segmented into Ethernet-MTU
//!   chunks and reassembled at the receiver.
//! * [`pool`] — recycled frame buffers behind cheaply sliceable
//!   [`PooledBytes`] views; segmentation and reassembly share one
//!   allocation per frame instead of copying per chunk.
//! * [`chaos`] — seeded, deterministic fault injection (drops, delays,
//!   duplication, reordering, resets, crashes, partitions) installed on
//!   a fabric via [`Fabric::install_chaos`].
//! * [`error`] — connection failure taxonomy.
//!
//! # Examples
//!
//! ```
//! use haocl_net::{Fabric, LinkModel};
//! use haocl_sim::{Clock, SimTime};
//!
//! let fabric = Fabric::new(Clock::new(), LinkModel::gigabit_ethernet());
//! let listener = fabric.bind("10.0.0.2:7001")?;
//! let mut client = fabric.connect("10.0.0.1", "10.0.0.2:7001")?;
//! let mut server = listener.accept()?;
//!
//! let arrival = client.send_frame(b"hello node", SimTime::ZERO)?;
//! let (payload, at) = server.recv_frame()?;
//! assert_eq!(payload, b"hello node");
//! assert_eq!(at, arrival);
//! # Ok::<(), haocl_net::NetError>(())
//! ```

pub mod chaos;
pub mod error;
pub mod fabric;
pub mod frame;
pub mod pool;

pub use chaos::{ChaosPolicy, ChaosSpec, ChaosSummary, ChaosVerdict};
pub use error::NetError;
pub use fabric::{
    host_name_of, Conn, ConnReceiver, ConnSender, Fabric, FabricStats, LinkModel, Listener,
};
pub use pool::{BufferPool, PoolStats, PooledBytes};
