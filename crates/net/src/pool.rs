//! Pooled byte buffers for the zero-copy wire path.
//!
//! Every frame transmission used to allocate once for the encoded
//! payload, once for the length-prefixed frame, and once *per MTU
//! chunk*. [`BufferPool`] recycles the backing allocations instead:
//! a sender checks a [`PoolBuf`] out, writes the frame into it, and
//! seals it into a [`PooledBytes`] — a cheaply cloneable, sliceable
//! view (chunk segmentation and reassembly slice it without copying).
//! When the last view drops, the allocation returns to the pool for the
//! next frame.
//!
//! The pool is deliberately simple — a mutex-guarded free list — because
//! the hot path amortizes it across whole frames, not per chunk. It is
//! bounded both in buffer count and in retained capacity so a single
//! huge transfer cannot pin memory forever.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Buffers kept on the free list beyond which returns are dropped.
const MAX_POOLED_BUFFERS: usize = 64;

/// A returned buffer with more capacity than this is dropped rather
/// than retained (keeps one bulk transfer from pinning megabytes).
const MAX_RETAINED_CAPACITY: usize = 1 << 20;

/// Cumulative counters for one [`BufferPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Checkouts served by a recycled buffer.
    pub reuses: u64,
    /// Checkouts that had to allocate fresh.
    pub misses: u64,
    /// Buffers returned to the free list.
    pub returns: u64,
}

#[derive(Default)]
struct PoolShared {
    free: Mutex<Vec<Vec<u8>>>,
    reuses: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
}

impl PoolShared {
    fn take(&self) -> Vec<u8> {
        let recycled = self.free.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match recycled {
            Some(mut v) => {
                v.clear();
                self.reuses.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    fn put_back(&self, v: Vec<u8>) {
        if v.capacity() == 0 || v.capacity() > MAX_RETAINED_CAPACITY {
            return;
        }
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        if free.len() < MAX_POOLED_BUFFERS {
            free.push(v);
            self.returns.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A shared recycling pool of byte buffers. Cloning is cheap; clones
/// draw from the same free list.
#[derive(Clone, Default)]
pub struct BufferPool {
    shared: Arc<PoolShared>,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Checks a writable buffer out of the pool (recycled when one is
    /// free, freshly allocated otherwise).
    pub fn take(&self) -> PoolBuf {
        PoolBuf {
            data: self.shared.take(),
            pool: Arc::downgrade(&self.shared),
        }
    }

    /// Buffers currently on the free list.
    pub fn idle_buffers(&self) -> usize {
        self.shared
            .free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// A consistent-enough snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            reuses: self.shared.reuses.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            returns: self.shared.returns.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("idle", &self.idle_buffers())
            .field("stats", &self.stats())
            .finish()
    }
}

/// A writable buffer checked out of a [`BufferPool`].
///
/// Write the frame via [`PoolBuf::bytes_mut`] (it derefs to `Vec<u8>`),
/// then [`PoolBuf::seal`] it into an immutable [`PooledBytes`] view.
/// Dropping an unsealed `PoolBuf` returns the allocation immediately.
#[derive(Debug)]
pub struct PoolBuf {
    data: Vec<u8>,
    pool: Weak<PoolShared>,
}

impl PoolBuf {
    /// The buffer to write into (starts empty).
    pub fn bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }

    /// Freezes the written bytes into an immutable shared view. The
    /// allocation returns to the pool when the last view drops.
    pub fn seal(self) -> PooledBytes {
        let mut this = std::mem::ManuallyDrop::new(self);
        let data = std::mem::take(&mut this.data);
        let pool = std::mem::replace(&mut this.pool, Weak::new());
        let end = data.len();
        PooledBytes {
            storage: Arc::new(Storage { data, pool }),
            start: 0,
            end,
        }
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.put_back(std::mem::take(&mut self.data));
        }
    }
}

struct Storage {
    data: Vec<u8>,
    /// Weak: a pool teardown must not keep in-flight frames alive, and
    /// in-flight frames must not keep a dropped pool alive.
    pool: Weak<PoolShared>,
}

impl Drop for Storage {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.put_back(std::mem::take(&mut self.data));
        }
    }
}

/// An immutable, cheaply cloneable view into a (possibly pooled) byte
/// buffer. [`PooledBytes::slice`] shares the backing storage, which is
/// what makes MTU segmentation and frame reassembly copy-free.
#[derive(Clone)]
pub struct PooledBytes {
    storage: Arc<Storage>,
    start: usize,
    end: usize,
}

impl PooledBytes {
    /// Wraps an owned vector (not attached to any pool).
    pub fn from_vec(data: Vec<u8>) -> Self {
        let end = data.len();
        PooledBytes {
            storage: Arc::new(Storage {
                data,
                pool: Weak::new(),
            }),
            start: 0,
            end,
        }
    }

    /// Copies a slice into a fresh unpooled buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        PooledBytes::from_vec(bytes.to_vec())
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same backing storage (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> PooledBytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for {} bytes",
            self.len()
        );
        PooledBytes {
            storage: Arc::clone(&self.storage),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies this view into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.storage.data[self.start..self.end]
    }
}

impl Deref for PooledBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PooledBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for PooledBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PooledBytes {}

impl PartialEq<[u8]> for PooledBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for PooledBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for PooledBytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for PooledBytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl std::fmt::Debug for PooledBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledBytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_write_seal_slice() {
        let pool = BufferPool::new();
        let mut buf = pool.take();
        buf.bytes_mut().extend_from_slice(b"hello world");
        let bytes = buf.seal();
        assert_eq!(bytes, *b"hello world");
        let hello = bytes.slice(0..5);
        let world = bytes.slice(6..11);
        assert_eq!(hello, *b"hello");
        assert_eq!(world, *b"world");
    }

    #[test]
    fn storage_returns_to_pool_after_last_view_drops() {
        let pool = BufferPool::new();
        let mut buf = pool.take();
        buf.bytes_mut().extend_from_slice(&[1, 2, 3]);
        let sealed = buf.seal();
        let view = sealed.slice(1..3);
        drop(sealed);
        assert_eq!(pool.idle_buffers(), 0, "view still alive");
        drop(view);
        assert_eq!(pool.idle_buffers(), 1);
        // Next checkout reuses the allocation.
        let _again = pool.take();
        assert_eq!(pool.stats().reuses, 1);
        assert_eq!(pool.idle_buffers(), 0);
    }

    #[test]
    fn unsealed_checkout_returns_on_drop() {
        let pool = BufferPool::new();
        let mut buf = pool.take();
        buf.bytes_mut().extend_from_slice(&[0; 128]);
        drop(buf);
        assert_eq!(pool.idle_buffers(), 1);
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let pool = BufferPool::new();
        let mut buf = pool.take();
        buf.bytes_mut()
            .extend_from_slice(&vec![0u8; MAX_RETAINED_CAPACITY + 1]);
        drop(buf.seal());
        assert_eq!(pool.idle_buffers(), 0);
    }

    #[test]
    fn pool_death_detaches_outstanding_views() {
        let pool = BufferPool::new();
        let mut buf = pool.take();
        buf.bytes_mut().push(42);
        let sealed = buf.seal();
        drop(pool);
        assert_eq!(sealed, [42u8]);
        drop(sealed); // returns nowhere, must not panic
    }

    #[test]
    fn from_vec_is_unpooled() {
        let b = PooledBytes::from_vec(vec![7, 8, 9]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.slice(1..2), [8u8]);
    }
}
