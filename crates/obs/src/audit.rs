//! The scheduler decision audit log.
//!
//! Answers "where did this kernel run, and *why*": for every placement the
//! scheduler records the candidate devices it considered, what each
//! prediction source said about them, which one won, and the reason. The
//! log renders as one line per placement and aggregates into a per-kernel
//! summary for the bench JSON.

use std::collections::BTreeMap;
use std::fmt;

use parking_lot::Mutex;

/// Where a candidate's predicted runtime came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionSource {
    /// Warm profile-database entry built from observed runs.
    Observed,
    /// Static-analysis seed not yet displaced by observations.
    Seed,
    /// A warm observation from *another* device class, transferred
    /// through the compute-currency exchange rates.
    Currency,
    /// No profile entry; the roofline cost model estimated the time.
    CostModel,
}

impl fmt::Display for PredictionSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PredictionSource::Observed => "observed",
            PredictionSource::Seed => "seed",
            PredictionSource::Currency => "currency",
            PredictionSource::CostModel => "cost-model",
        })
    }
}

/// One device the scheduler considered for a placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateInfo {
    /// Index of the device in the caller's device list.
    pub device: usize,
    /// Node the device lives on.
    pub node: String,
    /// Device kind (`Cpu` / `Gpu` / `Fpga`).
    pub kind: String,
    /// Predicted runtime in virtual nanoseconds, if any source had one.
    pub predicted_nanos: Option<u64>,
    /// Which source produced the prediction.
    pub source: PredictionSource,
    /// The drift detector's verdict on the candidate's node at placement
    /// time: `"ok"`, or `"degraded(x<ratio>)"` with the measured
    /// slowdown the policies down-weighted it by.
    pub health: String,
}

impl CandidateInfo {
    /// The health string a healthy candidate carries.
    pub const HEALTHY: &'static str = "ok";

    /// Renders a degraded verdict with its measured slowdown ratio.
    pub fn degraded_health(penalty: f64) -> String {
        format!("degraded(x{penalty:.2})")
    }

    /// Whether the candidate carried a degraded verdict at placement.
    pub fn is_degraded(&self) -> bool {
        self.health.starts_with("degraded")
    }
}

impl fmt::Display for CandidateInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}/{}", self.device, self.node, self.kind)?;
        match self.predicted_nanos {
            Some(n) => write!(f, " pred={n}ns src={}", self.source)?,
            None => write!(f, " pred=none src={}", self.source)?,
        }
        write!(f, " health={}", self.health)
    }
}

/// What the fusion prover decided about a launch, rendered as the
/// audit line's `fused=` column. Launches that never went through the
/// graph path carry [`FusionDecision::Unconsidered`] (`-`), so the
/// single-launch audit trail stays recognizable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum FusionDecision {
    /// The launch never went through the task-graph path.
    #[default]
    Unconsidered,
    /// Graph path, but the node dispatched alone (no fusable neighbor,
    /// or fusion disabled on the graph).
    Solo,
    /// Leads a fused dispatch covering `len` kernels.
    Fused {
        /// Total kernels in the fused dispatch (including the lead).
        len: usize,
    },
    /// Folded into the dispatch led by `lead` — no wire command of its
    /// own.
    FusedInto {
        /// Kernel name of the dispatch lead.
        lead: String,
    },
    /// Fusing with its predecessor was not provably safe; `code` is the
    /// prover's machine-readable rejection reason.
    Rejected {
        /// Stable rejection code (e.g. `write-write-overlap`).
        code: String,
    },
}

impl fmt::Display for FusionDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionDecision::Unconsidered => f.write_str("-"),
            FusionDecision::Solo => f.write_str("solo"),
            FusionDecision::Fused { len } => write!(f, "lead:{len}"),
            FusionDecision::FusedInto { lead } => write!(f, "into:{lead}"),
            FusionDecision::Rejected { code } => write!(f, "rejected:{code}"),
        }
    }
}

/// The full record of one placement decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementAudit {
    /// Kernel being placed.
    pub kernel: String,
    /// Billing tenant the launch was submitted under. Untagged
    /// (single-tenant) launches carry `"default"`, so existing
    /// dashboards keep matching without a rewrite.
    pub tenant: String,
    /// Active policy name.
    pub policy: String,
    /// Devices that survived eligibility filtering.
    pub candidates: Vec<CandidateInfo>,
    /// Index (into the caller's device list) of the winner.
    pub chosen: usize,
    /// Why the winner won (policy-specific).
    pub reason: String,
    /// The fusion prover's verdict for this launch.
    pub fused: FusionDecision,
}

/// The tenant label untagged placements carry.
pub const DEFAULT_TENANT: &str = "default";

impl PlacementAudit {
    /// The winning candidate's record, if present in `candidates`.
    pub fn winner(&self) -> Option<&CandidateInfo> {
        self.candidates.iter().find(|c| c.device == self.chosen)
    }

    /// Renders the decision as a single audit-log line.
    pub fn line(&self) -> String {
        let chosen = match self.winner() {
            Some(w) => format!("{}/{}", w.node, w.kind),
            None => format!("device{}", self.chosen),
        };
        let health = self
            .winner()
            .map(|w| w.health.clone())
            .unwrap_or_else(|| "-".to_string());
        let cands: Vec<String> = self.candidates.iter().map(|c| c.to_string()).collect();
        format!(
            "place kernel={} tenant={} policy={} chosen={} health={} fused={} reason=\"{}\" candidates=[{}]",
            self.kernel,
            self.tenant,
            self.policy,
            chosen,
            health,
            self.fused,
            self.reason,
            cands.join(", ")
        )
    }
}

/// Thread-safe collector of placement decisions.
#[derive(Debug, Default)]
pub struct AuditLog {
    entries: Mutex<Vec<PlacementAudit>>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Appends one placement decision.
    pub fn record(&self, audit: PlacementAudit) {
        self.entries.lock().push(audit);
    }

    /// Snapshot of every decision so far, in placement order.
    pub fn entries(&self) -> Vec<PlacementAudit> {
        self.entries.lock().clone()
    }

    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether no decision has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Renders the whole log, one line per placement.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.entries.lock().iter() {
            out.push_str(&e.line());
            out.push('\n');
        }
        out
    }

    /// Placement counts aggregated by (kernel, winning device kind) —
    /// the shape the bench JSON summary carries.
    pub fn summary(&self) -> BTreeMap<(String, String), u64> {
        let mut out = BTreeMap::new();
        for e in self.entries.lock().iter() {
            let kind = e
                .winner()
                .map(|w| w.kind.clone())
                .unwrap_or_else(|| "unknown".to_string());
            *out.entry((e.kernel.clone(), kind)).or_insert(0) += 1;
        }
        out
    }

    /// Drops every recorded decision.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(kernel: &str, chosen: usize) -> PlacementAudit {
        PlacementAudit {
            kernel: kernel.to_string(),
            tenant: DEFAULT_TENANT.to_string(),
            policy: "hetero-aware".to_string(),
            candidates: vec![
                CandidateInfo {
                    device: 0,
                    node: "node0".to_string(),
                    kind: "Cpu".to_string(),
                    predicted_nanos: Some(500),
                    source: PredictionSource::Seed,
                    health: CandidateInfo::HEALTHY.to_string(),
                },
                CandidateInfo {
                    device: 1,
                    node: "node1".to_string(),
                    kind: "Gpu".to_string(),
                    predicted_nanos: None,
                    source: PredictionSource::CostModel,
                    health: CandidateInfo::HEALTHY.to_string(),
                },
            ],
            chosen,
            reason: "lowest predicted time".to_string(),
            fused: FusionDecision::Unconsidered,
        }
    }

    #[test]
    fn line_names_winner_and_every_candidate() {
        let line = audit("mm", 0).line();
        assert!(line.contains("kernel=mm"));
        assert!(line.contains("tenant=default"));
        assert!(line.contains("chosen=node0/Cpu"));
        assert!(line.contains("fused=-"));
        assert!(line.contains("pred=500ns src=seed"));
        assert!(line.contains("pred=none src=cost-model"));
    }

    #[test]
    fn health_column_carries_the_winners_verdict() {
        let mut a = audit("mm", 0);
        assert!(a.line().contains(" health=ok "), "{}", a.line());
        a.candidates[0].health = CandidateInfo::degraded_health(2.5);
        assert!(a.candidates[0].is_degraded());
        let line = a.line();
        assert!(line.contains(" health=degraded(x2.50) "), "{line}");
        assert!(line.contains("src=seed health=degraded(x2.50)"), "{line}");
        // A row with no candidate records (e.g. node-health transitions)
        // renders a placeholder.
        a.candidates.clear();
        assert!(a.line().contains(" health=- "), "{}", a.line());
    }

    #[test]
    fn fusion_column_renders_every_decision() {
        let mut a = audit("mm", 0);
        a.fused = FusionDecision::Fused { len: 3 };
        assert!(a.line().contains("fused=lead:3"));
        a.fused = FusionDecision::FusedInto {
            lead: "mm".to_string(),
        };
        assert!(a.line().contains("fused=into:mm"));
        a.fused = FusionDecision::Rejected {
            code: "write-write-overlap".to_string(),
        };
        assert!(a.line().contains("fused=rejected:write-write-overlap"));
        a.fused = FusionDecision::Solo;
        assert!(a.line().contains("fused=solo"));
    }

    #[test]
    fn summary_counts_by_kernel_and_kind() {
        let log = AuditLog::new();
        log.record(audit("mm", 0));
        log.record(audit("mm", 0));
        log.record(audit("mm", 1));
        log.record(audit("knn", 1));
        let s = log.summary();
        assert_eq!(s[&("mm".to_string(), "Cpu".to_string())], 2);
        assert_eq!(s[&("mm".to_string(), "Gpu".to_string())], 1);
        assert_eq!(s[&("knn".to_string(), "Gpu".to_string())], 1);
        assert_eq!(log.len(), 4);
        assert_eq!(log.render().lines().count(), 4);
    }
}
