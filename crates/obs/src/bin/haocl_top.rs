//! `haocl-top` — fleet health / placement dashboard.
//!
//! Joins a Prometheus metrics rendering with the scheduler audit log
//! into one per-node table: device class, drift verdict, placements won
//! (and how many while degraded), avoidance count, queue depth, mean
//! observed latency, and compute-currency rate.
//!
//! Usage:
//!
//! ```text
//! haocl-top --metrics metrics.prom --audit audit.log
//! haocl-top --metrics metrics.prom --audit audit.log --report json
//! ```
//!
//! Exit codes: 0 = ok, 2 = unreadable input / bad usage. The verdict
//! itself never fails the process — gating on health is the caller's
//! job (see the CI soak job), the dashboard just reports it.

use std::process::ExitCode;

use haocl_obs::FleetSnapshot;

const USAGE: &str =
    "usage: haocl-top --metrics <metrics.prom> [--audit <audit.log>] [--report json]";

fn main() -> ExitCode {
    let mut metrics_path: Option<String> = None;
    let mut audit_path: Option<String> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics" => metrics_path = args.next(),
            "--audit" => audit_path = args.next(),
            "--report" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("haocl-top: unknown report format {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("haocl-top: unexpected argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(metrics_path) = metrics_path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let metrics = match std::fs::read_to_string(&metrics_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("haocl-top: cannot read {metrics_path}: {e}");
            return ExitCode::from(2);
        }
    };
    // The audit log is optional: without it the table still carries the
    // metric-derived columns, just no placement counts.
    let audit = match &audit_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("haocl-top: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => String::new(),
    };

    let snapshot = FleetSnapshot::from_text(&metrics, &audit);
    if json {
        println!("{}", snapshot.to_json());
    } else {
        print!("{}", snapshot.render());
    }
    ExitCode::SUCCESS
}
