//! `haocl-trace` — replay a recorded `trace.json` as text breakdowns.
//!
//! Usage:
//!
//! ```text
//! haocl-trace trace.json            # per-phase / per-node breakdown
//! haocl-trace --check trace.json    # validate only; exit 1 on orphans
//! ```
//!
//! Exit codes: 0 = ok, 1 = orphan spans found, 2 = unreadable/invalid
//! input.

use std::process::ExitCode;

use haocl_obs::{orphan_ids, parse_chrome_trace, render_breakdown};

fn main() -> ExitCode {
    let mut check_only = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check_only = true,
            "--help" | "-h" => {
                eprintln!("usage: haocl-trace [--check] trace.json");
                return ExitCode::SUCCESS;
            }
            _ if path.is_none() => path = Some(arg),
            other => {
                eprintln!("haocl-trace: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: haocl-trace [--check] trace.json");
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("haocl-trace: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let spans = match parse_chrome_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("haocl-trace: {path} is not a HaoCL Chrome trace: {e}");
            return ExitCode::from(2);
        }
    };

    let orphans = orphan_ids(&spans);
    if !check_only {
        print!("{}", render_breakdown(&spans));
    }
    if orphans.is_empty() {
        if check_only {
            println!("ok: {} span(s), no orphans", spans.len());
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "haocl-trace: {} orphan span(s): {}",
            orphans.len(),
            orphans.join(", ")
        );
        ExitCode::FAILURE
    }
}
