//! Chrome trace-event export.
//!
//! Serializes a span stream into the Trace Event Format consumed by
//! `chrome://tracing` and Perfetto: one complete (`"ph":"X"`) event per
//! span, one process per node (named via `"M"` metadata events), with
//! `ts`/`dur` in microseconds of **virtual** time. Span/trace ids are
//! serialized as JSON *strings* — node-derived ids use the high bit, which
//! does not survive a round-trip through a double.
//!
//! The output is deterministic: events are sorted by (trace, start, id)
//! and processes are numbered in node-name order.

use std::collections::BTreeMap;

use crate::span::Span;

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats nanoseconds as fractional microseconds (3 decimals, exact).
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

/// Renders `spans` as a Chrome trace-event JSON document.
///
/// # Examples
///
/// ```
/// use haocl_obs::{chrome_trace, Span, SpanId, TraceId};
/// use haocl_sim::{Phase, SimTime};
///
/// let spans = [Span::new(
///     SpanId(1), TraceId(1), None, "enqueue", Phase::Compute, "host",
///     SimTime::ZERO, SimTime::from_nanos(2_500),
/// )];
/// let json = chrome_trace(&spans);
/// assert!(json.contains("\"ph\":\"X\""));
/// assert!(json.contains("\"dur\":2.500"));
/// ```
pub fn chrome_trace(spans: &[Span]) -> String {
    // One Chrome "process" per node, numbered in name order.
    let pids: BTreeMap<&str, usize> = spans
        .iter()
        .map(|s| s.node.as_str())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .zip(1..)
        .collect();

    let mut ordered: Vec<&Span> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.trace, s.start, s.id));

    let mut events = Vec::with_capacity(pids.len() + ordered.len());
    for (node, pid) in &pids {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(node)
        ));
    }
    for s in ordered {
        let pid = pids[s.node.as_str()];
        let mut args = vec![
            format!("\"id\":\"{}\"", s.id.0),
            format!("\"trace\":\"{}\"", s.trace.0),
        ];
        if let Some(p) = s.parent {
            args.push(format!("\"parent\":\"{}\"", p.0));
        }
        for (k, v) in &s.attrs {
            args.push(format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{pid},\"tid\":0,\"args\":{{{}}}}}",
            json_escape(&s.name),
            json_escape(s.category.as_str()),
            micros(s.start.as_nanos()),
            micros(s.end.as_nanos().saturating_sub(s.start.as_nanos())),
            args.join(",")
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, TraceId};
    use haocl_sim::{Phase, SimTime};

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn micros_is_exact() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1), "0.001");
        assert_eq!(micros(2_500), "2.500");
        assert_eq!(micros(1_000_000), "1000.000");
    }

    #[test]
    fn output_is_deterministic_regardless_of_span_order() {
        let a = Span::new(
            SpanId(1),
            TraceId(1),
            None,
            "root",
            Phase::Compute,
            "host",
            SimTime::ZERO,
            SimTime::from_nanos(100),
        );
        let b = Span::new(
            SpanId(2),
            TraceId(1),
            Some(SpanId(1)),
            "child",
            Phase::DataTransfer,
            "node0",
            SimTime::from_nanos(10),
            SimTime::from_nanos(60),
        );
        let fwd = chrome_trace(&[a.clone(), b.clone()]);
        let rev = chrome_trace(&[b, a]);
        assert_eq!(fwd, rev);
        assert!(fwd.contains("\"parent\":\"1\""));
        assert!(fwd.contains("\"args\":{\"name\":\"node0\"}"));
    }
}
