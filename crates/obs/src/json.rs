//! A minimal JSON reader for `haocl-trace`.
//!
//! The workspace has no serde (all dependencies are offline path shims),
//! and the only JSON this crate ever *reads* is the Chrome trace-event
//! document it *writes* — so a small recursive-descent parser over the
//! full JSON grammar is all that is needed. It accepts any valid JSON
//! text; it is not a streaming parser and holds the document in memory.

use std::collections::BTreeMap;
use std::str::Chars;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable message on malformed input or trailing
/// non-whitespace.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        it: text.chars(),
        peeked: None,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err("trailing characters after JSON value".to_string());
    }
    Ok(value)
}

struct Parser<'a> {
    it: Chars<'a>,
    peeked: Option<char>,
}

impl Parser<'_> {
    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.it.next();
        }
        self.peeked
    }

    fn next(&mut self) -> Option<char> {
        self.peek();
        self.peeked.take()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.next() {
            Some(got) if got == c => Ok(()),
            got => Err(format!("expected '{c}', got {got:?}")),
        }
    }

    fn literal(&mut self, rest: &str, value: Json) -> Result<Json, String> {
        for c in rest.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            got => Err(format!("unexpected {got:?} at start of value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.next();
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.next() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Obj(map)),
                got => return Err(format!("expected ',' or '}}' in object, got {got:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.next();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.next() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Arr(items)),
                got => return Err(format!("expected ',' or ']' in array, got {got:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        // Surrogates (emitted by no writer of ours) decay
                        // to the replacement character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    got => return Err(format!("bad escape {got:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let mut text = String::new();
        if self.peek() == Some('-') {
            text.push(self.next().unwrap());
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || "+-.eE".contains(c)) {
            text.push(self.next().unwrap());
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Json::Str("Aé".to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nulL").is_err());
    }

    #[test]
    fn roundtrips_our_own_chrome_output() {
        use crate::chrome::chrome_trace;
        use crate::span::{Span, SpanId, TraceId};
        use haocl_sim::{Phase, SimTime};

        let spans = [Span::new(
            SpanId(1),
            TraceId(1),
            None,
            "enqueue \"q\"",
            Phase::Compute,
            "host",
            SimTime::ZERO,
            SimTime::from_nanos(1_500),
        )
        .attr("note", "line1\nline2")];
        let doc = parse(&chrome_trace(&spans)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let span_ev = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert_eq!(span_ev.get("name").unwrap().as_str(), Some("enqueue \"q\""));
        assert_eq!(
            span_ev.get("args").unwrap().get("note").unwrap().as_str(),
            Some("line1\nline2")
        );
    }
}
