//! Observability for the HaoCL runtime.
//!
//! The paper's evaluation lives on breakdowns — Fig. 3 decomposes runtime
//! into data-create / data-transfer / compute, Fig. 2 plots scaling — but
//! a production-scale runtime needs to answer the per-operation question:
//! *where did this kernel run, why, and where did the time go?* This
//! crate is that layer:
//!
//! * [`span`] — the span model: a [`TraceCtx`] (trace id + parent span
//!   id) is threaded host → scheduler → wire → fabric → NMP → VM, so one
//!   enqueue yields one causally-linked span tree across nodes, recorded
//!   into a [`Recorder`] in **virtual time**.
//! * [`chrome`] — exports the span stream as a Chrome trace-event
//!   `trace.json` loadable in `chrome://tracing` / Perfetto.
//! * [`metrics`] — a Prometheus-text [`Registry`] of counters, gauges and
//!   virtual-time histograms (per-kernel latency, bytes per plane, batch
//!   coalescing sizes, …).
//! * [`audit`] — the scheduler decision [`AuditLog`]: candidates,
//!   predictions, winner, reason, for every placement.
//! * [`replay`] + the `haocl-trace` bin — re-reads a recorded trace and
//!   prints the per-phase / per-node breakdown, superseding the Fig. 3
//!   `Tracer` printout.
//!
//! Everything is deterministic (sorted rendering, virtual clocks, no
//! wall-time reads) and free when disabled: a single relaxed atomic load
//! gates every record call.

pub mod audit;
pub mod chrome;
pub mod json;
pub mod metrics;
pub mod replay;
pub mod span;
pub mod top;

pub use audit::{
    AuditLog, CandidateInfo, FusionDecision, PlacementAudit, PredictionSource, DEFAULT_TENANT,
};
pub use chrome::chrome_trace;
pub use metrics::{Registry, LATENCY_BUCKETS_NANOS, SIZE_BUCKETS};
pub use replay::{orphan_ids, parse_chrome_trace, render_breakdown, ReplaySpan};
pub use span::{
    is_connected_tree, orphans, phase_from_name, roots, Recorder, Span, SpanId, TraceCtx, TraceId,
};
pub use top::FleetSnapshot;

/// Canonical metric names, shared by every instrumented crate.
pub mod names {
    /// Histogram: virtual ns from enqueue to completion, per kernel and
    /// device kind.
    pub const KERNEL_LATENCY: &str = "haocl_kernel_latency_nanos";
    /// Counter: kernel-launch round trips completed, per node —
    /// wall clock, not the virtual model (the `haocl-top` requests/sec
    /// column divides this by [`WALL_NANOS`]).
    pub const WALL_REQUESTS: &str = "haocl_wall_requests_total";
    /// Counter: wall-clock (monotonic host) nanoseconds spent waiting
    /// for kernel-launch round trips, per node.
    pub const WALL_NANOS: &str = "haocl_wall_nanos_total";
    /// Counter: payload bytes moved per node and plane.
    pub const PLANE_BYTES: &str = "haocl_plane_bytes_total";
    /// Counter: frames sent per node and plane.
    pub const PLANE_FRAMES: &str = "haocl_plane_frames_total";
    /// Histogram: requests coalesced per control-plane frame.
    pub const BATCH_SIZE: &str = "haocl_batch_coalesced_requests";
    /// Gauge: host-side queue depth per device at last sample, labelled
    /// with the device index and its hosting node's name.
    pub const QUEUE_DEPTH: &str = "haocl_queue_depth";
    /// Counter: link/plane failures observed by the host runtime.
    pub const LINK_FAILURES: &str = "haocl_link_failures_total";
    /// Counter: scheduler placements, per kernel and winning device kind.
    pub const PLACEMENTS: &str = "haocl_placements_total";
    /// Counter: profile-db seeds first displaced by observed runs.
    pub const SEED_DISPLACED: &str = "haocl_profile_seed_displaced_total";
    /// Counter: frames carried by the fabric, per link endpoint.
    pub const FABRIC_FRAMES: &str = "haocl_fabric_frames_total";
    /// Counter: bytes charged on the fabric (virtual wire bytes).
    pub const FABRIC_BYTES: &str = "haocl_fabric_bytes_total";
    /// Counter: request retransmissions by the host runtime, per node.
    pub const RETRIES: &str = "haocl_retries_total";
    /// Counter: node failovers performed by the host runtime, labelled
    /// with the failed and surviving node names.
    pub const FAILOVERS: &str = "haocl_failovers_total";
    /// Counter: responses served from a node's at-most-once request
    /// journal instead of re-executing, per node.
    pub const DEDUP_HITS: &str = "haocl_dedup_hits_total";
    /// Counter: scheduler quarantine decisions, per node.
    pub const QUARANTINES: &str = "haocl_quarantines_total";
    /// Counter: buffer-content bytes moved by the data plane, labelled
    /// by `path` ([`PATH_HOST_RELAY`] or [`PATH_PEER`]).
    pub const DATAPLANE_BYTES: &str = "haocl_dataplane_bytes_total";
    /// Counter: host shadow refreshes avoided by direct peer transfers.
    pub const SHADOW_REFRESHES_AVOIDED: &str = "haocl_shadow_refreshes_avoided_total";
    /// Counter: buffer releases that could not reach the owning node.
    pub const BUFFER_RELEASE_FAILED: &str = "haocl_buffer_release_failed_total";
    /// `path` label value: bytes relayed through the host shadow.
    pub const PATH_HOST_RELAY: &str = "host_relay";
    /// `path` label value: bytes shipped directly between NMPs.
    pub const PATH_PEER: &str = "peer";
    /// Counter: launches completed through the serving plane, per
    /// tenant.
    pub const TENANT_LAUNCHES: &str = "haocl_tenant_launches_total";
    /// Counter: virtual compute nanoseconds consumed, per tenant (the
    /// quantity fair-share ratios are measured over).
    pub const TENANT_COMPUTE_NANOS: &str = "haocl_tenant_compute_nanos_total";
    /// Counter: submissions shed by admission control, per tenant and
    /// `reason` (`queue_full` / `memory_quota` / `compute_budget`).
    pub const TENANT_SHED: &str = "haocl_tenant_shed_total";
    /// Gauge: device-memory bytes currently charged, per tenant.
    pub const TENANT_MEM_BYTES: &str = "haocl_tenant_mem_bytes";
    /// Gauge: pending launches queued in the serving plane, per tenant.
    pub const TENANT_QUEUE_DEPTH: &str = "haocl_tenant_queue_depth";
    /// Counter: compute-budget throttle transitions, per tenant.
    pub const TENANT_THROTTLES: &str = "haocl_tenant_throttles_total";
    /// Counter: fused dispatches issued (each covers ≥ 2 kernels).
    pub const FUSED_LAUNCHES: &str = "haocl_fused_launches_total";
    /// Counter: wire launch commands saved by fusion (kernels folded
    /// into a lead dispatch instead of getting their own command).
    pub const FUSION_COMMANDS_SAVED: &str = "haocl_fusion_commands_saved_total";
    /// Gauge: the drift detector's verdict per node — `0` healthy,
    /// `1` degraded (advisory), `2` quarantined (hard).
    pub const DEVICE_HEALTH: &str = "haocl_device_health";
    /// Counter: profile-db observations that recalibrated an
    /// already-warm `(kernel, device class)` estimate.
    pub const PROFILE_RECALIBRATIONS: &str = "haocl_profile_recalibrations_total";
    /// Counter: placements where a degraded candidate was on offer but a
    /// healthy device won, labelled with the avoided node.
    pub const DEGRADED_PLACEMENTS_AVOIDED: &str = "haocl_degraded_placements_avoided_total";
    /// Gauge: compute-currency exchange rate per device class, in
    /// thousandths of the base class's time unit (milli-units, since
    /// gauges are integral).
    pub const CURRENCY_RATE: &str = "haocl_compute_currency_rate_milli";
    /// Gauge: a node's membership state — `0` joining, `1` active,
    /// `2` draining, `3` departed.
    pub const NODE_STATE: &str = "haocl_node_state";
    /// Counter: autoscaler scale actions, labelled by `direction`
    /// (`up` / `down`).
    pub const AUTOSCALE_EVENTS: &str = "haocl_autoscale_events_total";
}

/// The bundle every instrumented layer shares: one span [`Recorder`], one
/// metrics [`Registry`], one scheduler [`AuditLog`]. The platform owns an
/// `Arc<Hub>` and hands clones down to the host runtime and scheduler.
#[derive(Debug, Default)]
pub struct Hub {
    /// Span sink.
    pub recorder: Recorder,
    /// Metrics registry.
    pub metrics: Registry,
    /// Scheduler decision log.
    pub audit: AuditLog,
}

impl Hub {
    /// Creates a disabled hub (metrics and audit still collect; only span
    /// recording is gated).
    pub fn new() -> Hub {
        Hub::default()
    }

    /// Whether span recording is on.
    pub fn enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// Enables or disables span recording.
    pub fn set_enabled(&self, on: bool) {
        self.recorder.set_enabled(on);
    }
}
