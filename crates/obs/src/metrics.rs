//! Prometheus-text metrics in virtual time.
//!
//! A [`Registry`] holds counters, gauges and histograms keyed by metric
//! name plus a sorted label set, and renders them in the Prometheus text
//! exposition format. Histograms bucket **virtual-time** values (latency
//! metrics use nanosecond bounds); there is no scrape loop — the registry
//! is rendered once at the end of a run, matching the simulation's
//! batch-oriented lifecycle.
//!
//! Rendering is deterministic: metric families and label sets are emitted
//! in lexicographic order.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use haocl_sim::SimDuration;

/// Default histogram bounds for virtual-time latencies, in nanoseconds
/// (1µs … 10s, roughly log-spaced).
pub const LATENCY_BUCKETS_NANOS: [u64; 10] = [
    1_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Default histogram bounds for small cardinalities (batch sizes, queue
/// depths).
pub const SIZE_BUCKETS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// A label set in canonical (sorted-by-key) order.
type Labels = Vec<(String, String)>;

fn canon(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v
}

fn render_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    // Per the exposition format, label values escape backslash, double
    // quote and line feed (in that order, so the escapes themselves
    // survive).
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            format!(
                "{k}=\"{}\"",
                v.replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            )
        })
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

#[derive(Debug, Clone)]
struct Hist {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u128,
    count: u64,
}

impl Hist {
    fn new(bounds: &[u64]) -> Hist {
        Hist {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            sum: 0,
            count: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        for (i, b) in self.bounds.iter().enumerate() {
            if value <= *b {
                self.counts[i] += 1;
            }
        }
        self.sum += u128::from(value);
        self.count += 1;
    }
}

/// A deterministic, thread-safe metrics registry.
///
/// # Examples
///
/// ```
/// use haocl_obs::Registry;
///
/// let m = Registry::new();
/// m.inc_counter("haocl_frames_total", &[("plane", "control")], 3);
/// m.observe_nanos("haocl_kernel_latency_nanos", &[("kernel", "mm")], 42_000);
/// let text = m.render();
/// assert!(text.contains("haocl_frames_total{plane=\"control\"} 3"));
/// assert!(text.contains("haocl_kernel_latency_nanos_count{kernel=\"mm\"} 1"));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, BTreeMap<Labels, u64>>>,
    gauges: Mutex<BTreeMap<String, BTreeMap<Labels, i64>>>,
    histograms: Mutex<BTreeMap<String, BTreeMap<Labels, Hist>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `by` to a counter.
    pub fn inc_counter(&self, name: &str, labels: &[(&str, &str)], by: u64) {
        *self
            .counters
            .lock()
            .entry(name.to_string())
            .or_default()
            .entry(canon(labels))
            .or_insert(0) += by;
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .lock()
            .get(name)
            .and_then(|m| m.get(&canon(labels)))
            .copied()
            .unwrap_or(0)
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.gauges
            .lock()
            .entry(name.to_string())
            .or_default()
            .insert(canon(labels), value);
    }

    /// Records a nanosecond value into a histogram with
    /// [`LATENCY_BUCKETS_NANOS`] bounds.
    pub fn observe_nanos(&self, name: &str, labels: &[(&str, &str)], nanos: u64) {
        self.observe_with_buckets(name, labels, nanos, &LATENCY_BUCKETS_NANOS);
    }

    /// Records a virtual duration into a latency histogram.
    pub fn observe_duration(&self, name: &str, labels: &[(&str, &str)], dur: SimDuration) {
        self.observe_nanos(name, labels, dur.as_nanos());
    }

    /// Records a value into a histogram with explicit bucket bounds.
    /// Bounds are fixed by the first observation of each series.
    pub fn observe_with_buckets(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        value: u64,
        bounds: &[u64],
    ) {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .entry(canon(labels))
            .or_insert_with(|| Hist::new(bounds))
            .observe(value);
    }

    /// Total observation count of a histogram series (zero if absent).
    pub fn histogram_count(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.histograms
            .lock()
            .get(name)
            .and_then(|m| m.get(&canon(labels)))
            .map(|h| h.count)
            .unwrap_or(0)
    }

    /// Renders every family in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, series) in self.counters.lock().iter() {
            out.push_str(&format!("# TYPE {name} counter\n"));
            for (labels, value) in series {
                out.push_str(&format!("{name}{} {value}\n", render_labels(labels, None)));
            }
        }
        for (name, series) in self.gauges.lock().iter() {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            for (labels, value) in series {
                out.push_str(&format!("{name}{} {value}\n", render_labels(labels, None)));
            }
        }
        for (name, series) in self.histograms.lock().iter() {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (labels, h) in series {
                for (bound, cumulative) in h.bounds.iter().zip(h.counts.iter()) {
                    out.push_str(&format!(
                        "{name}_bucket{} {cumulative}\n",
                        render_labels(labels, Some(("le", &bound.to_string())))
                    ));
                }
                out.push_str(&format!(
                    "{name}_bucket{} {}\n",
                    render_labels(labels, Some(("le", "+Inf"))),
                    h.count
                ));
                out.push_str(&format!(
                    "{name}_sum{} {}\n",
                    render_labels(labels, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{name}_count{} {}\n",
                    render_labels(labels, None),
                    h.count
                ));
            }
        }
        out
    }

    /// Drops every recorded series.
    pub fn clear(&self) {
        self.counters.lock().clear();
        self.gauges.lock().clear();
        self.histograms.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let m = Registry::new();
        m.inc_counter("c", &[("a", "1")], 2);
        m.inc_counter("c", &[("a", "1")], 3);
        m.inc_counter("c", &[("a", "2")], 1);
        assert_eq!(m.counter_value("c", &[("a", "1")]), 5);
        assert_eq!(m.counter_value("c", &[("a", "2")]), 1);
        assert_eq!(m.counter_value("c", &[("a", "9")]), 0);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Registry::new();
        m.observe_with_buckets("h", &[], 1, &[1, 10, 100]);
        m.observe_with_buckets("h", &[], 5, &[1, 10, 100]);
        m.observe_with_buckets("h", &[], 1_000, &[1, 10, 100]);
        let text = m.render();
        assert!(text.contains("h_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("h_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("h_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("h_sum 1006\n"));
        assert!(text.contains("h_count 3\n"));
    }

    #[test]
    fn render_is_sorted_and_label_values_escaped() {
        let m = Registry::new();
        m.inc_counter("z_metric", &[], 1);
        m.inc_counter("a_metric", &[("k", "quo\"te")], 1);
        m.set_gauge("depth", &[("node", "n0")], 4);
        let text = m.render();
        let a = text.find("a_metric").unwrap();
        let z = text.find("z_metric").unwrap();
        assert!(a < z, "families sorted: {text}");
        assert!(text.contains("k=\"quo\\\"te\""));
        assert!(text.contains("# TYPE depth gauge\ndepth{node=\"n0\"} 4\n"));
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        let m = Registry::new();
        m.inc_counter("c", &[("k", "line1\nline2")], 1);
        m.inc_counter("c", &[("k", "back\\slash \"quoted\"")], 1);
        m.inc_counter("c", &[("k", "\\n")], 1);
        let text = m.render();
        // A raw newline inside a label value would split the sample line
        // and corrupt the whole exposition; it must render as \n.
        assert!(text.contains("c{k=\"line1\\nline2\"} 1"), "{text}");
        assert!(
            text.contains("c{k=\"back\\\\slash \\\"quoted\\\"\"} 1"),
            "{text}"
        );
        // A literal backslash-n survives distinct from a real newline.
        assert!(text.contains("c{k=\"\\\\n\"} 1"), "{text}");
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.ends_with(" 1"),
                "unterminated sample line: {line:?}"
            );
        }
    }
}
