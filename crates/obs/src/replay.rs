//! Replay a recorded Chrome trace into text breakdowns.
//!
//! This is the library half of the `haocl-trace` bin: it parses a
//! `trace.json` produced by [`chrome_trace`](crate::chrome::chrome_trace)
//! back into spans, validates the causal structure (orphan detection),
//! and renders the per-phase / per-node decomposition that supersedes the
//! old Fig. 3 `Tracer` printout.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::json::{parse, Json};

/// A span re-read from a trace file. Ids are kept as strings: node-derived
/// span ids use the high bit of a `u64`, which does not survive JSON's
/// doubles (which is why the writer emits them as strings).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySpan {
    /// Span id.
    pub id: String,
    /// Parent span id, if any.
    pub parent: Option<String>,
    /// Trace the span belongs to.
    pub trace: String,
    /// Operation name.
    pub name: String,
    /// Breakdown category.
    pub category: String,
    /// Node (Chrome process) the span ran on.
    pub node: String,
    /// Start, in virtual nanoseconds.
    pub start_nanos: u64,
    /// Duration, in virtual nanoseconds.
    pub dur_nanos: u64,
}

/// Parses a Chrome trace-event document back into spans.
///
/// # Errors
///
/// Returns a message when the text is not valid JSON or lacks the
/// `traceEvents` array / per-event fields our exporter always writes.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ReplaySpan>, String> {
    let doc = parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;

    // Process-name metadata maps pid -> node name.
    let mut names: BTreeMap<u64, String> = BTreeMap::new();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) == Some("M")
            && ev.get("name").and_then(Json::as_str) == Some("process_name")
        {
            let pid = ev
                .get("pid")
                .and_then(Json::as_f64)
                .ok_or("M event without pid")? as u64;
            let name = ev
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .ok_or("process_name without args.name")?;
            names.insert(pid, name.to_string());
        }
    }

    let micros_to_nanos = |v: f64| (v * 1_000.0).round() as u64;
    let mut spans = Vec::new();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let field = |key: &str| {
            ev.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("X event missing {key}"))
        };
        let args = ev.get("args").ok_or("X event missing args")?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or("X event missing pid")? as u64;
        spans.push(ReplaySpan {
            id: args
                .get("id")
                .and_then(Json::as_str)
                .ok_or("X event missing args.id")?
                .to_string(),
            parent: args
                .get("parent")
                .and_then(Json::as_str)
                .map(str::to_string),
            trace: args
                .get("trace")
                .and_then(Json::as_str)
                .ok_or("X event missing args.trace")?
                .to_string(),
            name: field("name")?,
            category: field("cat")?,
            node: names
                .get(&pid)
                .cloned()
                .unwrap_or_else(|| format!("pid{pid}")),
            start_nanos: ev
                .get("ts")
                .and_then(Json::as_f64)
                .map(micros_to_nanos)
                .ok_or("X event missing ts")?,
            dur_nanos: ev
                .get("dur")
                .and_then(Json::as_f64)
                .map(micros_to_nanos)
                .ok_or("X event missing dur")?,
        });
    }
    Ok(spans)
}

/// Ids of spans whose parent id does not appear in the trace.
pub fn orphan_ids(spans: &[ReplaySpan]) -> Vec<String> {
    let ids: HashSet<&str> = spans.iter().map(|s| s.id.as_str()).collect();
    spans
        .iter()
        .filter(|s| s.parent.as_deref().is_some_and(|p| !ids.contains(p)))
        .map(|s| s.id.clone())
        .collect()
}

/// Category names in reporting order: the canonical Fig. 3 phases first,
/// then everything else alphabetically.
fn category_order(categories: impl IntoIterator<Item = String>) -> Vec<String> {
    const CANONICAL: [&str; 4] = ["Init", "DataCreate", "DataTransfer", "Compute"];
    let set: BTreeSet<String> = categories.into_iter().collect();
    let mut out: Vec<String> = CANONICAL
        .iter()
        .filter(|c| set.contains(**c))
        .map(|c| c.to_string())
        .collect();
    out.extend(set.into_iter().filter(|c| !CANONICAL.contains(&c.as_str())));
    out
}

fn fmt_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the per-phase / per-node breakdown of a replayed trace — the
/// `haocl-trace` output that supersedes the Fig. 3 `Tracer` printout.
pub fn render_breakdown(spans: &[ReplaySpan]) -> String {
    let traces: BTreeSet<&str> = spans.iter().map(|s| s.trace.as_str()).collect();
    let mut out = format!(
        "{} span(s), {} trace(s), {} node(s)\n",
        spans.len(),
        traces.len(),
        spans
            .iter()
            .map(|s| s.node.as_str())
            .collect::<BTreeSet<_>>()
            .len()
    );

    // Per node, per category: total time and span count.
    let mut per_node: BTreeMap<&str, BTreeMap<String, (u64, u64)>> = BTreeMap::new();
    let mut per_cat: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        let slot = per_node
            .entry(s.node.as_str())
            .or_default()
            .entry(s.category.clone())
            .or_insert((0, 0));
        slot.0 += s.dur_nanos;
        slot.1 += 1;
        *per_cat.entry(s.category.clone()).or_insert(0) += s.dur_nanos;
    }

    for (node, cats) in &per_node {
        out.push_str(&format!("node {node}\n"));
        for cat in category_order(cats.keys().cloned()) {
            let (total, count) = cats[&cat];
            out.push_str(&format!(
                "  {cat:<14} {:>12}  ({count} span{})\n",
                fmt_nanos(total),
                if count == 1 { "" } else { "s" }
            ));
        }
    }

    let line: Vec<String> = category_order(per_cat.keys().cloned())
        .into_iter()
        .map(|cat| format!("{cat}={}", fmt_nanos(per_cat[&cat])))
        .collect();
    out.push_str(&format!("total {}\n", line.join(" ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::chrome_trace;
    use crate::span::{Span, SpanId, TraceId};
    use haocl_sim::{Phase, SimTime};

    fn sample() -> Vec<ReplaySpan> {
        let spans = vec![
            Span::new(
                SpanId(1),
                TraceId(1),
                None,
                "enqueue mm",
                Phase::Compute,
                "host",
                SimTime::ZERO,
                SimTime::from_nanos(10_000),
            ),
            Span::new(
                SpanId(2),
                TraceId(1),
                Some(SpanId(1)),
                "fabric.request",
                Phase::DataTransfer,
                "fabric:node0",
                SimTime::from_nanos(100),
                SimTime::from_nanos(1_100),
            ),
            Span::new(
                SpanId::derive(9, 0),
                TraceId(1),
                Some(SpanId(1)),
                "nmp.dispatch",
                Phase::new("Dispatch"),
                "node0",
                SimTime::from_nanos(1_100),
                SimTime::from_nanos(9_000),
            ),
        ];
        parse_chrome_trace(&chrome_trace(&spans)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_ids_times_and_nodes() {
        let replayed = sample();
        assert_eq!(replayed.len(), 3);
        let big = replayed.iter().find(|s| s.name == "nmp.dispatch").unwrap();
        // The node-derived id survives exactly (would be mangled as f64).
        assert_eq!(big.id, SpanId::derive(9, 0).0.to_string());
        assert_eq!(big.parent.as_deref(), Some("1"));
        assert_eq!(big.node, "node0");
        assert_eq!(big.start_nanos, 1_100);
        assert_eq!(big.dur_nanos, 7_900);
        assert!(orphan_ids(&replayed).is_empty());
    }

    #[test]
    fn orphans_are_reported() {
        let mut replayed = sample();
        replayed.retain(|s| s.name != "enqueue mm");
        let orphans = orphan_ids(&replayed);
        assert_eq!(orphans.len(), 2);
    }

    #[test]
    fn breakdown_lists_canonical_phases_first_then_extras() {
        let text = render_breakdown(&sample());
        assert!(text.contains("node host"));
        assert!(text.contains("node node0"));
        let compute = text.find("Compute=").unwrap();
        let dispatch = text.find("Dispatch=").unwrap();
        assert!(compute < dispatch, "canonical before extras: {text}");
        assert!(text.contains("total DataTransfer=1.000us Compute=10.000us Dispatch=7.900us"));
    }
}
