//! The span model: causally-linked intervals of virtual time.
//!
//! One `enqueue_nd_range` on a remote device yields a small *span tree*
//! crossing three execution domains — the host API call, the fabric hops,
//! and the NMP dispatch / VM run on the device node. Every span carries
//! the [`TraceId`] of the operation it belongs to and (except the root)
//! the [`SpanId`] of its parent, so the tree can be reassembled from a
//! flat stream regardless of which thread recorded which span.
//!
//! All timestamps are **virtual time** ([`SimTime`]): spans are recorded
//! complete (start and end known) because the simulation's observation
//! ordering means an operation's cost is only learned when its response is
//! claimed. There is no "span guard" RAII type on purpose.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use haocl_sim::{Phase, SimTime};

/// Identifies one logical operation (e.g. one kernel enqueue) end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace{}", self.0)
    }
}

/// Identifies one span within a trace.
///
/// Host-side spans get sequential ids from the [`Recorder`]; node-side
/// spans are minted with [`SpanId::derive`] from the request's correlation
/// token, so the two id spaces never collide even though the NMP cannot
/// see the host's counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Bit marking node-derived span ids (the host counter stays below it).
    const NODE_BIT: u64 = 1 << 63;

    /// Mints the `seq`-th span id for the request with correlation token
    /// `request_id`. Up to 16 spans per request.
    ///
    /// # Panics
    ///
    /// Panics if `seq >= 16`.
    pub fn derive(request_id: u64, seq: u64) -> SpanId {
        assert!(seq < 16, "at most 16 derived spans per request");
        SpanId(Self::NODE_BIT | (request_id << 4) | seq)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span{}", self.0)
    }
}

/// The propagation context threaded through the call path: which trace the
/// current operation belongs to and which span is its direct parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The operation's trace.
    pub trace: TraceId,
    /// The span the next child should hang off.
    pub parent: SpanId,
}

impl TraceCtx {
    /// A context rooted at `parent` within `trace`.
    pub fn new(trace: TraceId, parent: SpanId) -> TraceCtx {
        TraceCtx { trace, parent }
    }

    /// The same trace, re-rooted at a different parent span.
    pub fn child_of(self, parent: SpanId) -> TraceCtx {
        TraceCtx { parent, ..self }
    }
}

/// One completed interval of virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Unique id within the recording.
    pub id: SpanId,
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// Parent span, `None` for a trace root.
    pub parent: Option<SpanId>,
    /// Human-readable operation name (e.g. `enqueue_nd_range mm_tile`).
    pub name: String,
    /// Breakdown category; feeds the Fig. 3 phase decomposition.
    pub category: Phase,
    /// Where the span executed (`host`, a node name, `fabric:<node>`).
    pub node: String,
    /// Interval start, virtual time.
    pub start: SimTime,
    /// Interval end, virtual time.
    pub end: SimTime,
    /// Free-form key/value annotations (instruction counts, byte counts…).
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// Creates a span with no attributes.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: SpanId,
        trace: TraceId,
        parent: Option<SpanId>,
        name: impl Into<String>,
        category: Phase,
        node: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) -> Span {
        Span {
            id,
            trace,
            parent,
            name: name.into(),
            category,
            node: node.into(),
            start,
            end,
            attrs: Vec::new(),
        }
    }

    /// Adds an annotation (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Span {
        self.attrs.push((key.into(), value.into()));
        self
    }
}

/// Thread-safe sink for completed spans.
///
/// Recording is gated on a relaxed atomic flag so a disabled recorder
/// costs one load per call site — the overhead stance is "free when off,
/// cheap when on" (spans are plain pushes under a mutex; there is no I/O
/// until export).
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    spans: Mutex<Vec<Span>>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// Creates a disabled recorder (counters start at 1; 0 is "null" —
    /// a zero trace id on the wire means "untraced").
    pub fn new() -> Recorder {
        Recorder {
            enabled: AtomicBool::new(false),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Whether spans are being collected.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Allocates a fresh trace id.
    pub fn new_trace(&self) -> TraceId {
        TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates a span id without recording anything yet — call sites
    /// need the id up front to propagate as a parent before the span's
    /// end time is known.
    pub fn next_span_id(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// Records a completed span (no-op while disabled).
    pub fn record(&self, span: Span) {
        if self.enabled() {
            self.spans.lock().push(span);
        }
    }

    /// Snapshot of everything recorded so far.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().clone()
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }

    /// Drops all recorded spans (keeps id counters monotonic).
    pub fn clear(&self) {
        self.spans.lock().clear();
    }
}

/// Maps a wire category string back onto a [`Phase`].
///
/// Phase names are `&'static str`, so arbitrary strings cannot be
/// interned — the categories that cross the network are a closed set,
/// and anything unexpected collapses to `"Other"` rather than being
/// dropped.
pub fn phase_from_name(name: &str) -> Phase {
    match name {
        "Init" => Phase::Init,
        "DataCreate" => Phase::DataCreate,
        "DataTransfer" => Phase::DataTransfer,
        "Compute" => Phase::Compute,
        "Dispatch" => Phase::new("Dispatch"),
        "Sched" => Phase::new("Sched"),
        _ => Phase::new("Other"),
    }
}

/// Ids of spans whose parent is set but absent from `spans`.
pub fn orphans(spans: &[Span]) -> Vec<SpanId> {
    let ids: HashSet<SpanId> = spans.iter().map(|s| s.id).collect();
    spans
        .iter()
        .filter(|s| s.parent.is_some_and(|p| !ids.contains(&p)))
        .map(|s| s.id)
        .collect()
}

/// Ids of spans with no parent (trace roots).
pub fn roots(spans: &[Span]) -> Vec<SpanId> {
    spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.id)
        .collect()
}

/// Whether `spans` form one connected tree: a single trace, a single
/// root, unique ids, no orphans, and every span reachable from the root.
pub fn is_connected_tree(spans: &[Span]) -> bool {
    if spans.is_empty() {
        return false;
    }
    let trace = spans[0].trace;
    if spans.iter().any(|s| s.trace != trace) {
        return false;
    }
    let mut ids = HashSet::new();
    if !spans.iter().all(|s| ids.insert(s.id)) {
        return false;
    }
    let root_ids = roots(spans);
    if root_ids.len() != 1 || !orphans(spans).is_empty() {
        return false;
    }
    // Walk down from the root; with unique ids and no orphans the only
    // remaining failure mode is a cycle among non-root spans.
    let mut children: HashMap<SpanId, Vec<SpanId>> = HashMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            children.entry(p).or_default().push(s.id);
        }
    }
    let mut seen = HashSet::new();
    let mut stack = vec![root_ids[0]];
    while let Some(id) = stack.pop() {
        if seen.insert(id) {
            if let Some(kids) = children.get(&id) {
                stack.extend(kids.iter().copied());
            }
        }
    }
    seen.len() == spans.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>) -> Span {
        Span::new(
            SpanId(id),
            TraceId(1),
            parent.map(SpanId),
            format!("s{id}"),
            Phase::Compute,
            "host",
            SimTime::ZERO,
            SimTime::from_nanos(10),
        )
    }

    #[test]
    fn recorder_gates_on_enabled() {
        let r = Recorder::new();
        r.record(span(1, None));
        assert!(r.is_empty(), "disabled recorder drops spans");
        r.set_enabled(true);
        r.record(span(1, None));
        assert_eq!(r.len(), 1);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn ids_are_unique_and_node_derived_ids_do_not_collide() {
        let r = Recorder::new();
        let a = r.next_span_id();
        let b = r.next_span_id();
        assert_ne!(a, b);
        let d0 = SpanId::derive(a.0, 0);
        let d1 = SpanId::derive(a.0, 1);
        assert_ne!(d0, d1);
        assert_ne!(d0, a);
        assert_ne!(d0, b);
    }

    #[test]
    fn connected_tree_detects_orphans_and_forests() {
        let tree = vec![span(1, None), span(2, Some(1)), span(3, Some(2))];
        assert!(is_connected_tree(&tree));
        assert!(orphans(&tree).is_empty());
        assert_eq!(roots(&tree), vec![SpanId(1)]);

        let orphaned = vec![span(1, None), span(3, Some(99))];
        assert_eq!(orphans(&orphaned), vec![SpanId(3)]);
        assert!(!is_connected_tree(&orphaned));

        let forest = vec![span(1, None), span(2, None)];
        assert!(!is_connected_tree(&forest));

        assert!(!is_connected_tree(&[]));
    }

    #[test]
    fn ctx_rebasing_keeps_trace() {
        let ctx = TraceCtx::new(TraceId(7), SpanId(1));
        let child = ctx.child_of(SpanId(2));
        assert_eq!(child.trace, TraceId(7));
        assert_eq!(child.parent, SpanId(2));
    }
}
