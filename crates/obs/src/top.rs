//! Fleet health dashboard (`haocl-top`).
//!
//! Consumes the two text artifacts every run can already export — the
//! Prometheus metrics rendering and the scheduler audit log — and folds
//! them into one per-node health/placement table: queue depth, mean
//! observed latency, compute-currency rate, and the drift detector's
//! verdict. The `haocl-top` binary renders it for terminals; `--report
//! json` emits the same snapshot as a machine-readable CI artifact.

use std::collections::BTreeMap;

/// One parsed metric sample: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric (family) name, including `_sum`/`_count`/`_bucket`
    /// suffixes for histogram series.
    pub name: String,
    /// Label set, unescaped.
    pub labels: BTreeMap<String, String>,
    /// Sample value.
    pub value: f64,
}

/// Parses a Prometheus text exposition into samples, undoing the label
/// value escaping (`\\`, `\"`, `\n`) the renderer applies.
pub fn parse_metrics(text: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(sample) = parse_sample(line) else {
            continue;
        };
        out.push(sample);
    }
    out
}

fn parse_sample(line: &str) -> Option<Sample> {
    let (head, value) = line.rsplit_once(' ')?;
    let value: f64 = value.parse().ok()?;
    let (name, labels) = match head.find('{') {
        Some(brace) => {
            let name = &head[..brace];
            let body = head[brace + 1..].strip_suffix('}')?;
            (name, parse_labels(body)?)
        }
        None => (head, BTreeMap::new()),
    };
    Some(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parses `k="v",k2="v2"` respecting escapes inside quoted values.
fn parse_labels(body: &str) -> Option<BTreeMap<String, String>> {
    let mut labels = BTreeMap::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find("=\"")?;
        let key = rest[..eq].trim_start_matches(',').trim().to_string();
        let mut value = String::new();
        let mut chars = rest[eq + 2..].char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return None,
                },
                '"' => {
                    consumed = Some(eq + 2 + i + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        labels.insert(key, value);
        rest = &rest[consumed?..];
    }
    Some(labels)
}

/// Extracts `key=value` from one audit line (value runs to the next
/// space; audit keys of interest all precede the quoted `reason=`).
fn audit_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!(" {key}=");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    Some(rest.split_whitespace().next().unwrap_or(rest))
}

/// One node's row in the dashboard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeRow {
    /// Node name (`node0`, …).
    pub node: String,
    /// Device class placed on this node (from the audit log), upper-case.
    pub kind: String,
    /// Health verdict: `healthy` / `degraded` / `quarantined` /
    /// `unknown` (no gauge exported).
    pub health: String,
    /// Membership state: `joining` / `active` / `draining` / `departed`
    /// / `unknown` — from the `policy=membership` audit records (last
    /// transition wins), falling back to the `haocl_node_state` gauge
    /// for transitions that predate tracing (e.g. the founding join).
    pub state: String,
    /// Placements won by this node.
    pub placements: u64,
    /// Placements won *while flagged degraded* (the advisory verdict in
    /// the audit's `health=` column).
    pub degraded_wins: u64,
    /// Times a healthy device won while this node's degraded candidate
    /// was on offer.
    pub avoided: u64,
    /// Host-side queue depth at last sample (the node-labelled device
    /// gauge), absent when the run never sampled it.
    pub queue_depth: Option<i64>,
    /// Mean observed kernel latency of this node's device class, virtual
    /// nanoseconds.
    pub mean_latency_nanos: Option<f64>,
    /// Compute-currency exchange rate of this node's device class
    /// (multiples of the base class's time).
    pub currency_rate: Option<f64>,
    /// Wall-clock launch round trips per second on this node —
    /// `haocl_wall_requests_total / haocl_wall_nanos_total`, real time
    /// rather than the virtual model. Absent until the node completes a
    /// launch.
    pub wall_rps: Option<f64>,
}

/// The parsed fleet state `haocl-top` renders.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetSnapshot {
    /// Per-node rows, ascending by node name.
    pub nodes: Vec<NodeRow>,
    /// Warm-profile recalibrations performed.
    pub recalibrations: u64,
    /// Audit placements parsed (excludes node-health, membership and
    /// autoscale rows).
    pub total_placements: u64,
    /// Drift verdict transitions recorded in the audit log.
    pub drift_transitions: u64,
    /// Autoscaler scale decisions recorded in the audit log.
    pub autoscale_events: u64,
}

impl FleetSnapshot {
    /// Builds the snapshot from a Prometheus metrics rendering and a
    /// scheduler audit-log rendering.
    pub fn from_text(metrics: &str, audit: &str) -> FleetSnapshot {
        let samples = parse_metrics(metrics);
        let find = |name: &str, key: &str, val: &str| -> Option<f64> {
            samples
                .iter()
                .find(|s| s.name == name && s.labels.get(key).map(String::as_str) == Some(val))
                .map(|s| s.value)
        };
        let mut rows: BTreeMap<String, NodeRow> = BTreeMap::new();
        let row = |node: &str, rows: &mut BTreeMap<String, NodeRow>| {
            rows.entry(node.to_string()).or_insert_with(|| NodeRow {
                node: node.to_string(),
                kind: "?".to_string(),
                health: "unknown".to_string(),
                state: "unknown".to_string(),
                ..NodeRow::default()
            });
        };
        // Membership baseline from the unconditional gauge; audit
        // transition rows (recorded only while tracing) override below.
        for s in samples
            .iter()
            .filter(|s| s.name == crate::names::NODE_STATE)
        {
            if let Some(node) = s.labels.get("node") {
                row(node, &mut rows);
                rows.get_mut(node).unwrap().state = match s.value as i64 {
                    0 => "joining",
                    1 => "active",
                    2 => "draining",
                    3 => "departed",
                    _ => "unknown",
                }
                .to_string();
            }
        }
        for s in samples
            .iter()
            .filter(|s| s.name == crate::names::DEVICE_HEALTH)
        {
            if let Some(node) = s.labels.get("node") {
                row(node, &mut rows);
                let r = rows.get_mut(node).unwrap();
                r.health = match s.value as i64 {
                    0 => "healthy",
                    1 => "degraded",
                    2 => "quarantined",
                    _ => "unknown",
                }
                .to_string();
            }
        }
        for s in samples
            .iter()
            .filter(|s| s.name == crate::names::DEGRADED_PLACEMENTS_AVOIDED)
        {
            if let Some(node) = s.labels.get("node") {
                row(node, &mut rows);
                rows.get_mut(node).unwrap().avoided = s.value as u64;
            }
        }
        let mut snapshot = FleetSnapshot {
            recalibrations: samples
                .iter()
                .find(|s| s.name == crate::names::PROFILE_RECALIBRATIONS)
                .map(|s| s.value)
                .unwrap_or(0.0) as u64,
            ..FleetSnapshot::default()
        };
        for line in audit.lines() {
            if !line.starts_with("place ") {
                continue;
            }
            if audit_field(line, "policy") == Some("drift") {
                snapshot.drift_transitions += 1;
                continue;
            }
            if audit_field(line, "policy") == Some("autoscale") {
                snapshot.autoscale_events += 1;
                continue;
            }
            let Some(chosen) = audit_field(line, "chosen") else {
                continue;
            };
            if audit_field(line, "policy") == Some("membership") {
                // `reason="state=<State> node=<name>"` transition rows:
                // the chosen column carries the node, later rows win.
                let state = audit_field(line, "reason")
                    .and_then(|r| r.trim_start_matches('"').strip_prefix("state="));
                if let (Some((node, _)), Some(state)) = (chosen.split_once('/'), state) {
                    row(node, &mut rows);
                    rows.get_mut(node).unwrap().state = state.to_lowercase();
                }
                continue;
            }
            snapshot.total_placements += 1;
            let (node, kind) = match chosen.split_once('/') {
                Some((node, kind)) => (node, Some(kind)),
                None => (chosen, None),
            };
            row(node, &mut rows);
            let r = rows.get_mut(node).unwrap();
            r.placements += 1;
            if let Some(kind) = kind {
                r.kind = kind.to_uppercase();
            }
            if audit_field(line, "health").is_some_and(|h| h.starts_with("degraded")) {
                r.degraded_wins += 1;
            }
        }
        // Per-class series join the rows through each node's device
        // class; the queue-depth gauge carries the node name directly.
        let mean_latency: BTreeMap<String, (f64, f64)> = {
            let mut acc: BTreeMap<String, (f64, f64)> = BTreeMap::new();
            for s in &samples {
                let suffix = if s.name == format!("{}_sum", crate::names::KERNEL_LATENCY) {
                    0
                } else if s.name == format!("{}_count", crate::names::KERNEL_LATENCY) {
                    1
                } else {
                    continue;
                };
                if let Some(kind) = s.labels.get("kind") {
                    let e = acc.entry(kind.to_uppercase()).or_insert((0.0, 0.0));
                    if suffix == 0 {
                        e.0 += s.value;
                    } else {
                        e.1 += s.value;
                    }
                }
            }
            acc
        };
        for r in rows.values_mut() {
            if let Some((sum, count)) = mean_latency.get(&r.kind) {
                if *count > 0.0 {
                    r.mean_latency_nanos = Some(sum / count);
                }
            }
            for s in samples
                .iter()
                .filter(|s| s.name == crate::names::CURRENCY_RATE)
            {
                if s.labels.get("kind").map(String::as_str) == Some(r.kind.as_str()) {
                    r.currency_rate = Some(s.value / 1000.0);
                }
            }
            r.queue_depth = find(crate::names::QUEUE_DEPTH, "node", &r.node).map(|v| v as i64);
            if let (Some(requests), Some(nanos)) = (
                find(crate::names::WALL_REQUESTS, "node", &r.node),
                find(crate::names::WALL_NANOS, "node", &r.node),
            ) {
                if nanos > 0.0 {
                    r.wall_rps = Some(requests / (nanos / 1e9));
                }
            }
        }
        snapshot.nodes = rows.into_values().collect();
        snapshot
    }

    /// Whether any node is currently flagged degraded or quarantined.
    pub fn any_unhealthy(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| n.health == "degraded" || n.health == "quarantined")
    }

    /// Renders the terminal dashboard.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "haocl-top — {} nodes, {} placements, {} recalibrations, {} drift transitions, \
             {} autoscale events\n",
            self.nodes.len(),
            self.total_placements,
            self.recalibrations,
            self.drift_transitions,
            self.autoscale_events
        ));
        out.push_str(&format!(
            "{:<8} {:<6} {:<12} {:<9} {:>6} {:>9} {:>8} {:>6} {:>14} {:>9} {:>9}\n",
            "NODE",
            "KIND",
            "HEALTH",
            "STATE",
            "PLACE",
            "DEGR.WIN",
            "AVOIDED",
            "QUEUE",
            "MEAN.LAT(ns)",
            "RATE",
            "WALL.RPS"
        ));
        for n in &self.nodes {
            out.push_str(&format!(
                "{:<8} {:<6} {:<12} {:<9} {:>6} {:>9} {:>8} {:>6} {:>14} {:>9} {:>9}\n",
                n.node,
                n.kind,
                n.health,
                n.state,
                n.placements,
                n.degraded_wins,
                n.avoided,
                n.queue_depth.map_or("-".into(), |v| v.to_string()),
                n.mean_latency_nanos
                    .map_or("-".into(), |v| format!("{v:.0}")),
                n.currency_rate.map_or("-".into(), |v| format!("x{v:.3}")),
                n.wall_rps.map_or("-".into(), |v| format!("{v:.0}")),
            ));
        }
        out
    }

    /// Renders the snapshot as a JSON report (CI artifact shape).
    pub fn to_json(&self) -> String {
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                format!(
                    "{{\"node\":{},\"kind\":{},\"health\":{},\"state\":{},\"placements\":{},\
                     \"degraded_wins\":{},\"avoided\":{},\"queue_depth\":{},\
                     \"mean_latency_nanos\":{},\"currency_rate\":{},\"wall_rps\":{}}}",
                    json_str(&n.node),
                    json_str(&n.kind),
                    json_str(&n.health),
                    json_str(&n.state),
                    n.placements,
                    n.degraded_wins,
                    n.avoided,
                    n.queue_depth.map_or("null".into(), |v| v.to_string()),
                    n.mean_latency_nanos
                        .map_or("null".into(), |v| format!("{v:.1}")),
                    n.currency_rate.map_or("null".into(), |v| format!("{v:.4}")),
                    n.wall_rps.map_or("null".into(), |v| format!("{v:.1}")),
                )
            })
            .collect();
        format!(
            "{{\"total_placements\":{},\"recalibrations\":{},\"drift_transitions\":{},\
             \"autoscale_events\":{},\"any_unhealthy\":{},\"nodes\":[{}]}}",
            self.total_placements,
            self.recalibrations,
            self.drift_transitions,
            self.autoscale_events,
            self.any_unhealthy(),
            nodes.join(",")
        )
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const METRICS: &str = "\
# TYPE haocl_compute_currency_rate_milli gauge
haocl_compute_currency_rate_milli{kind=\"CPU\"} 5500
haocl_compute_currency_rate_milli{kind=\"GPU\"} 1000
# TYPE haocl_degraded_placements_avoided_total counter
haocl_degraded_placements_avoided_total{node=\"node1\"} 7
# TYPE haocl_device_health gauge
haocl_device_health{node=\"node0\"} 0
haocl_device_health{node=\"node1\"} 1
# TYPE haocl_node_state gauge
haocl_node_state{node=\"node0\"} 1
haocl_node_state{node=\"node1\"} 1
# TYPE haocl_kernel_latency_nanos histogram
haocl_kernel_latency_nanos_bucket{kernel=\"mm\",kind=\"GPU\",le=\"+Inf\"} 2
haocl_kernel_latency_nanos_sum{kernel=\"mm\",kind=\"GPU\"} 3000
haocl_kernel_latency_nanos_count{kernel=\"mm\",kind=\"GPU\"} 2
# TYPE haocl_profile_recalibrations_total counter
haocl_profile_recalibrations_total 4
# TYPE haocl_queue_depth gauge
haocl_queue_depth{device=\"0\",node=\"node0\"} 3
";

    const AUDIT: &str = "\
place kernel=mm tenant=default policy=hetero-aware chosen=node0/Gpu health=ok fused=- reason=\"r\" candidates=[]
place kernel=mm tenant=default policy=hetero-aware chosen=node1/Gpu health=degraded(x2.00) fused=- reason=\"r\" candidates=[]
place kernel=<node-health> tenant=default policy=drift chosen=device1 health=- fused=- reason=\"node node1 degraded\" candidates=[]
place kernel=mm tenant=default policy=hetero-aware chosen=node0/Gpu health=ok fused=- reason=\"r\" candidates=[]
place kernel=<autoscale> tenant=default policy=autoscale chosen=device0 health=- fused=- reason=\"decision=up queue_depth=20\" candidates=[]
place kernel=<membership> tenant=default policy=membership chosen=node1/- health=- fused=- reason=\"state=Draining node=node1\" candidates=[]
";

    #[test]
    fn parses_escaped_label_values() {
        let samples = parse_metrics("m{k=\"a\\\\b\\\"c\\nd\"} 1\n");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].labels["k"], "a\\b\"c\nd");
    }

    #[test]
    fn snapshot_joins_metrics_and_audit_per_node() {
        let snap = FleetSnapshot::from_text(METRICS, AUDIT);
        assert_eq!(snap.total_placements, 3);
        assert_eq!(snap.recalibrations, 4);
        assert_eq!(snap.drift_transitions, 1);
        assert_eq!(snap.autoscale_events, 1);
        assert!(snap.any_unhealthy());
        assert_eq!(snap.nodes.len(), 2);
        let n0 = &snap.nodes[0];
        assert_eq!((n0.node.as_str(), n0.health.as_str()), ("node0", "healthy"));
        assert_eq!((n0.placements, n0.degraded_wins), (2, 0));
        assert_eq!(n0.state, "active");
        assert_eq!(n0.queue_depth, Some(3));
        assert_eq!(n0.mean_latency_nanos, Some(1500.0));
        assert_eq!(n0.currency_rate, Some(1.0));
        let n1 = &snap.nodes[1];
        assert_eq!(n1.health, "degraded");
        assert_eq!((n1.placements, n1.degraded_wins, n1.avoided), (1, 1, 7));
        // The audit transition row wins over the gauge baseline.
        assert_eq!(n1.state, "draining");
    }

    #[test]
    fn wall_rps_divides_requests_by_wall_seconds() {
        let metrics = "\
# TYPE haocl_node_state gauge
haocl_node_state{node=\"gpu0\"} 1
haocl_node_state{node=\"gpu1\"} 1
# TYPE haocl_wall_requests_total counter
haocl_wall_requests_total{node=\"gpu0\"} 600
haocl_wall_requests_total{node=\"gpu1\"} 4
# TYPE haocl_wall_nanos_total counter
haocl_wall_nanos_total{node=\"gpu0\"} 2000000000
haocl_wall_nanos_total{node=\"gpu1\"} 0
";
        let snap = FleetSnapshot::from_text(metrics, "");
        let by_name = |name: &str| snap.nodes.iter().find(|n| n.node == name).unwrap();
        // 600 round trips over 2 wall-clock seconds.
        assert_eq!(by_name("gpu0").wall_rps, Some(300.0));
        // A zero wall-time denominator renders as unknown, not infinity.
        assert_eq!(by_name("gpu1").wall_rps, None);
        let text = snap.render();
        assert!(text.contains("WALL.RPS"), "{text}");
        assert!(text.contains("300"), "{text}");
        assert!(
            snap.to_json().contains("\"wall_rps\":300.0"),
            "{}",
            snap.to_json()
        );
    }

    #[test]
    fn text_render_lists_every_node() {
        let snap = FleetSnapshot::from_text(METRICS, AUDIT);
        let text = snap.render();
        assert!(text.contains("node0"), "{text}");
        assert!(text.contains("degraded"), "{text}");
        assert!(text.contains("4 recalibrations"), "{text}");
    }

    #[test]
    fn json_report_round_trips_the_verdict() {
        let snap = FleetSnapshot::from_text(METRICS, AUDIT);
        let json = snap.to_json();
        assert!(json.contains("\"any_unhealthy\":true"), "{json}");
        assert!(
            json.contains(
                "\"node\":\"node1\",\"kind\":\"GPU\",\"health\":\"degraded\",\"state\":\"draining\""
            ),
            "{json}"
        );
        assert!(json.contains("\"avoided\":7"), "{json}");
        assert!(json.contains("\"autoscale_events\":1"), "{json}");
    }

    #[test]
    fn membership_states_render_without_counting_as_placements() {
        let metrics = "\
# TYPE haocl_node_state gauge
haocl_node_state{node=\"gpu0\"} 3
haocl_node_state{node=\"gpu1\"} 0
";
        let audit = "\
place kernel=<membership> tenant=default policy=membership chosen=gpu1/- health=- fused=- reason=\"state=Joining node=gpu1\" candidates=[]
place kernel=<membership> tenant=default policy=membership chosen=gpu1/- health=- fused=- reason=\"state=Active node=gpu1\" candidates=[]
place kernel=<autoscale> tenant=default policy=autoscale chosen=device0 health=- fused=- reason=\"decision=up queue_depth=9\" candidates=[]
";
        let snap = FleetSnapshot::from_text(metrics, audit);
        assert_eq!(snap.total_placements, 0);
        assert_eq!(snap.autoscale_events, 1);
        let by_name = |name: &str| snap.nodes.iter().find(|n| n.node == name).unwrap();
        assert_eq!(by_name("gpu0").state, "departed");
        assert_eq!(by_name("gpu1").state, "active");
        let text = snap.render();
        assert!(text.contains("departed"), "{text}");
        assert!(text.contains("1 autoscale events"), "{text}");
        // Golden `--report json` shape for the elastic fleet columns.
        assert_eq!(
            snap.to_json(),
            "{\"total_placements\":0,\"recalibrations\":0,\"drift_transitions\":0,\
             \"autoscale_events\":1,\"any_unhealthy\":false,\"nodes\":[\
             {\"node\":\"gpu0\",\"kind\":\"?\",\"health\":\"unknown\",\"state\":\"departed\",\
             \"placements\":0,\"degraded_wins\":0,\"avoided\":0,\"queue_depth\":null,\
             \"mean_latency_nanos\":null,\"currency_rate\":null,\"wall_rps\":null},\
             {\"node\":\"gpu1\",\"kind\":\"?\",\"health\":\"unknown\",\"state\":\"active\",\
             \"placements\":0,\"degraded_wins\":0,\"avoided\":0,\"queue_depth\":null,\
             \"mean_latency_nanos\":null,\"currency_rate\":null,\"wall_rps\":null}]}"
        );
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_inputs_make_an_empty_snapshot() {
        let snap = FleetSnapshot::from_text("", "");
        assert!(snap.nodes.is_empty());
        assert!(!snap.any_unhealthy());
        assert_eq!(snap.to_json(), "{\"total_placements\":0,\"recalibrations\":0,\"drift_transitions\":0,\"autoscale_events\":0,\"any_unhealthy\":false,\"nodes\":[]}");
    }
}
