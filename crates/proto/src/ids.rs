//! Cluster-wide identifier newtypes.
//!
//! Every object the host hands out — buffers, programs, kernels, queues,
//! events — is identified by a cluster-unique integer. Newtypes keep the
//! ID spaces statically distinct (C-NEWTYPE): `BufferId` cannot be passed
//! where `KernelId` is expected.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $raw:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name($raw);

        impl $name {
            /// Wraps a raw identifier value.
            pub const fn new(raw: $raw) -> Self {
                $name(raw)
            }

            /// The raw identifier value.
            pub const fn raw(self) -> $raw {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$raw> for $name {
            fn from(raw: $raw) -> Self {
                $name(raw)
            }
        }
    };
}

id_newtype!(
    /// A device node in the cluster (position in the cluster config).
    NodeId,
    u32,
    "node"
);
id_newtype!(
    /// A user/session on the host (multi-tenant support, §III-D).
    UserId,
    u32,
    "user"
);
id_newtype!(
    /// A tenant: the quota/fairness entity a session bills against.
    /// Sessions ([`UserId`]) are connections; tenants are the accounts
    /// the serving plane arbitrates between. The default (single-tenant)
    /// path uses [`TenantId::DEFAULT`].
    TenantId,
    u32,
    "tenant"
);
id_newtype!(
    /// A `cl_mem` buffer object.
    BufferId,
    u64,
    "buf"
);

impl TenantId {
    /// The implicit tenant every untagged launch bills against.
    pub const DEFAULT: TenantId = TenantId::new(0);
}
id_newtype!(
    /// A `cl_program` object.
    ProgramId,
    u64,
    "prog"
);
id_newtype!(
    /// A `cl_kernel` object.
    KernelId,
    u64,
    "kern"
);
id_newtype!(
    /// A `cl_command_queue` object.
    QueueId,
    u64,
    "queue"
);
id_newtype!(
    /// A `cl_event` object.
    EventId,
    u64,
    "event"
);
id_newtype!(
    /// A request/response correlation token on the backbone.
    RequestId,
    u64,
    "req"
);

/// A monotonically increasing ID allocator, shared across threads.
///
/// # Examples
///
/// ```
/// use haocl_proto::ids::{BufferId, IdAllocator};
///
/// let alloc = IdAllocator::new();
/// let a: BufferId = BufferId::new(alloc.next());
/// let b: BufferId = BufferId::new(alloc.next());
/// assert_ne!(a, b);
/// ```
#[derive(Debug)]
pub struct IdAllocator {
    next: AtomicU64,
}

impl Default for IdAllocator {
    /// Same as [`IdAllocator::new`]: starts at 1, honoring the "0 is
    /// reserved" contract even when the allocator is embedded in a
    /// `#[derive(Default)]` owner.
    fn default() -> Self {
        IdAllocator::new()
    }
}

impl IdAllocator {
    /// Creates an allocator starting at 1 (0 is reserved as "null").
    pub fn new() -> Self {
        IdAllocator {
            next: AtomicU64::new(1),
        }
    }

    /// Returns the next unique value.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(NodeId::new(3).to_string(), "node3");
        assert_eq!(BufferId::new(9).to_string(), "buf9");
        assert_eq!(RequestId::new(1).to_string(), "req1");
    }

    #[test]
    fn raw_roundtrip() {
        assert_eq!(KernelId::new(77).raw(), 77);
        assert_eq!(KernelId::from(77u64), KernelId::new(77));
    }

    #[test]
    fn allocator_is_unique_across_threads() {
        let alloc = std::sync::Arc::new(IdAllocator::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let a = std::sync::Arc::clone(&alloc);
                std::thread::spawn(move || (0..1000).map(|_| a.next()).collect::<Vec<_>>())
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(seen.len(), 4000);
        assert!(!seen.contains(&0), "0 is reserved");
    }

    #[test]
    fn distinct_id_spaces_do_not_compare() {
        // Compile-time property: BufferId and KernelId are different types.
        // (If this compiles, the static distinction holds.)
        fn takes_buffer(_: BufferId) {}
        takes_buffer(BufferId::new(1));
    }
}
