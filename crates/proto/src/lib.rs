//! Wire protocol for the HaoCL cluster runtime.
//!
//! The paper's wrapper library turns every OpenCL API call into a
//! *message package* — function name plus arguments — and ships buffer
//! contents as *data packages* (§III-B). This crate is that protocol:
//!
//! * [`ids`] — cluster-wide identifier newtypes ([`NodeId`],
//!   [`BufferId`], …) so a buffer handle can never be confused with a
//!   kernel handle at compile time,
//! * [`wire`] — a compact, hand-rolled binary codec ([`wire::Encode`] /
//!   [`wire::Decode`]) over [`bytes`], with roundtrip property tests,
//! * [`messages`] — the [`messages::ApiCall`] /
//!   [`messages::ApiReply`] message set covering every forwarded OpenCL
//!   operation, plus device descriptors and status codes.
//!
//! # Examples
//!
//! ```
//! use haocl_proto::ids::{BufferId, RequestId, UserId};
//! use haocl_proto::messages::{ApiCall, Request};
//! use haocl_proto::wire::{decode_from_slice, encode_to_vec};
//!
//! let req = Request {
//!     id: RequestId::new(7),
//!     user: UserId::new(1),
//!     sent_at_nanos: 123,
//!     trace_id: 0,
//!     parent_span: 0,
//!     epoch: 0,
//!     attempt: 0,
//!     body: ApiCall::CreateBuffer {
//!         device: 0,
//!         buffer: BufferId::new(42),
//!         size: 4096,
//!     },
//! };
//! let bytes = encode_to_vec(&req);
//! let back: Request = decode_from_slice(&bytes)?;
//! assert_eq!(back, req);
//! # Ok::<(), haocl_proto::wire::WireError>(())
//! ```

pub mod ids;
pub mod messages;
pub mod wire;

pub use ids::{BufferId, EventId, KernelId, NodeId, ProgramId, QueueId, RequestId, UserId};
pub use messages::{
    ApiCall, ApiReply, DeviceDescriptor, DeviceKind, Envelope, Request, Response, WireSpan,
};
pub use wire::{Decode, Encode, WireError};
