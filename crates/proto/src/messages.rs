//! The message packages exchanged between host and Node Management
//! Processes.
//!
//! Every OpenCL API call that the wrapper library forwards becomes one
//! [`ApiCall`] variant; the NMP answers with an [`ApiReply`]. Buffer
//! contents travel inline as [`bytes::Bytes`] blobs — the "data packages"
//! of the paper. Timestamps on [`Request`]/[`Response`] carry the virtual
//! clock across the simulated network.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::ids::{BufferId, KernelId, ProgramId, RequestId, UserId};
use crate::wire::{Decode, Encode, WireError};

/// OpenCL-style status codes carried in [`ApiReply::Error`].
pub mod status {
    /// Success (CL_SUCCESS).
    pub const SUCCESS: i32 = 0;
    /// CL_DEVICE_NOT_FOUND.
    pub const DEVICE_NOT_FOUND: i32 = -1;
    /// CL_DEVICE_NOT_AVAILABLE.
    pub const DEVICE_NOT_AVAILABLE: i32 = -2;
    /// CL_OUT_OF_RESOURCES.
    pub const OUT_OF_RESOURCES: i32 = -5;
    /// CL_OUT_OF_HOST_MEMORY.
    pub const OUT_OF_HOST_MEMORY: i32 = -6;
    /// CL_MEM_OBJECT_ALLOCATION_FAILURE.
    pub const MEM_OBJECT_ALLOCATION_FAILURE: i32 = -4;
    /// CL_BUILD_PROGRAM_FAILURE.
    pub const BUILD_PROGRAM_FAILURE: i32 = -11;
    /// CL_INVALID_VALUE.
    pub const INVALID_VALUE: i32 = -30;
    /// CL_INVALID_DEVICE.
    pub const INVALID_DEVICE: i32 = -33;
    /// CL_INVALID_MEM_OBJECT.
    pub const INVALID_MEM_OBJECT: i32 = -38;
    /// CL_INVALID_PROGRAM.
    pub const INVALID_PROGRAM: i32 = -44;
    /// CL_INVALID_KERNEL_NAME.
    pub const INVALID_KERNEL_NAME: i32 = -46;
    /// CL_INVALID_KERNEL.
    pub const INVALID_KERNEL: i32 = -48;
    /// CL_INVALID_KERNEL_ARGS.
    pub const INVALID_KERNEL_ARGS: i32 = -52;
    /// CL_INVALID_WORK_GROUP_SIZE.
    pub const INVALID_WORK_GROUP_SIZE: i32 = -54;
    /// CL_INVALID_OPERATION.
    pub const INVALID_OPERATION: i32 = -59;
    /// CL_INVALID_BUFFER_SIZE.
    pub const INVALID_BUFFER_SIZE: i32 = -61;
}

/// The class of a compute device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceKind {
    /// A multi-core CPU (Intel Xeon E5-2686 in the paper's cluster).
    Cpu,
    /// A discrete GPU (NVIDIA Tesla P4).
    Gpu,
    /// An FPGA used as a streaming processor (Xilinx VU9P).
    Fpga,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DeviceKind::Cpu => "CPU",
            DeviceKind::Gpu => "GPU",
            DeviceKind::Fpga => "FPGA",
        })
    }
}

/// Summary of one device a node advertises in its hello reply (the
/// `clGetDeviceIDs` mapping data of §III-C).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceDescriptor {
    /// Device index within its node.
    pub index: u8,
    /// Device class.
    pub kind: DeviceKind,
    /// Human-readable model name.
    pub name: String,
    /// Global memory capacity in bytes.
    pub mem_bytes: u64,
    /// Peak single-precision throughput, GFLOP/s.
    pub gflops: f64,
    /// Global memory bandwidth, GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Board power draw under load, watts.
    pub power_watts: f64,
}

/// Execution fidelity for a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Execute the kernel for real (results land in buffers).
    #[default]
    Full,
    /// Evaluate only the cost model (paper-scale benchmarking; buffers are
    /// left untouched).
    Modeled,
}

/// A kernel argument on the wire (`clSetKernelArg` payload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireArg {
    /// `float` scalar.
    F32(f32),
    /// `double` scalar.
    F64(f64),
    /// `int` scalar.
    I32(i32),
    /// `uint` scalar.
    U32(u32),
    /// `long` scalar.
    I64(i64),
    /// `ulong` scalar.
    U64(u64),
    /// A `__global` buffer handle.
    Buffer(BufferId),
    /// A dynamically-sized `__local` allocation.
    LocalBytes(u64),
}

/// NDRange geometry on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireNdRange {
    /// Number of dimensions (1–3).
    pub work_dim: u32,
    /// Global sizes (unused dimensions are 1).
    pub global: [u64; 3],
    /// Local sizes (unused dimensions are 1).
    pub local: [u64; 3],
}

/// Launch cost model on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireCost {
    /// Total floating-point operations.
    pub flops: f64,
    /// Total bytes read from global memory.
    pub bytes_read: f64,
    /// Total bytes written to global memory.
    pub bytes_written: f64,
    /// Regular control flow / memory access.
    pub uniform: bool,
    /// Sequential streaming pass.
    pub streaming: bool,
}

/// One forwarded OpenCL API call (the "message package").
#[derive(Debug, Clone, PartialEq)]
pub enum ApiCall {
    /// Session handshake; the node answers with its device inventory.
    Hello {
        /// Human-readable client name (for the node's logs).
        client: String,
    },
    /// Re-query the device inventory (`clGetDeviceIDs`).
    ListDevices,
    /// `clCreateBuffer` on a device.
    CreateBuffer {
        /// Target device index on the node.
        device: u8,
        /// Host-assigned cluster-unique buffer handle.
        buffer: BufferId,
        /// Size in bytes.
        size: u64,
    },
    /// `clReleaseMemObject`.
    ReleaseBuffer {
        /// Target device index on the node.
        device: u8,
        /// Buffer to release.
        buffer: BufferId,
    },
    /// `clEnqueueWriteBuffer` (carries the data package inline).
    WriteBuffer {
        /// Target device index on the node.
        device: u8,
        /// Destination buffer.
        buffer: BufferId,
        /// Byte offset within the buffer.
        offset: u64,
        /// The bytes to write.
        data: Bytes,
    },
    /// `clEnqueueReadBuffer`.
    ReadBuffer {
        /// Target device index on the node.
        device: u8,
        /// Source buffer.
        buffer: BufferId,
        /// Byte offset within the buffer.
        offset: u64,
        /// Bytes to read.
        len: u64,
    },
    /// `clEnqueueCopyBuffer` between two buffers on the same device.
    CopyBuffer {
        /// Target device index on the node.
        device: u8,
        /// Source buffer.
        src: BufferId,
        /// Destination buffer.
        dst: BufferId,
        /// Source byte offset.
        src_offset: u64,
        /// Destination byte offset.
        dst_offset: u64,
        /// Bytes to copy.
        len: u64,
    },
    /// `clBuildProgram` from source (CPU/GPU path).
    BuildProgram {
        /// Target device index on the node.
        device: u8,
        /// Host-assigned program handle.
        program: ProgramId,
        /// OpenCL C source text.
        source: String,
    },
    /// Load pre-built kernels from the node's bitstream store (FPGA path,
    /// §III-D).
    LoadBitstream {
        /// Target device index on the node.
        device: u8,
        /// Host-assigned program handle.
        program: ProgramId,
        /// Kernel names expected in the store.
        kernels: Vec<String>,
    },
    /// `clCreateKernel`.
    CreateKernel {
        /// Target device index on the node.
        device: u8,
        /// Host-assigned kernel handle.
        kernel: KernelId,
        /// Program the kernel comes from.
        program: ProgramId,
        /// Kernel function name.
        name: String,
    },
    /// `clEnqueueNDRangeKernel` with all arguments bound.
    LaunchKernel {
        /// Target device index on the node.
        device: u8,
        /// Kernel to launch.
        kernel: KernelId,
        /// Bound arguments, in parameter order.
        args: Vec<WireArg>,
        /// Launch geometry.
        range: WireNdRange,
        /// Device-independent cost (for virtual timing).
        cost: WireCost,
        /// Execute fully or model-only.
        fidelity: Fidelity,
        /// Whether the device may be time-shared with other users.
        shared: bool,
    },
    /// Modeled `clCreateBuffer`: the node accounts for capacity but does
    /// not back the buffer with real memory (paper-scale benchmarking;
    /// only legal with modeled launches and transfers).
    CreateBufferModeled {
        /// Target device index on the node.
        device: u8,
        /// Host-assigned cluster-unique buffer handle.
        buffer: BufferId,
        /// Size in bytes.
        size: u64,
    },
    /// Modeled `clEnqueueWriteBuffer`: charges the PCIe transfer for
    /// `len` bytes without carrying data.
    WriteBufferModeled {
        /// Target device index on the node.
        device: u8,
        /// Destination buffer.
        buffer: BufferId,
        /// Byte offset within the buffer.
        offset: u64,
        /// Bytes the modeled transfer stands in for.
        len: u64,
    },
    /// Modeled `clEnqueueReadBuffer`: charges the transfer; the reply is
    /// a [`ApiReply::DataModeled`] descriptor instead of bytes.
    ReadBufferModeled {
        /// Target device index on the node.
        device: u8,
        /// Source buffer.
        buffer: BufferId,
        /// Byte offset within the buffer.
        offset: u64,
        /// Bytes the modeled transfer stands in for.
        len: u64,
    },
    /// Ship a buffer's contents directly to a peer NMP's data listener
    /// (one hop, no host relay). The host still *sends* this command —
    /// it keeps packaging and delivering every message (§III-A) — but
    /// the bulk bytes travel node-to-node.
    PushBufferTo {
        /// Source device index on the receiving (owning) node.
        device: u8,
        /// Buffer to ship, under the *source* node's wire id.
        buffer: BufferId,
        /// Data-plane address of the destination node.
        peer_addr: String,
        /// Destination device index on the peer node.
        peer_device: u8,
        /// The same buffer under the *destination* node's wire id. Wire
        /// ids are per logical node, so failed-over nodes co-located on
        /// one physical NMP keep disjoint buffer slots.
        peer_buffer: BufferId,
        /// Byte offset within the buffer.
        offset: u64,
        /// Bytes to ship.
        len: u64,
        /// Residency version being propagated (observability/consistency
        /// annotation; the receiving replica becomes current at it).
        version: u64,
        /// Destination node's routing epoch as observed by the host.
        epoch: u32,
        /// Whether the buffer is modeled (timing-only transfer).
        modeled: bool,
    },
    /// Fetch a buffer's contents directly from a peer NMP's data
    /// listener into a local device (the inverse of `PushBufferTo`;
    /// journal replay uses it to reconstruct peer-delivered bytes).
    PullBufferFrom {
        /// Destination device index on the receiving node.
        device: u8,
        /// Buffer to fetch, under the *destination* node's wire id.
        buffer: BufferId,
        /// Data-plane address of the source node.
        peer_addr: String,
        /// Source device index on the peer node.
        peer_device: u8,
        /// The same buffer under the *source* node's wire id.
        peer_buffer: BufferId,
        /// Byte offset within the buffer.
        offset: u64,
        /// Bytes to fetch.
        len: u64,
        /// Residency version being propagated.
        version: u64,
        /// Source node's routing epoch as observed by the host.
        epoch: u32,
        /// Whether the buffer is modeled (timing-only transfer).
        modeled: bool,
    },
    /// A prover-approved chain of launches executed back-to-back under
    /// one dispatch: one wire command, one completion, one device grant.
    /// The host only emits this for chains the fusion-legality prover
    /// accepted, so constituent order within the dispatch is the only
    /// ordering the parts need.
    LaunchFused {
        /// Target device index on the node.
        device: u8,
        /// Execute fully or model-only.
        fidelity: Fidelity,
        /// Whether the device may be time-shared with other users.
        shared: bool,
        /// Constituent launches, in program order (at least two).
        parts: Vec<WireLaunchPart>,
    },
    /// Pull the node's runtime profile (scheduler feedback, §III-B).
    QueryProfile,
    /// Inject (or lift, with `factor == 1.0`) a degradation multiplier
    /// on one of the node's devices — the fault-injection lever behind
    /// drift-detection tests and degraded-device soaks. Idempotent
    /// control call: not journaled, safe to re-execute on retry.
    SetThrottle {
        /// Target device index on the node.
        device: u8,
        /// Slowdown multiplier, clamped to ≥ 1.0 device-side.
        factor: f64,
    },
    /// Tell the node it is draining out of the cluster: refuse fresh
    /// kernel launches (buffer traffic and in-flight work continue, so
    /// live migration can proceed). Idempotent control call: not
    /// journaled, safe to re-execute on retry.
    BeginDrain,
    /// Liveness check.
    Ping,
    /// Orderly shutdown of the NMP.
    Shutdown,
}

/// A reply to an [`ApiCall`].
#[derive(Debug, Clone, PartialEq)]
pub enum ApiReply {
    /// Operation completed.
    Ack,
    /// Operation failed.
    Error {
        /// An OpenCL status code (see [`status`]).
        code: i32,
        /// Human-readable details.
        message: String,
    },
    /// Device inventory (reply to `Hello`/`ListDevices`).
    NodeInfo {
        /// The node's devices.
        devices: Vec<DeviceDescriptor>,
    },
    /// Buffer contents (reply to `ReadBuffer`).
    Data {
        /// The bytes read.
        bytes: Bytes,
    },
    /// Build outcome (reply to `BuildProgram`/`LoadBitstream`).
    BuildLog {
        /// Whether the build succeeded.
        ok: bool,
        /// Compiler/loader log text.
        log: String,
        /// Static-analysis summary per kernel (empty when the node's
        /// toolchain does not run the analyzer, e.g. bitstream loads).
        reports: Vec<WireKernelReport>,
    },
    /// Launch outcome with device-side virtual timing.
    LaunchDone {
        /// Virtual time the kernel started on the device.
        start_nanos: u64,
        /// Virtual time the kernel finished.
        end_nanos: u64,
        /// Bytecode instructions retired (0 in modeled fidelity).
        instructions: u64,
    },
    /// Node profile (reply to `QueryProfile`).
    Profile {
        /// Per-device, per-kernel timing records.
        entries: Vec<ProfileEntry>,
    },
    /// Liveness answer.
    Pong {
        /// The node's current virtual time.
        now_nanos: u64,
    },
    /// Kernel metadata (reply to `CreateKernel`).
    KernelInfo {
        /// Number of arguments the kernel takes.
        arity: u32,
    },
    /// A modeled data package: stands in for `len` bytes on the return
    /// path (reply to `ReadBufferModeled`). The response frame is charged
    /// on the link as if it carried the data.
    DataModeled {
        /// Bytes the modeled payload stands in for.
        len: u64,
    },
}

/// Static-analysis summary of one built kernel, produced by the device
/// node's compiler and forwarded in [`ApiReply::BuildLog`] so the host
/// scheduler can seed placement hints before any launch has run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireKernelReport {
    /// Kernel name.
    pub kernel: String,
    /// Error-severity findings (barrier divergence, `__local` races,
    /// provable out-of-bounds).
    pub errors: u32,
    /// Warning-severity findings.
    pub warnings: u32,
    /// Statically-declared `__local` bytes.
    pub local_bytes: u32,
    /// Number of `barrier(...)` sites.
    pub barrier_count: u32,
    /// Static flops-per-byte estimate.
    pub arithmetic_intensity: f64,
    /// Fraction of reachable blocks under work-item-dependent control
    /// flow.
    pub divergence_score: f64,
    /// Per-argument effect summary (fusion-legality input), in parameter
    /// order. Empty when the node's toolchain does not run the analyzer.
    pub effects: Vec<WireArgEffect>,
}

/// Flat wire mirror of one access pattern in an effect summary (see the
/// compiler's `analysis::effects::AccessPattern`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireAccessPattern {
    /// Store (`true`) or load (`false`).
    pub write: bool,
    /// Provably item-private with a cross-kernel-comparable base.
    pub provable: bool,
    /// Per-dimension local-id coefficients, in elements.
    pub coeffs: [i64; 3],
    /// Base discriminant: 0 = constant, 1 = launch-geometry symbol,
    /// 2 = opaque.
    pub base_kind: u8,
    /// Geometry symbol id (`base_kind == 1` only).
    pub base_id: u32,
    /// Constant element addend (`base_kind <= 1`).
    pub base_add: i64,
}

/// Flat wire mirror of one argument's effect summary.
#[derive(Debug, Clone, PartialEq)]
pub struct WireArgEffect {
    /// Access mode: 0 = none, 1 = read, 2 = write, 3 = read-write.
    pub mode: u8,
    /// Element size of the pointee in bytes (0 for non-global args).
    pub elem_bytes: u32,
    /// Whether `lo`/`hi` carry meaningful element bounds.
    pub bounded: bool,
    /// Inclusive lower element offset (when `bounded`).
    pub lo: i64,
    /// Inclusive upper element offset (when `bounded`).
    pub hi: i64,
    /// Whether `patterns` covers every possible access.
    pub complete: bool,
    /// Deduplicated access shapes.
    pub patterns: Vec<WireAccessPattern>,
}

/// One constituent launch of an [`ApiCall::LaunchFused`] dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct WireLaunchPart {
    /// Kernel to run.
    pub kernel: KernelId,
    /// Bound arguments, in parameter order.
    pub args: Vec<WireArg>,
    /// Launch geometry (the prover guarantees all parts of one fused
    /// dispatch share it).
    pub range: WireNdRange,
    /// Device-independent cost (for virtual timing).
    pub cost: WireCost,
}

/// One row of a node's runtime profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Device index on the node.
    pub device: u8,
    /// Kernel name.
    pub kernel: String,
    /// Number of completed launches.
    pub runs: u64,
    /// Mean execution time, virtual nanoseconds.
    pub mean_nanos: u64,
    /// Device busy time so far, virtual nanoseconds.
    pub busy_nanos: u64,
}

/// A span recorded on a device node, shipped back inside the response
/// that completes it.
///
/// The NMP cannot reach the host's span recorder across the (simulated)
/// network, so node-side spans ride the wire: ids are minted
/// deterministically from the request's correlation token (high bit set,
/// so they never collide with host-allocated ids) and the host ingests
/// them into the recorder when the response is claimed.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSpan {
    /// Span id (node-derived).
    pub id: u64,
    /// Parent span id; `0` means "root" (never emitted by the NMP).
    pub parent: u64,
    /// Operation name (e.g. `nmp.dispatch`, `vm.run`).
    pub name: String,
    /// Breakdown category name.
    pub category: String,
    /// Interval start, virtual nanoseconds.
    pub start_nanos: u64,
    /// Interval end, virtual nanoseconds.
    pub end_nanos: u64,
    /// Wall-clock (monotonic) nanoseconds the node spent handling the
    /// work — *real* time alongside the virtual interval, so simulation
    /// throughput is measurable per span. `0` when not measured.
    pub wall_nanos: u64,
}

/// A framed request on the backbone.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Correlation token.
    pub id: RequestId,
    /// Originating user/session.
    pub user: UserId,
    /// Virtual send time at the host.
    pub sent_at_nanos: u64,
    /// Trace the call belongs to; `0` when tracing is off.
    pub trace_id: u64,
    /// Host-side span the node's spans should hang off; `0` when tracing
    /// is off.
    pub parent_span: u64,
    /// The host's routing epoch for the target logical node. Bumped on
    /// every failover, so a node (or an operator reading a capture) can
    /// tell a replayed world apart from the original one.
    pub epoch: u32,
    /// Delivery attempt, starting at `0`. Retransmissions of the same
    /// `RequestId` bump this; the node's at-most-once journal treats any
    /// attempt after the first as a duplicate.
    pub attempt: u32,
    /// The forwarded call.
    pub body: ApiCall,
}

impl Request {
    /// Whether the caller asked for node-side spans.
    pub fn traced(&self) -> bool {
        self.trace_id != 0
    }

    /// Whether this is a retransmission of an earlier send.
    pub fn is_retry(&self) -> bool {
        self.attempt != 0
    }
}

/// A framed response on the backbone.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echoes the request's correlation token.
    pub id: RequestId,
    /// Virtual completion time at the node.
    pub completed_at_nanos: u64,
    /// The reply.
    pub body: ApiReply,
    /// `true` when the node served this answer from its at-most-once
    /// request journal instead of executing the call again (a retried or
    /// duplicated request hit a completed entry).
    pub duplicate: bool,
    /// Node-side spans for traced requests (empty when tracing is off).
    pub spans: Vec<WireSpan>,
}

/// What one host→node control-plane frame carries.
///
/// The pipelined backbone coalesces small control messages that queue up
/// while the host NIC is busy: instead of paying per-frame overhead for
/// each, it packs every queued [`Request`] into one `Batch` frame. The
/// node unpacks the envelope and answers each request with its own
/// [`Response`] frame, preserving per-request correlation (and therefore
/// out-of-order completion) end to end.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// Exactly one request (the common uncongested case).
    Single(Request),
    /// Several requests coalesced into one transmission.
    Batch(Vec<Request>),
}

impl Envelope {
    /// The requests carried, in submission order.
    pub fn into_requests(self) -> Vec<Request> {
        match self {
            Envelope::Single(request) => vec![request],
            Envelope::Batch(requests) => requests,
        }
    }

    /// How many requests the envelope carries.
    pub fn len(&self) -> usize {
        match self {
            Envelope::Single(_) => 1,
            Envelope::Batch(requests) => requests.len(),
        }
    }

    /// Whether the envelope carries no requests (possible only for an
    /// empty `Batch`, which well-formed senders never emit).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<Request>> for Envelope {
    /// Wraps queued requests, collapsing a singleton into
    /// [`Envelope::Single`].
    fn from(mut requests: Vec<Request>) -> Self {
        if requests.len() == 1 {
            Envelope::Single(requests.pop().expect("len checked"))
        } else {
            Envelope::Batch(requests)
        }
    }
}

// ---------------------------------------------------------------------
// Codec implementations
// ---------------------------------------------------------------------

impl Encode for DeviceKind {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            DeviceKind::Cpu => 0,
            DeviceKind::Gpu => 1,
            DeviceKind::Fpga => 2,
        });
    }
}

impl Decode for DeviceKind {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::UnexpectedEof { what: "DeviceKind" });
        }
        match buf.get_u8() {
            0 => Ok(DeviceKind::Cpu),
            1 => Ok(DeviceKind::Gpu),
            2 => Ok(DeviceKind::Fpga),
            tag => Err(WireError::InvalidTag {
                what: "DeviceKind",
                tag,
            }),
        }
    }
}

impl Encode for DeviceDescriptor {
    fn encode(&self, buf: &mut BytesMut) {
        self.index.encode(buf);
        self.kind.encode(buf);
        self.name.encode(buf);
        self.mem_bytes.encode(buf);
        self.gflops.encode(buf);
        self.mem_bandwidth_gbps.encode(buf);
        self.power_watts.encode(buf);
    }
}

impl Decode for DeviceDescriptor {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(DeviceDescriptor {
            index: Decode::decode(buf)?,
            kind: Decode::decode(buf)?,
            name: Decode::decode(buf)?,
            mem_bytes: Decode::decode(buf)?,
            gflops: Decode::decode(buf)?,
            mem_bandwidth_gbps: Decode::decode(buf)?,
            power_watts: Decode::decode(buf)?,
        })
    }
}

impl Encode for Fidelity {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            Fidelity::Full => 0,
            Fidelity::Modeled => 1,
        });
    }
}

impl Decode for Fidelity {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::UnexpectedEof { what: "Fidelity" });
        }
        match buf.get_u8() {
            0 => Ok(Fidelity::Full),
            1 => Ok(Fidelity::Modeled),
            tag => Err(WireError::InvalidTag {
                what: "Fidelity",
                tag,
            }),
        }
    }
}

impl Encode for WireArg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WireArg::F32(v) => {
                buf.put_u8(0);
                v.encode(buf);
            }
            WireArg::F64(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
            WireArg::I32(v) => {
                buf.put_u8(2);
                v.encode(buf);
            }
            WireArg::U32(v) => {
                buf.put_u8(3);
                v.encode(buf);
            }
            WireArg::I64(v) => {
                buf.put_u8(4);
                v.encode(buf);
            }
            WireArg::U64(v) => {
                buf.put_u8(5);
                v.encode(buf);
            }
            WireArg::Buffer(v) => {
                buf.put_u8(6);
                v.encode(buf);
            }
            WireArg::LocalBytes(v) => {
                buf.put_u8(7);
                v.encode(buf);
            }
        }
    }
}

impl Decode for WireArg {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::UnexpectedEof { what: "WireArg" });
        }
        Ok(match buf.get_u8() {
            0 => WireArg::F32(Decode::decode(buf)?),
            1 => WireArg::F64(Decode::decode(buf)?),
            2 => WireArg::I32(Decode::decode(buf)?),
            3 => WireArg::U32(Decode::decode(buf)?),
            4 => WireArg::I64(Decode::decode(buf)?),
            5 => WireArg::U64(Decode::decode(buf)?),
            6 => WireArg::Buffer(Decode::decode(buf)?),
            7 => WireArg::LocalBytes(Decode::decode(buf)?),
            tag => {
                return Err(WireError::InvalidTag {
                    what: "WireArg",
                    tag,
                })
            }
        })
    }
}

impl Encode for WireNdRange {
    fn encode(&self, buf: &mut BytesMut) {
        self.work_dim.encode(buf);
        self.global.encode(buf);
        self.local.encode(buf);
    }
}

impl Decode for WireNdRange {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(WireNdRange {
            work_dim: Decode::decode(buf)?,
            global: Decode::decode(buf)?,
            local: Decode::decode(buf)?,
        })
    }
}

impl Encode for WireCost {
    fn encode(&self, buf: &mut BytesMut) {
        self.flops.encode(buf);
        self.bytes_read.encode(buf);
        self.bytes_written.encode(buf);
        self.uniform.encode(buf);
        self.streaming.encode(buf);
    }
}

impl Decode for WireCost {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(WireCost {
            flops: Decode::decode(buf)?,
            bytes_read: Decode::decode(buf)?,
            bytes_written: Decode::decode(buf)?,
            uniform: Decode::decode(buf)?,
            streaming: Decode::decode(buf)?,
        })
    }
}

impl Encode for ApiCall {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ApiCall::Hello { client } => {
                buf.put_u8(0);
                client.encode(buf);
            }
            ApiCall::ListDevices => buf.put_u8(1),
            ApiCall::CreateBuffer {
                device,
                buffer,
                size,
            } => {
                buf.put_u8(2);
                device.encode(buf);
                buffer.encode(buf);
                size.encode(buf);
            }
            ApiCall::ReleaseBuffer { device, buffer } => {
                buf.put_u8(3);
                device.encode(buf);
                buffer.encode(buf);
            }
            ApiCall::WriteBuffer {
                device,
                buffer,
                offset,
                data,
            } => {
                buf.put_u8(4);
                device.encode(buf);
                buffer.encode(buf);
                offset.encode(buf);
                data.encode(buf);
            }
            ApiCall::ReadBuffer {
                device,
                buffer,
                offset,
                len,
            } => {
                buf.put_u8(5);
                device.encode(buf);
                buffer.encode(buf);
                offset.encode(buf);
                len.encode(buf);
            }
            ApiCall::CopyBuffer {
                device,
                src,
                dst,
                src_offset,
                dst_offset,
                len,
            } => {
                buf.put_u8(6);
                device.encode(buf);
                src.encode(buf);
                dst.encode(buf);
                src_offset.encode(buf);
                dst_offset.encode(buf);
                len.encode(buf);
            }
            ApiCall::BuildProgram {
                device,
                program,
                source,
            } => {
                buf.put_u8(7);
                device.encode(buf);
                program.encode(buf);
                source.encode(buf);
            }
            ApiCall::LoadBitstream {
                device,
                program,
                kernels,
            } => {
                buf.put_u8(8);
                device.encode(buf);
                program.encode(buf);
                kernels.encode(buf);
            }
            ApiCall::CreateKernel {
                device,
                kernel,
                program,
                name,
            } => {
                buf.put_u8(9);
                device.encode(buf);
                kernel.encode(buf);
                program.encode(buf);
                name.encode(buf);
            }
            ApiCall::LaunchKernel {
                device,
                kernel,
                args,
                range,
                cost,
                fidelity,
                shared,
            } => {
                buf.put_u8(10);
                device.encode(buf);
                kernel.encode(buf);
                args.encode(buf);
                range.encode(buf);
                cost.encode(buf);
                fidelity.encode(buf);
                shared.encode(buf);
            }
            ApiCall::QueryProfile => buf.put_u8(11),
            ApiCall::Ping => buf.put_u8(12),
            ApiCall::Shutdown => buf.put_u8(13),
            ApiCall::CreateBufferModeled {
                device,
                buffer,
                size,
            } => {
                buf.put_u8(14);
                device.encode(buf);
                buffer.encode(buf);
                size.encode(buf);
            }
            ApiCall::WriteBufferModeled {
                device,
                buffer,
                offset,
                len,
            } => {
                buf.put_u8(15);
                device.encode(buf);
                buffer.encode(buf);
                offset.encode(buf);
                len.encode(buf);
            }
            ApiCall::ReadBufferModeled {
                device,
                buffer,
                offset,
                len,
            } => {
                buf.put_u8(16);
                device.encode(buf);
                buffer.encode(buf);
                offset.encode(buf);
                len.encode(buf);
            }
            ApiCall::PushBufferTo {
                device,
                buffer,
                peer_addr,
                peer_device,
                peer_buffer,
                offset,
                len,
                version,
                epoch,
                modeled,
            } => {
                buf.put_u8(17);
                device.encode(buf);
                buffer.encode(buf);
                peer_addr.encode(buf);
                peer_device.encode(buf);
                peer_buffer.encode(buf);
                offset.encode(buf);
                len.encode(buf);
                version.encode(buf);
                epoch.encode(buf);
                modeled.encode(buf);
            }
            ApiCall::PullBufferFrom {
                device,
                buffer,
                peer_addr,
                peer_device,
                peer_buffer,
                offset,
                len,
                version,
                epoch,
                modeled,
            } => {
                buf.put_u8(18);
                device.encode(buf);
                buffer.encode(buf);
                peer_addr.encode(buf);
                peer_device.encode(buf);
                peer_buffer.encode(buf);
                offset.encode(buf);
                len.encode(buf);
                version.encode(buf);
                epoch.encode(buf);
                modeled.encode(buf);
            }
            ApiCall::LaunchFused {
                device,
                fidelity,
                shared,
                parts,
            } => {
                buf.put_u8(19);
                device.encode(buf);
                fidelity.encode(buf);
                shared.encode(buf);
                parts.encode(buf);
            }
            ApiCall::SetThrottle { device, factor } => {
                buf.put_u8(20);
                device.encode(buf);
                factor.encode(buf);
            }
            ApiCall::BeginDrain => buf.put_u8(21),
        }
    }
}

impl Decode for ApiCall {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::UnexpectedEof { what: "ApiCall" });
        }
        Ok(match buf.get_u8() {
            0 => ApiCall::Hello {
                client: Decode::decode(buf)?,
            },
            1 => ApiCall::ListDevices,
            2 => ApiCall::CreateBuffer {
                device: Decode::decode(buf)?,
                buffer: Decode::decode(buf)?,
                size: Decode::decode(buf)?,
            },
            3 => ApiCall::ReleaseBuffer {
                device: Decode::decode(buf)?,
                buffer: Decode::decode(buf)?,
            },
            4 => ApiCall::WriteBuffer {
                device: Decode::decode(buf)?,
                buffer: Decode::decode(buf)?,
                offset: Decode::decode(buf)?,
                data: Decode::decode(buf)?,
            },
            5 => ApiCall::ReadBuffer {
                device: Decode::decode(buf)?,
                buffer: Decode::decode(buf)?,
                offset: Decode::decode(buf)?,
                len: Decode::decode(buf)?,
            },
            6 => ApiCall::CopyBuffer {
                device: Decode::decode(buf)?,
                src: Decode::decode(buf)?,
                dst: Decode::decode(buf)?,
                src_offset: Decode::decode(buf)?,
                dst_offset: Decode::decode(buf)?,
                len: Decode::decode(buf)?,
            },
            7 => ApiCall::BuildProgram {
                device: Decode::decode(buf)?,
                program: Decode::decode(buf)?,
                source: Decode::decode(buf)?,
            },
            8 => ApiCall::LoadBitstream {
                device: Decode::decode(buf)?,
                program: Decode::decode(buf)?,
                kernels: Decode::decode(buf)?,
            },
            9 => ApiCall::CreateKernel {
                device: Decode::decode(buf)?,
                kernel: Decode::decode(buf)?,
                program: Decode::decode(buf)?,
                name: Decode::decode(buf)?,
            },
            10 => ApiCall::LaunchKernel {
                device: Decode::decode(buf)?,
                kernel: Decode::decode(buf)?,
                args: Decode::decode(buf)?,
                range: Decode::decode(buf)?,
                cost: Decode::decode(buf)?,
                fidelity: Decode::decode(buf)?,
                shared: Decode::decode(buf)?,
            },
            11 => ApiCall::QueryProfile,
            12 => ApiCall::Ping,
            13 => ApiCall::Shutdown,
            14 => ApiCall::CreateBufferModeled {
                device: Decode::decode(buf)?,
                buffer: Decode::decode(buf)?,
                size: Decode::decode(buf)?,
            },
            15 => ApiCall::WriteBufferModeled {
                device: Decode::decode(buf)?,
                buffer: Decode::decode(buf)?,
                offset: Decode::decode(buf)?,
                len: Decode::decode(buf)?,
            },
            16 => ApiCall::ReadBufferModeled {
                device: Decode::decode(buf)?,
                buffer: Decode::decode(buf)?,
                offset: Decode::decode(buf)?,
                len: Decode::decode(buf)?,
            },
            17 => ApiCall::PushBufferTo {
                device: Decode::decode(buf)?,
                buffer: Decode::decode(buf)?,
                peer_addr: Decode::decode(buf)?,
                peer_device: Decode::decode(buf)?,
                peer_buffer: Decode::decode(buf)?,
                offset: Decode::decode(buf)?,
                len: Decode::decode(buf)?,
                version: Decode::decode(buf)?,
                epoch: Decode::decode(buf)?,
                modeled: Decode::decode(buf)?,
            },
            18 => ApiCall::PullBufferFrom {
                device: Decode::decode(buf)?,
                buffer: Decode::decode(buf)?,
                peer_addr: Decode::decode(buf)?,
                peer_device: Decode::decode(buf)?,
                peer_buffer: Decode::decode(buf)?,
                offset: Decode::decode(buf)?,
                len: Decode::decode(buf)?,
                version: Decode::decode(buf)?,
                epoch: Decode::decode(buf)?,
                modeled: Decode::decode(buf)?,
            },
            19 => ApiCall::LaunchFused {
                device: Decode::decode(buf)?,
                fidelity: Decode::decode(buf)?,
                shared: Decode::decode(buf)?,
                parts: Decode::decode(buf)?,
            },
            20 => ApiCall::SetThrottle {
                device: Decode::decode(buf)?,
                factor: Decode::decode(buf)?,
            },
            21 => ApiCall::BeginDrain,
            tag => {
                return Err(WireError::InvalidTag {
                    what: "ApiCall",
                    tag,
                })
            }
        })
    }
}

impl Encode for WireKernelReport {
    fn encode(&self, buf: &mut BytesMut) {
        self.kernel.encode(buf);
        self.errors.encode(buf);
        self.warnings.encode(buf);
        self.local_bytes.encode(buf);
        self.barrier_count.encode(buf);
        self.arithmetic_intensity.encode(buf);
        self.divergence_score.encode(buf);
        self.effects.encode(buf);
    }
}

impl Decode for WireKernelReport {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(WireKernelReport {
            kernel: Decode::decode(buf)?,
            errors: Decode::decode(buf)?,
            warnings: Decode::decode(buf)?,
            local_bytes: Decode::decode(buf)?,
            barrier_count: Decode::decode(buf)?,
            arithmetic_intensity: Decode::decode(buf)?,
            divergence_score: Decode::decode(buf)?,
            effects: Decode::decode(buf)?,
        })
    }
}

impl Encode for WireAccessPattern {
    fn encode(&self, buf: &mut BytesMut) {
        self.write.encode(buf);
        self.provable.encode(buf);
        for c in self.coeffs {
            c.encode(buf);
        }
        self.base_kind.encode(buf);
        self.base_id.encode(buf);
        self.base_add.encode(buf);
    }
}

impl Decode for WireAccessPattern {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(WireAccessPattern {
            write: Decode::decode(buf)?,
            provable: Decode::decode(buf)?,
            coeffs: [
                Decode::decode(buf)?,
                Decode::decode(buf)?,
                Decode::decode(buf)?,
            ],
            base_kind: Decode::decode(buf)?,
            base_id: Decode::decode(buf)?,
            base_add: Decode::decode(buf)?,
        })
    }
}

impl Encode for WireArgEffect {
    fn encode(&self, buf: &mut BytesMut) {
        self.mode.encode(buf);
        self.elem_bytes.encode(buf);
        self.bounded.encode(buf);
        self.lo.encode(buf);
        self.hi.encode(buf);
        self.complete.encode(buf);
        self.patterns.encode(buf);
    }
}

impl Decode for WireArgEffect {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(WireArgEffect {
            mode: Decode::decode(buf)?,
            elem_bytes: Decode::decode(buf)?,
            bounded: Decode::decode(buf)?,
            lo: Decode::decode(buf)?,
            hi: Decode::decode(buf)?,
            complete: Decode::decode(buf)?,
            patterns: Decode::decode(buf)?,
        })
    }
}

impl Encode for WireLaunchPart {
    fn encode(&self, buf: &mut BytesMut) {
        self.kernel.encode(buf);
        self.args.encode(buf);
        self.range.encode(buf);
        self.cost.encode(buf);
    }
}

impl Decode for WireLaunchPart {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(WireLaunchPart {
            kernel: Decode::decode(buf)?,
            args: Decode::decode(buf)?,
            range: Decode::decode(buf)?,
            cost: Decode::decode(buf)?,
        })
    }
}

impl Encode for ProfileEntry {
    fn encode(&self, buf: &mut BytesMut) {
        self.device.encode(buf);
        self.kernel.encode(buf);
        self.runs.encode(buf);
        self.mean_nanos.encode(buf);
        self.busy_nanos.encode(buf);
    }
}

impl Decode for ProfileEntry {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ProfileEntry {
            device: Decode::decode(buf)?,
            kernel: Decode::decode(buf)?,
            runs: Decode::decode(buf)?,
            mean_nanos: Decode::decode(buf)?,
            busy_nanos: Decode::decode(buf)?,
        })
    }
}

impl Encode for ApiReply {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ApiReply::Ack => buf.put_u8(0),
            ApiReply::Error { code, message } => {
                buf.put_u8(1);
                code.encode(buf);
                message.encode(buf);
            }
            ApiReply::NodeInfo { devices } => {
                buf.put_u8(2);
                devices.encode(buf);
            }
            ApiReply::Data { bytes } => {
                buf.put_u8(3);
                bytes.encode(buf);
            }
            ApiReply::BuildLog { ok, log, reports } => {
                buf.put_u8(4);
                ok.encode(buf);
                log.encode(buf);
                reports.encode(buf);
            }
            ApiReply::LaunchDone {
                start_nanos,
                end_nanos,
                instructions,
            } => {
                buf.put_u8(5);
                start_nanos.encode(buf);
                end_nanos.encode(buf);
                instructions.encode(buf);
            }
            ApiReply::Profile { entries } => {
                buf.put_u8(6);
                entries.encode(buf);
            }
            ApiReply::Pong { now_nanos } => {
                buf.put_u8(7);
                now_nanos.encode(buf);
            }
            ApiReply::KernelInfo { arity } => {
                buf.put_u8(8);
                arity.encode(buf);
            }
            ApiReply::DataModeled { len } => {
                buf.put_u8(9);
                len.encode(buf);
            }
        }
    }
}

impl Decode for ApiReply {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::UnexpectedEof { what: "ApiReply" });
        }
        Ok(match buf.get_u8() {
            0 => ApiReply::Ack,
            1 => ApiReply::Error {
                code: Decode::decode(buf)?,
                message: Decode::decode(buf)?,
            },
            2 => ApiReply::NodeInfo {
                devices: Decode::decode(buf)?,
            },
            3 => ApiReply::Data {
                bytes: Decode::decode(buf)?,
            },
            4 => ApiReply::BuildLog {
                ok: Decode::decode(buf)?,
                log: Decode::decode(buf)?,
                reports: Decode::decode(buf)?,
            },
            5 => ApiReply::LaunchDone {
                start_nanos: Decode::decode(buf)?,
                end_nanos: Decode::decode(buf)?,
                instructions: Decode::decode(buf)?,
            },
            6 => ApiReply::Profile {
                entries: Decode::decode(buf)?,
            },
            7 => ApiReply::Pong {
                now_nanos: Decode::decode(buf)?,
            },
            8 => ApiReply::KernelInfo {
                arity: Decode::decode(buf)?,
            },
            9 => ApiReply::DataModeled {
                len: Decode::decode(buf)?,
            },
            tag => {
                return Err(WireError::InvalidTag {
                    what: "ApiReply",
                    tag,
                })
            }
        })
    }
}

impl Encode for WireSpan {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.parent.encode(buf);
        self.name.encode(buf);
        self.category.encode(buf);
        self.start_nanos.encode(buf);
        self.end_nanos.encode(buf);
        self.wall_nanos.encode(buf);
    }
}

impl Decode for WireSpan {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(WireSpan {
            id: Decode::decode(buf)?,
            parent: Decode::decode(buf)?,
            name: Decode::decode(buf)?,
            category: Decode::decode(buf)?,
            start_nanos: Decode::decode(buf)?,
            end_nanos: Decode::decode(buf)?,
            wall_nanos: Decode::decode(buf)?,
        })
    }
}

impl Encode for Request {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.user.encode(buf);
        self.sent_at_nanos.encode(buf);
        self.trace_id.encode(buf);
        self.parent_span.encode(buf);
        self.epoch.encode(buf);
        self.attempt.encode(buf);
        self.body.encode(buf);
    }
}

impl Decode for Request {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Request {
            id: Decode::decode(buf)?,
            user: Decode::decode(buf)?,
            sent_at_nanos: Decode::decode(buf)?,
            trace_id: Decode::decode(buf)?,
            parent_span: Decode::decode(buf)?,
            epoch: Decode::decode(buf)?,
            attempt: Decode::decode(buf)?,
            body: Decode::decode(buf)?,
        })
    }
}

impl Encode for Response {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.completed_at_nanos.encode(buf);
        self.body.encode(buf);
        self.duplicate.encode(buf);
        self.spans.encode(buf);
    }
}

impl Decode for Response {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Response {
            id: Decode::decode(buf)?,
            completed_at_nanos: Decode::decode(buf)?,
            body: Decode::decode(buf)?,
            duplicate: Decode::decode(buf)?,
            spans: Decode::decode(buf)?,
        })
    }
}

impl Encode for Envelope {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Envelope::Single(request) => {
                buf.put_u8(0);
                request.encode(buf);
            }
            Envelope::Batch(requests) => {
                buf.put_u8(1);
                requests.encode(buf);
            }
        }
    }
}

impl Decode for Envelope {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::UnexpectedEof { what: "Envelope" });
        }
        Ok(match buf.get_u8() {
            0 => Envelope::Single(Decode::decode(buf)?),
            1 => Envelope::Batch(Decode::decode(buf)?),
            tag => {
                return Err(WireError::InvalidTag {
                    what: "Envelope",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_from_slice, encode_to_vec};

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        let back: T = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }

    fn sample_descriptor() -> DeviceDescriptor {
        DeviceDescriptor {
            index: 0,
            kind: DeviceKind::Gpu,
            name: "Tesla P4 (simulated)".to_string(),
            mem_bytes: 8 << 30,
            gflops: 5500.0,
            mem_bandwidth_gbps: 192.0,
            power_watts: 75.0,
        }
    }

    #[test]
    fn device_kinds_roundtrip() {
        roundtrip(DeviceKind::Cpu);
        roundtrip(DeviceKind::Gpu);
        roundtrip(DeviceKind::Fpga);
        assert_eq!(DeviceKind::Fpga.to_string(), "FPGA");
    }

    #[test]
    fn descriptor_roundtrips() {
        roundtrip(sample_descriptor());
    }

    #[test]
    fn every_api_call_roundtrips() {
        let calls = vec![
            ApiCall::Hello {
                client: "host".into(),
            },
            ApiCall::ListDevices,
            ApiCall::CreateBuffer {
                device: 1,
                buffer: BufferId::new(5),
                size: 1024,
            },
            ApiCall::ReleaseBuffer {
                device: 1,
                buffer: BufferId::new(5),
            },
            ApiCall::WriteBuffer {
                device: 0,
                buffer: BufferId::new(5),
                offset: 16,
                data: Bytes::from_static(b"payload"),
            },
            ApiCall::ReadBuffer {
                device: 0,
                buffer: BufferId::new(5),
                offset: 0,
                len: 128,
            },
            ApiCall::CopyBuffer {
                device: 0,
                src: BufferId::new(5),
                dst: BufferId::new(6),
                src_offset: 0,
                dst_offset: 64,
                len: 32,
            },
            ApiCall::BuildProgram {
                device: 0,
                program: ProgramId::new(1),
                source: "__kernel void f() {}".into(),
            },
            ApiCall::LoadBitstream {
                device: 2,
                program: ProgramId::new(2),
                kernels: vec!["matmul".into(), "spmv".into()],
            },
            ApiCall::CreateKernel {
                device: 0,
                kernel: KernelId::new(9),
                program: ProgramId::new(1),
                name: "f".into(),
            },
            ApiCall::LaunchKernel {
                device: 0,
                kernel: KernelId::new(9),
                args: vec![
                    WireArg::Buffer(BufferId::new(5)),
                    WireArg::F32(1.5),
                    WireArg::I32(-3),
                    WireArg::U64(u64::MAX),
                    WireArg::LocalBytes(256),
                ],
                range: WireNdRange {
                    work_dim: 2,
                    global: [1024, 1024, 1],
                    local: [16, 16, 1],
                },
                cost: WireCost {
                    flops: 2e9,
                    bytes_read: 1e6,
                    bytes_written: 5e5,
                    uniform: true,
                    streaming: false,
                },
                fidelity: Fidelity::Modeled,
                shared: true,
            },
            ApiCall::QueryProfile,
            ApiCall::Ping,
            ApiCall::Shutdown,
            ApiCall::CreateBufferModeled {
                device: 0,
                buffer: BufferId::new(8),
                size: 1 << 30,
            },
            ApiCall::WriteBufferModeled {
                device: 0,
                buffer: BufferId::new(8),
                offset: 0,
                len: 1 << 30,
            },
            ApiCall::ReadBufferModeled {
                device: 0,
                buffer: BufferId::new(8),
                offset: 4,
                len: 1 << 20,
            },
            ApiCall::PushBufferTo {
                device: 1,
                buffer: BufferId::new(5),
                peer_addr: "10.0.1.2:7101".into(),
                peer_device: 0,
                peer_buffer: BufferId::new(23),
                offset: 8,
                len: 4096,
                version: 7,
                epoch: 2,
                modeled: false,
            },
            ApiCall::PullBufferFrom {
                device: 0,
                buffer: BufferId::new(8),
                peer_addr: "10.0.2.1:7101".into(),
                peer_device: 3,
                peer_buffer: BufferId::new(31),
                offset: 0,
                len: 1 << 30,
                version: u64::MAX,
                epoch: 0,
                modeled: true,
            },
            ApiCall::LaunchFused {
                device: 1,
                fidelity: Fidelity::Full,
                shared: false,
                parts: vec![
                    WireLaunchPart {
                        kernel: KernelId::new(9),
                        args: vec![WireArg::Buffer(BufferId::new(5)), WireArg::I32(64)],
                        range: WireNdRange {
                            work_dim: 1,
                            global: [256, 1, 1],
                            local: [32, 1, 1],
                        },
                        cost: WireCost {
                            flops: 1e6,
                            bytes_read: 2e6,
                            bytes_written: 1e6,
                            uniform: true,
                            streaming: true,
                        },
                    },
                    WireLaunchPart {
                        kernel: KernelId::new(10),
                        args: vec![WireArg::Buffer(BufferId::new(5)), WireArg::F32(0.5)],
                        range: WireNdRange {
                            work_dim: 1,
                            global: [256, 1, 1],
                            local: [32, 1, 1],
                        },
                        cost: WireCost {
                            flops: 2e6,
                            bytes_read: 1e6,
                            bytes_written: 1e6,
                            uniform: true,
                            streaming: false,
                        },
                    },
                ],
            },
            ApiCall::SetThrottle {
                device: 2,
                factor: 3.5,
            },
            ApiCall::BeginDrain,
        ];
        for call in calls {
            roundtrip(call);
        }
    }

    #[test]
    fn every_api_reply_roundtrips() {
        let replies = vec![
            ApiReply::Ack,
            ApiReply::Error {
                code: status::INVALID_KERNEL_NAME,
                message: "no kernel `foo`".into(),
            },
            ApiReply::NodeInfo {
                devices: vec![sample_descriptor()],
            },
            ApiReply::Data {
                bytes: Bytes::from_static(&[1, 2, 3]),
            },
            ApiReply::BuildLog {
                ok: false,
                log: "3:1: error (parse): expected `;`".into(),
                reports: vec![WireKernelReport {
                    kernel: "matmul".into(),
                    errors: 1,
                    warnings: 2,
                    local_bytes: 4096,
                    barrier_count: 2,
                    arithmetic_intensity: 1.5,
                    divergence_score: 0.25,
                    effects: vec![
                        WireArgEffect {
                            mode: 3,
                            elem_bytes: 4,
                            bounded: true,
                            lo: 0,
                            hi: 1023,
                            complete: true,
                            patterns: vec![
                                WireAccessPattern {
                                    write: true,
                                    provable: true,
                                    coeffs: [1, 0, 0],
                                    base_kind: 1,
                                    base_id: 0,
                                    base_add: 0,
                                },
                                WireAccessPattern {
                                    write: false,
                                    provable: false,
                                    coeffs: [0, 0, 0],
                                    base_kind: 2,
                                    base_id: 0,
                                    base_add: 0,
                                },
                            ],
                        },
                        WireArgEffect {
                            mode: 0,
                            elem_bytes: 0,
                            bounded: false,
                            lo: 0,
                            hi: 0,
                            complete: true,
                            patterns: Vec::new(),
                        },
                    ],
                }],
            },
            ApiReply::LaunchDone {
                start_nanos: 10,
                end_nanos: 200,
                instructions: 4242,
            },
            ApiReply::Profile {
                entries: vec![ProfileEntry {
                    device: 0,
                    kernel: "matmul".into(),
                    runs: 12,
                    mean_nanos: 1_000_000,
                    busy_nanos: 12_000_000,
                }],
            },
            ApiReply::Pong { now_nanos: 77 },
            ApiReply::KernelInfo { arity: 5 },
            ApiReply::DataModeled { len: 1 << 30 },
        ];
        for reply in replies {
            roundtrip(reply);
        }
    }

    #[test]
    fn request_response_envelopes_roundtrip() {
        roundtrip(Request {
            id: RequestId::new(1),
            user: UserId::new(2),
            sent_at_nanos: 3,
            trace_id: 0,
            parent_span: 0,
            epoch: 0,
            attempt: 0,
            body: ApiCall::Ping,
        });
        roundtrip(Response {
            id: RequestId::new(1),
            completed_at_nanos: 99,
            body: ApiReply::Pong { now_nanos: 99 },
            duplicate: false,
            spans: Vec::new(),
        });
    }

    #[test]
    fn traced_request_and_spanned_response_roundtrip() {
        roundtrip(Request {
            id: RequestId::new(4),
            user: UserId::new(1),
            sent_at_nanos: 10,
            trace_id: 7,
            parent_span: 12,
            epoch: 2,
            attempt: 1,
            body: ApiCall::Ping,
        });
        // Node-derived span ids use the high bit — must survive intact.
        roundtrip(Response {
            id: RequestId::new(4),
            completed_at_nanos: 50,
            body: ApiReply::Pong { now_nanos: 50 },
            duplicate: true,
            spans: vec![
                WireSpan {
                    id: (1 << 63) | 64,
                    parent: 12,
                    name: "nmp.dispatch".into(),
                    category: "Dispatch".into(),
                    start_nanos: 20,
                    end_nanos: 45,
                    wall_nanos: 1_830,
                },
                WireSpan {
                    id: (1 << 63) | 65,
                    parent: (1 << 63) | 64,
                    name: "vm.run".into(),
                    category: "Compute".into(),
                    start_nanos: 25,
                    end_nanos: 44,
                    wall_nanos: 0,
                },
            ],
        });
        let traced = Request {
            id: RequestId::new(4),
            user: UserId::new(1),
            sent_at_nanos: 10,
            trace_id: 7,
            parent_span: 12,
            epoch: 0,
            attempt: 1,
            body: ApiCall::Ping,
        };
        assert!(traced.traced());
        assert!(traced.is_retry());
        assert!(!Request {
            attempt: 0,
            ..traced
        }
        .is_retry());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let err = decode_from_slice::<ApiCall>(&[200]).unwrap_err();
        assert!(matches!(
            err,
            WireError::InvalidTag {
                what: "ApiCall",
                tag: 200
            }
        ));
    }

    #[test]
    fn envelopes_roundtrip_and_unpack() {
        let request = |n: u64| Request {
            id: RequestId::new(n),
            user: UserId::new(1),
            sent_at_nanos: n * 10,
            trace_id: 0,
            parent_span: 0,
            epoch: 0,
            attempt: 0,
            body: ApiCall::Ping,
        };
        roundtrip(Envelope::Single(request(1)));
        roundtrip(Envelope::Batch(vec![request(1), request(2), request(3)]));

        // From<Vec<_>> collapses singletons into the cheaper variant.
        let single = Envelope::from(vec![request(7)]);
        assert_eq!(single, Envelope::Single(request(7)));
        assert_eq!(single.len(), 1);
        assert!(!single.is_empty());

        let batch = Envelope::from(vec![request(1), request(2)]);
        assert_eq!(batch.len(), 2);
        assert_eq!(
            batch.into_requests(),
            vec![request(1), request(2)],
            "submission order preserved"
        );
    }

    #[test]
    fn status_codes_match_opencl_values() {
        assert_eq!(status::SUCCESS, 0);
        assert_eq!(status::INVALID_VALUE, -30);
        assert_eq!(status::BUILD_PROGRAM_FAILURE, -11);
        assert_eq!(status::INVALID_KERNEL_NAME, -46);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::wire::{decode_from_slice, encode_to_vec};
    use proptest::prelude::*;

    fn arb_arg() -> impl Strategy<Value = WireArg> {
        prop_oneof![
            any::<f32>().prop_map(WireArg::F32),
            any::<f64>().prop_map(WireArg::F64),
            any::<i32>().prop_map(WireArg::I32),
            any::<u32>().prop_map(WireArg::U32),
            any::<i64>().prop_map(WireArg::I64),
            any::<u64>().prop_map(WireArg::U64),
            any::<u64>().prop_map(|v| WireArg::Buffer(BufferId::new(v))),
            any::<u64>().prop_map(WireArg::LocalBytes),
        ]
    }

    proptest! {
        #[test]
        fn launch_kernel_roundtrips(
            device in any::<u8>(),
            kernel in any::<u64>(),
            args in proptest::collection::vec(arb_arg(), 0..8),
            global in any::<[u64; 3]>(),
            local in any::<[u64; 3]>(),
            flops in 0.0f64..1e15,
            shared in any::<bool>(),
        ) {
            // NaN floats break PartialEq, so constrain flops; scalar args may
            // still carry NaN — compare via re-encoding instead.
            let call = ApiCall::LaunchKernel {
                device,
                kernel: KernelId::new(kernel),
                args,
                range: WireNdRange { work_dim: 3, global, local },
                cost: WireCost {
                    flops,
                    bytes_read: 0.0,
                    bytes_written: 0.0,
                    uniform: true,
                    streaming: false,
                },
                fidelity: Fidelity::Full,
                shared,
            };
            let bytes = encode_to_vec(&call);
            let back: ApiCall = decode_from_slice(&bytes).unwrap();
            prop_assert_eq!(encode_to_vec(&back), bytes);
        }

        #[test]
        fn garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode_from_slice::<ApiCall>(&data);
            let _ = decode_from_slice::<ApiReply>(&data);
            let _ = decode_from_slice::<Request>(&data);
            let _ = decode_from_slice::<Response>(&data);
            let _ = decode_from_slice::<Envelope>(&data);
        }

        #[test]
        fn request_roundtrips_with_epoch_and_attempt(
            id in any::<u64>(),
            user in any::<u32>(),
            sent in any::<u64>(),
            trace in any::<u64>(),
            parent in any::<u64>(),
            epoch in any::<u32>(),
            attempt in any::<u32>(),
        ) {
            let request = Request {
                id: RequestId::new(id),
                user: UserId::new(user),
                sent_at_nanos: sent,
                trace_id: trace,
                parent_span: parent,
                epoch,
                attempt,
                body: ApiCall::Ping,
            };
            let bytes = encode_to_vec(&request);
            let back: Request = decode_from_slice(&bytes).unwrap();
            prop_assert_eq!(back, request);
        }

        #[test]
        fn response_roundtrips_with_duplicate_flag(
            id in any::<u64>(),
            completed in any::<u64>(),
            duplicate in any::<bool>(),
            code in any::<i32>(),
        ) {
            let response = Response {
                id: RequestId::new(id),
                completed_at_nanos: completed,
                body: ApiReply::Error { code, message: "injected".into() },
                duplicate,
                spans: Vec::new(),
            };
            let bytes = encode_to_vec(&response);
            let back: Response = decode_from_slice(&bytes).unwrap();
            prop_assert_eq!(back, response);
        }

        #[test]
        fn truncated_frames_are_rejected_not_misread(
            cut in any::<usize>(),
            trailing in proptest::collection::vec(any::<u8>(), 0..16),
        ) {
            let request = Request {
                id: RequestId::new(7),
                user: UserId::new(3),
                sent_at_nanos: 11,
                trace_id: 5,
                parent_span: 9,
                epoch: 1,
                attempt: 2,
                body: ApiCall::WriteBuffer {
                    device: 0,
                    buffer: BufferId::new(1),
                    offset: 0,
                    data: Bytes::from(vec![0xAB; 64]),
                },
            };
            let full = encode_to_vec(&Envelope::Single(request));
            // Every strict prefix must fail to decode (the codec is
            // length-prefixed throughout — a cut frame can't silently
            // parse as a shorter valid message)…
            let cut = cut % full.len();
            prop_assert!(decode_from_slice::<Envelope>(&full[..cut]).is_err());
            // …and trailing garbage past a whole message is rejected by
            // decode_from_slice's exact-consumption check.
            if !trailing.is_empty() {
                let mut long = full.clone();
                long.extend_from_slice(&trailing);
                prop_assert!(decode_from_slice::<Envelope>(&long).is_err());
            }
        }
    }
}
