//! A compact hand-rolled binary codec.
//!
//! The paper's wrapper packs each API call by hand into a message package;
//! this module is the equivalent: little-endian fixed-width scalars,
//! length-prefixed strings/byte-blobs, `u8` tags for enums. No reflection,
//! no schema evolution — both ends are always the same build, exactly as
//! in the paper's deployment.

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEof {
        /// What was being decoded.
        what: &'static str,
    },
    /// An enum tag byte had no corresponding variant.
    InvalidTag {
        /// The enum being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// A length prefix exceeded the sanity limit.
    LengthOverflow {
        /// The claimed length.
        len: u64,
    },
    /// Trailing bytes remained after a complete decode.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { what } => {
                write!(f, "unexpected end of input while decoding {what}")
            }
            WireError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag} for {what}")
            }
            WireError::InvalidUtf8 => f.write_str("string field is not valid UTF-8"),
            WireError::LengthOverflow { len } => {
                write!(f, "length prefix {len} exceeds the message limit")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after message")
            }
        }
    }
}

impl Error for WireError {}

/// Maximum length accepted for any single length-prefixed field (guards
/// against corrupted prefixes allocating unbounded memory).
pub const MAX_FIELD_LEN: u64 = 1 << 32;

/// Serializes a value into a byte stream.
pub trait Encode {
    /// Appends this value's encoding to `buf`.
    fn encode(&self, buf: &mut BytesMut);
}

/// Deserializes a value from a byte stream.
pub trait Decode: Sized {
    /// Consumes this value's encoding from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the bytes do not form a valid encoding.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh `Vec<u8>`.
pub fn encode_to_vec<T: Encode>(value: &T) -> Vec<u8> {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.to_vec()
}

/// Encodes a value into [`Bytes`].
pub fn encode_to_bytes<T: Encode>(value: &T) -> Bytes {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.freeze()
}

/// Encodes a value by appending to an existing vector without copying
/// it — the pooled wire path encodes straight into a recycled frame
/// buffer this way.
pub fn encode_into_vec<T: Encode>(value: &T, out: &mut Vec<u8>) {
    let mut buf = BytesMut::from_vec(std::mem::take(out));
    value.encode(&mut buf);
    *out = buf.into_vec();
}

/// Decodes exactly one value from `bytes`, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed input or leftover bytes.
pub fn decode_from_slice<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let v = T::decode(&mut buf)?;
    if !buf.is_empty() {
        return Err(WireError::TrailingBytes {
            remaining: buf.remaining(),
        });
    }
    Ok(v)
}

fn need(buf: &Bytes, n: usize, what: &'static str) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::UnexpectedEof { what })
    } else {
        Ok(())
    }
}

macro_rules! scalar_codec {
    ($t:ty, $put:ident, $get:ident, $what:literal) => {
        impl Encode for $t {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
        }

        impl Decode for $t {
            fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
                need(buf, std::mem::size_of::<$t>(), $what)?;
                Ok(buf.$get())
            }
        }
    };
}

scalar_codec!(u8, put_u8, get_u8, "u8");
scalar_codec!(u16, put_u16_le, get_u16_le, "u16");
scalar_codec!(u32, put_u32_le, get_u32_le, "u32");
scalar_codec!(u64, put_u64_le, get_u64_le, "u64");
scalar_codec!(i32, put_i32_le, get_i32_le, "i32");
scalar_codec!(i64, put_i64_le, get_i64_le, "i64");
scalar_codec!(f32, put_f32_le, get_f32_le, "f32");
scalar_codec!(f64, put_f64_le, get_f64_le, "f64");

impl Encode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1, "bool")?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag { what: "bool", tag }),
        }
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u64).encode(buf);
        buf.put_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u64::decode(buf)?;
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthOverflow { len });
        }
        need(buf, len as usize, "string body")?;
        let raw = buf.split_to(len as usize);
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

impl Encode for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u64).encode(buf);
        buf.put_slice(self);
    }
}

impl Decode for Bytes {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u64::decode(buf)?;
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthOverflow { len });
        }
        need(buf, len as usize, "bytes body")?;
        Ok(buf.split_to(len as usize))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u64::decode(buf)?;
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthOverflow { len });
        }
        let mut out = Vec::with_capacity((len as usize).min(4096));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1, "option tag")?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            tag => Err(WireError::InvalidTag {
                what: "option",
                tag,
            }),
        }
    }
}

impl<const N: usize, T: Encode> Encode for [T; N] {
    fn encode(&self, buf: &mut BytesMut) {
        for item in self {
            item.encode(buf);
        }
    }
}

impl<const N: usize, T: Decode + Default + Copy> Decode for [T; N] {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::decode(buf)?;
        }
        Ok(out)
    }
}

// ID newtypes encode as their raw integers.
macro_rules! id_codec {
    ($($name:path),* $(,)?) => {
        $(
            impl Encode for $name {
                fn encode(&self, buf: &mut BytesMut) {
                    self.raw().encode(buf);
                }
            }

            impl Decode for $name {
                fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
                    Ok(<$name>::new(Decode::decode(buf)?))
                }
            }
        )*
    };
}

id_codec!(
    crate::ids::NodeId,
    crate::ids::UserId,
    crate::ids::BufferId,
    crate::ids::ProgramId,
    crate::ids::KernelId,
    crate::ids::QueueId,
    crate::ids::EventId,
    crate::ids::RequestId,
);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        let back: T = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN);
        roundtrip(1.5f32);
        roundtrip(-2.25f64);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn strings_and_bytes_roundtrip() {
        roundtrip(String::new());
        roundtrip("héllo wörld".to_string());
        roundtrip(Bytes::from_static(b"\x00\x01\xff"));
        roundtrip(Bytes::new());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(9u32));
        roundtrip(Option::<u32>::None);
        roundtrip([1u64, 2, 3]);
    }

    #[test]
    fn ids_roundtrip() {
        roundtrip(crate::ids::BufferId::new(77));
        roundtrip(crate::ids::NodeId::new(3));
    }

    #[test]
    fn truncated_input_is_eof() {
        let bytes = encode_to_vec(&12345u64);
        let err = decode_from_slice::<u64>(&bytes[..4]).unwrap_err();
        assert!(matches!(err, WireError::UnexpectedEof { .. }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&1u8);
        bytes.push(0);
        let err = decode_from_slice::<u8>(&bytes).unwrap_err();
        assert_eq!(err, WireError::TrailingBytes { remaining: 1 });
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let err = decode_from_slice::<bool>(&[2]).unwrap_err();
        assert!(matches!(
            err,
            WireError::InvalidTag {
                what: "bool",
                tag: 2
            }
        ));
    }

    #[test]
    fn corrupt_length_prefix_rejected() {
        // A string claiming u64::MAX bytes must not attempt allocation.
        let bytes = encode_to_vec(&u64::MAX);
        let err = decode_from_slice::<String>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::LengthOverflow { .. }));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        2u64.encode(&mut buf);
        buf.put_slice(&[0xff, 0xfe]);
        let err = decode_from_slice::<String>(&buf.to_vec()).unwrap_err();
        assert_eq!(err, WireError::InvalidUtf8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn any_u64_roundtrips(v in any::<u64>()) {
            let bytes = encode_to_vec(&v);
            prop_assert_eq!(decode_from_slice::<u64>(&bytes).unwrap(), v);
        }

        #[test]
        fn any_string_roundtrips(s in ".*") {
            let v = s.to_string();
            let bytes = encode_to_vec(&v);
            prop_assert_eq!(decode_from_slice::<String>(&bytes).unwrap(), v);
        }

        #[test]
        fn any_vec_roundtrips(v in proptest::collection::vec(any::<i64>(), 0..64)) {
            let bytes = encode_to_vec(&v);
            prop_assert_eq!(decode_from_slice::<Vec<i64>>(&bytes).unwrap(), v);
        }

        #[test]
        fn random_bytes_never_panic_decoding(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding arbitrary garbage may fail but must not panic.
            let _ = decode_from_slice::<String>(&data);
            let _ = decode_from_slice::<Vec<u32>>(&data);
            let _ = decode_from_slice::<Option<u64>>(&data);
        }
    }
}
