//! Compute-currency normalization.
//!
//! Observed kernel timings live in device-local units: "500 µs on a
//! GPU" and "500 µs on an FPGA" describe very different amounts of
//! work. To compare candidates across device classes the scheduler
//! needs *exchange rates* — how much slower or faster one class is than
//! another at the workloads this cluster actually runs.
//!
//! [`CurrencyTable::from_profile`] derives those rates from the
//! [`ProfileDb`](crate::ProfileDb): every kernel with warm observations
//! on two or more device classes votes with its timing ratio, and the
//! per-class rate is the geometric mean of the votes (geometric, so a
//! kernel that is 4× slower and one that is 4× faster cancel exactly).
//! Rates are expressed relative to a base class — the GPU when one has
//! warm data, else the first class in a fixed order — with
//! `rate(base) == 1.0`; a rate of `3.0` means "this class takes 3× the
//! base class's time for the same work".
//!
//! [`CurrencyTable::convert`] then transfers a warm observation from
//! one class onto another, which is how a candidate device that has
//! never run a kernel can still get a *measured* (rather than modelled)
//! prediction: `sched::policy` attributes such predictions to
//! [`PredictionSource::Currency`](haocl_obs::PredictionSource).

use std::collections::BTreeMap;

use haocl_proto::messages::DeviceKind;
use haocl_sim::SimDuration;

use crate::ProfileDb;

/// The fixed base-class preference order: the first kind in this list
/// with any warm observation anchors the table at rate 1.0.
const BASE_ORDER: [DeviceKind; 3] = [DeviceKind::Gpu, DeviceKind::Cpu, DeviceKind::Fpga];

/// Device-class exchange rates derived from shared-kernel timings.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrencyTable {
    base: Option<DeviceKind>,
    /// rate ↦ how many base-class seconds one second of this class's
    /// work is worth (keyed by the debug name for deterministic order).
    rates: BTreeMap<String, (DeviceKind, f64)>,
}

impl CurrencyTable {
    /// Derives the table from every kernel the profile has observed warm
    /// on at least two device classes. Returns an empty table (no rates)
    /// when no class pair shares a kernel yet.
    pub fn from_profile(profile: &ProfileDb) -> Self {
        let mut observed: BTreeMap<String, Vec<(DeviceKind, f64)>> = BTreeMap::new();
        for kernel in profile.warm_kernels() {
            let warm = profile.warm_observations(&kernel);
            if warm.len() >= 2 {
                observed.insert(
                    kernel,
                    warm.into_iter()
                        .map(|(k, d)| (k, d.as_nanos() as f64))
                        .collect(),
                );
            }
        }
        let base = BASE_ORDER
            .into_iter()
            .find(|b| observed.values().any(|obs| obs.iter().any(|(k, _)| k == b)));
        let Some(base) = base else {
            return CurrencyTable {
                base: None,
                rates: BTreeMap::new(),
            };
        };
        // Geometric mean of per-kernel ratios t_kind / t_base.
        let mut log_sums: BTreeMap<String, (DeviceKind, f64, u32)> = BTreeMap::new();
        for obs in observed.values() {
            let Some(&(_, base_nanos)) = obs.iter().find(|(k, _)| *k == base) else {
                continue;
            };
            if base_nanos <= 0.0 {
                continue;
            }
            for &(kind, nanos) in obs {
                if nanos <= 0.0 {
                    continue;
                }
                let slot = log_sums
                    .entry(format!("{kind:?}"))
                    .or_insert((kind, 0.0, 0));
                slot.1 += (nanos / base_nanos).ln();
                slot.2 += 1;
            }
        }
        let rates = log_sums
            .into_iter()
            .map(|(name, (kind, log_sum, n))| (name, (kind, (log_sum / f64::from(n.max(1))).exp())))
            .collect();
        CurrencyTable {
            base: Some(base),
            rates,
        }
    }

    /// The class the table is anchored on (`rate == 1.0`), if any rates
    /// exist.
    pub fn base(&self) -> Option<DeviceKind> {
        self.base
    }

    /// The exchange rate for a class: how many base-class time units one
    /// of its time units is worth. `None` until some kernel links the
    /// class to the base class.
    pub fn rate(&self, kind: DeviceKind) -> Option<f64> {
        self.rates.get(&format!("{kind:?}")).map(|&(_, r)| r)
    }

    /// Every known rate, ordered by class name — for export as the
    /// `haocl_compute_currency_rate_milli` gauge series.
    pub fn rates(&self) -> Vec<(DeviceKind, f64)> {
        self.rates.values().copied().collect()
    }

    /// Transfers a duration observed on `from` onto `to` through the
    /// exchange rates: the same amount of work, re-priced in the other
    /// class's time. `None` unless both classes have rates.
    pub fn convert(
        &self,
        duration: SimDuration,
        from: DeviceKind,
        to: DeviceKind,
    ) -> Option<SimDuration> {
        let from_rate = self.rate(from)?;
        let to_rate = self.rate(to)?;
        if from_rate <= 0.0 {
            return None;
        }
        Some(SimDuration::from_nanos(
            (duration.as_nanos() as f64 * to_rate / from_rate) as u64,
        ))
    }

    /// Whether any cross-class rate exists yet.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warm(db: &ProfileDb, kernel: &str, kind: DeviceKind, nanos: u64) {
        db.record(kernel, kind, SimDuration::from_nanos(nanos));
        db.record(kernel, kind, SimDuration::from_nanos(nanos));
    }

    #[test]
    fn empty_profile_yields_no_rates() {
        let table = CurrencyTable::from_profile(&ProfileDb::new());
        assert!(table.is_empty());
        assert_eq!(table.base(), None);
        assert_eq!(table.rate(DeviceKind::Gpu), None);
    }

    #[test]
    fn single_class_profile_yields_no_rates() {
        let db = ProfileDb::new();
        warm(&db, "k", DeviceKind::Gpu, 100);
        let table = CurrencyTable::from_profile(&db);
        assert!(table.is_empty(), "no kernel links two classes");
    }

    #[test]
    fn shared_kernel_derives_exchange_rates() {
        let db = ProfileDb::new();
        warm(&db, "k", DeviceKind::Gpu, 100);
        warm(&db, "k", DeviceKind::Cpu, 400);
        let table = CurrencyTable::from_profile(&db);
        assert_eq!(table.base(), Some(DeviceKind::Gpu));
        assert!((table.rate(DeviceKind::Gpu).unwrap() - 1.0).abs() < 1e-9);
        assert!((table.rate(DeviceKind::Cpu).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rates_are_geometric_means_over_kernels() {
        let db = ProfileDb::new();
        // One kernel says the CPU is 2× slower, another says 8× slower:
        // the geometric mean is 4×.
        warm(&db, "a", DeviceKind::Gpu, 100);
        warm(&db, "a", DeviceKind::Cpu, 200);
        warm(&db, "b", DeviceKind::Gpu, 100);
        warm(&db, "b", DeviceKind::Cpu, 800);
        let table = CurrencyTable::from_profile(&db);
        assert!((table.rate(DeviceKind::Cpu).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn convert_transfers_work_between_classes() {
        let db = ProfileDb::new();
        warm(&db, "k", DeviceKind::Gpu, 100);
        warm(&db, "k", DeviceKind::Cpu, 400);
        let table = CurrencyTable::from_profile(&db);
        // 1 ms of GPU work costs 4 ms of CPU time…
        assert_eq!(
            table.convert(
                SimDuration::from_millis(1),
                DeviceKind::Gpu,
                DeviceKind::Cpu
            ),
            Some(SimDuration::from_millis(4))
        );
        // …and the reverse trip divides.
        assert_eq!(
            table.convert(
                SimDuration::from_millis(4),
                DeviceKind::Cpu,
                DeviceKind::Gpu
            ),
            Some(SimDuration::from_millis(1))
        );
        // No FPGA kernel linked yet — no conversion.
        assert_eq!(
            table.convert(
                SimDuration::from_millis(1),
                DeviceKind::Gpu,
                DeviceKind::Fpga
            ),
            None
        );
    }
}
