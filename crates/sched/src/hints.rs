//! Static placement hints derived from compile-time kernel analysis.
//!
//! The compiler's analyzer attaches a feature vector to every kernel it
//! builds (`__local` bytes, barrier count, arithmetic intensity,
//! divergence score), and device nodes forward it in their build replies
//! as [`WireKernelReport`]s. [`seed_from_report`] converts that vector
//! into per-device-class durations planted in the [`ProfileDb`], so the
//! heterogeneity-aware policy makes informed placements *before the first
//! launch of a kernel* — once real observations warm up, they displace
//! the seeds (see [`ProfileDb::seed`]).

use haocl_proto::messages::{DeviceKind, WireKernelReport};
use haocl_sim::SimDuration;

use crate::profile::ProfileDb;

/// Common scale for seeded durations. Only the *ordering* between device
/// classes matters for placement; observed profiles replace these
/// magnitudes as soon as they warm up.
const BASE_NANOS: f64 = 1_000_000.0;

/// Plants per-class predictions for `report.kernel` in `db`.
///
/// The mapping encodes coarse architectural folklore, deliberately
/// simple and fully static:
///
/// * GPUs win on compute-bound kernels (high arithmetic intensity), but
///   work-item-dependent control flow serialises their lockstep lanes,
///   so the divergence score discounts them.
/// * FPGAs (streaming pipelines in the paper's cluster) win on
///   memory-bound streaming kernels, but work-group barriers and
///   `__local` tiling have no mapping onto a deep pipeline — kernels
///   using either are penalised to near-ineligibility.
/// * The CPU is the steady baseline that neither penalty touches.
pub fn seed_from_report(db: &ProfileDb, report: &WireKernelReport) {
    // 0 → fully memory-bound, → 1 as flops/byte grows.
    let compute_bound = report.arithmetic_intensity / (report.arithmetic_intensity + 1.0);
    let cpu_speed = 1.0;
    let mut gpu_speed = 3.0 + 5.0 * compute_bound;
    let mut fpga_speed = 2.0 + 4.0 * (1.0 - compute_bound);
    gpu_speed /= 1.0 + 4.0 * report.divergence_score;
    if report.barrier_count > 0 || report.local_bytes > 0 {
        fpga_speed *= 0.05;
    }
    for (kind, speed) in [
        (DeviceKind::Cpu, cpu_speed),
        (DeviceKind::Gpu, gpu_speed),
        (DeviceKind::Fpga, fpga_speed),
    ] {
        let nanos = (BASE_NANOS / speed).max(1.0) as u64;
        db.seed(&report.kernel, kind, SimDuration::from_nanos(nanos));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(kernel: &str) -> WireKernelReport {
        WireKernelReport {
            kernel: kernel.into(),
            ..WireKernelReport::default()
        }
    }

    #[test]
    fn memory_bound_streaming_kernel_seeds_fpga_fastest() {
        let db = ProfileDb::new();
        seed_from_report(&db, &report("spmv"));
        let fpga = db.predict("spmv", DeviceKind::Fpga).unwrap();
        let gpu = db.predict("spmv", DeviceKind::Gpu).unwrap();
        let cpu = db.predict("spmv", DeviceKind::Cpu).unwrap();
        assert!(fpga < gpu, "{fpga} vs {gpu}");
        assert!(gpu < cpu, "{gpu} vs {cpu}");
    }

    #[test]
    fn barriers_push_the_kernel_off_the_fpga() {
        let db = ProfileDb::new();
        let mut r = report("tiled");
        r.barrier_count = 2;
        r.local_bytes = 4096;
        seed_from_report(&db, &r);
        let fpga = db.predict("tiled", DeviceKind::Fpga).unwrap();
        let cpu = db.predict("tiled", DeviceKind::Cpu).unwrap();
        assert!(fpga > cpu, "barrier kernels must not look FPGA-friendly");
    }

    #[test]
    fn divergence_discounts_the_gpu() {
        let db = ProfileDb::new();
        let mut r = report("branchy");
        r.arithmetic_intensity = 8.0;
        r.divergence_score = 0.9;
        seed_from_report(&db, &r);
        let db2 = ProfileDb::new();
        let mut r2 = report("branchy");
        r2.arithmetic_intensity = 8.0;
        seed_from_report(&db2, &r2);
        let divergent = db.predict("branchy", DeviceKind::Gpu).unwrap();
        let uniform = db2.predict("branchy", DeviceKind::Gpu).unwrap();
        assert!(divergent > uniform);
    }
}
