//! The extensible task scheduling component (paper §III-B).
//!
//! The demo paper ships *user-directed* placement and sketches an
//! upgrade path: "it can be upgraded to an automatic scheduler with the
//! runtime profiling information from the cluster to enable more accurate
//! heterogeneity-aware task scheduling." This crate implements both the
//! shipped behaviour and that upgrade:
//!
//! * [`task`] — [`TaskSpec`] (one kernel launch as the scheduler sees it)
//!   and [`task::TaskGraph`] (the dependency DAG of Fig. 1).
//! * [`monitor`] — [`DeviceView`]: the host-side snapshot of every device
//!   in the cluster (model summary + load + data locality + advisory
//!   health), and [`DriftDetector`]: per-node z-score/ratio tests over
//!   rolling launch-timing windows that flag sub-healthy devices.
//! * [`profile`] — [`ProfileDb`]: per-(kernel, device-class) rolling
//!   EWMA + variance windows of observed execution times, recalibrated
//!   online on every completed launch, with geometrically decaying
//!   static seeds.
//! * [`currency`] — [`CurrencyTable`]: device-class exchange rates
//!   derived from shared-kernel timings, so candidates on different
//!   classes compare in common units.
//! * [`hints`] — [`seed_from_report`]: converts the compiler's static
//!   kernel feature vectors into cold-start [`ProfileDb`] seeds, so
//!   placement is informed before the first launch.
//! * [`policy`] — the object-safe [`SchedulingPolicy`] trait users extend
//!   with their own algorithms.
//! * [`policies`] — six built-ins: user-directed, round-robin,
//!   least-loaded, heterogeneity-aware (profile + model driven),
//!   power-aware and locality-aware.
//! * [`quarantine`] — [`QuarantineTracker`]: per-node failure strikes
//!   (fed by the host runtime's failover epochs) that demote flapping
//!   nodes out of the candidate set while alternatives exist.
//! * [`tenancy`] — the multi-tenant arbitration tier *above* placement:
//!   [`TenantScheduler`] (weighted fair queueing over bounded per-tenant
//!   queues), [`QuotaLedger`] (device-memory quotas) and the typed
//!   [`AdmitError`] shed reasons — placement decides *where*, tenancy
//!   decides *whose* and *whether at all*.
//!
//! # Examples
//!
//! ```
//! use haocl_sched::{policies, DeviceView, ProfileDb, Scheduler, TaskSpec};
//! use haocl_kernel::CostModel;
//! use haocl_proto::messages::DeviceKind;
//!
//! let scheduler = Scheduler::new(Box::new(policies::HeteroAware::new()));
//! let devices = vec![
//!     DeviceView::sample(0, 0, DeviceKind::Gpu),
//!     DeviceView::sample(1, 0, DeviceKind::Fpga),
//! ];
//! // A streaming task lands on the FPGA.
//! let task = TaskSpec::new("spmv_compute")
//!     .cost(CostModel::new().flops(1e9).bytes_read(1e6).streaming())
//!     .fpga_eligible(true);
//! let choice = scheduler.place(&task, &devices)?;
//! assert_eq!(devices[choice].kind, DeviceKind::Fpga);
//! # Ok::<(), haocl_sched::SchedError>(())
//! ```

pub mod currency;
pub mod hints;
pub mod monitor;
pub mod policies;
pub mod policy;
pub mod profile;
pub mod quarantine;
pub mod task;
pub mod tenancy;

pub use currency::CurrencyTable;
pub use hints::seed_from_report;
pub use monitor::{DeviceView, DriftDetector, DriftEvent};
pub use policy::{SchedError, Scheduler, SchedulingPolicy};
pub use profile::{ProfileDb, ProfileSnapshotEntry, ProfileStats};
pub use quarantine::{NodeCondition, QuarantineTracker, DEFAULT_QUARANTINE_THRESHOLD};
pub use task::TaskSpec;
pub use tenancy::{
    normalized_cost_nanos, AdmitError, QuotaLedger, TenantQuota, TenantScheduler, TenantSpec,
    TenantStats,
};
