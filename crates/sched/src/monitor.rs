//! Host-side runtime view of the cluster's devices.

use haocl_proto::ids::NodeId;
use haocl_proto::messages::{DeviceDescriptor, DeviceKind};
use haocl_sim::SimTime;

/// The scheduler's snapshot of one device: its advertised model plus the
/// load and locality information the runtime monitor maintains.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceView {
    /// The node hosting the device.
    pub node: NodeId,
    /// Device index within the node.
    pub device: u8,
    /// Device class.
    pub kind: DeviceKind,
    /// Peak single-precision throughput, GFLOP/s (from the descriptor).
    pub gflops: f64,
    /// Memory bandwidth, GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Load power, watts.
    pub power_watts: f64,
    /// Device memory capacity, bytes.
    pub mem_bytes: u64,
    /// When the device's queue drains (virtual time).
    pub busy_until: SimTime,
    /// Launches currently queued.
    pub queue_depth: u32,
    /// Bytes of the *current task's* input already resident on this
    /// device (computed per task by the runtime before placement).
    pub local_bytes: u64,
}

impl DeviceView {
    /// Builds a view from a wire descriptor with an idle load state.
    pub fn from_descriptor(node: NodeId, d: &DeviceDescriptor) -> Self {
        DeviceView {
            node,
            device: d.index,
            kind: d.kind,
            gflops: d.gflops,
            mem_bandwidth_gbps: d.mem_bandwidth_gbps,
            power_watts: d.power_watts,
            mem_bytes: d.mem_bytes,
            busy_until: SimTime::ZERO,
            queue_depth: 0,
            local_bytes: 0,
        }
    }

    /// A representative idle device of the given class (for tests,
    /// examples and policy documentation).
    pub fn sample(node: u32, device: u8, kind: DeviceKind) -> Self {
        let (gflops, bw, watts, mem) = match kind {
            DeviceKind::Cpu => (1000.0, 70.0, 145.0, 64u64 << 30),
            DeviceKind::Gpu => (5500.0, 192.0, 75.0, 8 << 30),
            DeviceKind::Fpga => (1800.0, 60.0, 45.0, 16 << 30),
        };
        DeviceView {
            node: NodeId::new(node),
            device,
            kind,
            gflops,
            mem_bandwidth_gbps: bw,
            power_watts: watts,
            mem_bytes: mem,
            busy_until: SimTime::ZERO,
            queue_depth: 0,
            local_bytes: 0,
        }
    }

    /// Sets the load state (builder-style, for constructing snapshots).
    pub fn loaded(mut self, busy_until: SimTime, queue_depth: u32) -> Self {
        self.busy_until = busy_until;
        self.queue_depth = queue_depth;
        self
    }

    /// Sets the resident-data figure for the task under placement.
    pub fn with_local_bytes(mut self, bytes: u64) -> Self {
        self.local_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_descriptor_copies_model() {
        let d = DeviceDescriptor {
            index: 2,
            kind: DeviceKind::Fpga,
            name: "x".into(),
            mem_bytes: 1024,
            gflops: 1800.0,
            mem_bandwidth_gbps: 60.0,
            power_watts: 45.0,
        };
        let v = DeviceView::from_descriptor(NodeId::new(7), &d);
        assert_eq!(v.node, NodeId::new(7));
        assert_eq!(v.device, 2);
        assert_eq!(v.kind, DeviceKind::Fpga);
        assert_eq!(v.mem_bytes, 1024);
        assert_eq!(v.busy_until, SimTime::ZERO);
        assert_eq!(v.queue_depth, 0);
    }

    #[test]
    fn builders_set_load_and_locality() {
        let v = DeviceView::sample(0, 0, DeviceKind::Gpu)
            .loaded(SimTime::from_nanos(10), 3)
            .with_local_bytes(4096);
        assert_eq!(v.busy_until, SimTime::from_nanos(10));
        assert_eq!(v.queue_depth, 3);
        assert_eq!(v.local_bytes, 4096);
    }
}
