//! Host-side runtime view of the cluster's devices, plus the drift
//! detector that watches per-node launch timings for sub-healthy
//! behaviour (thermal throttling, retry storms) the descriptor can't
//! advertise.

use std::collections::BTreeMap;

use haocl_proto::ids::NodeId;
use haocl_proto::messages::{DeviceDescriptor, DeviceKind};
use haocl_sim::SimTime;
use parking_lot::Mutex;

/// The scheduler's snapshot of one device: its advertised model plus the
/// load and locality information the runtime monitor maintains.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceView {
    /// The node hosting the device.
    pub node: NodeId,
    /// The hosting node's cluster name (empty when unknown — audit
    /// records then fall back to a synthetic `node<id>` label).
    pub node_name: String,
    /// Device index within the node.
    pub device: u8,
    /// Device class.
    pub kind: DeviceKind,
    /// Peak single-precision throughput, GFLOP/s (from the descriptor).
    pub gflops: f64,
    /// Memory bandwidth, GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Load power, watts.
    pub power_watts: f64,
    /// Device memory capacity, bytes.
    pub mem_bytes: u64,
    /// When the device's queue drains (virtual time).
    pub busy_until: SimTime,
    /// Launches currently queued.
    pub queue_depth: u32,
    /// Bytes of the *current task's* input already resident on this
    /// device (computed per task by the runtime before placement).
    pub local_bytes: u64,
    /// Advisory health multiplier applied to predicted run times by the
    /// cost-driven policies: `1.0` for a healthy device, `> 1.0` (the
    /// measured slowdown ratio) while the drift detector holds the node
    /// in the `Degraded` state. Down-weights, never bans.
    pub health_penalty: f64,
}

impl DeviceView {
    /// Builds a view from a wire descriptor with an idle load state.
    pub fn from_descriptor(node: NodeId, d: &DeviceDescriptor) -> Self {
        DeviceView {
            node,
            node_name: String::new(),
            device: d.index,
            kind: d.kind,
            gflops: d.gflops,
            mem_bandwidth_gbps: d.mem_bandwidth_gbps,
            power_watts: d.power_watts,
            mem_bytes: d.mem_bytes,
            busy_until: SimTime::ZERO,
            queue_depth: 0,
            local_bytes: 0,
            health_penalty: 1.0,
        }
    }

    /// A representative idle device of the given class (for tests,
    /// examples and policy documentation).
    pub fn sample(node: u32, device: u8, kind: DeviceKind) -> Self {
        let (gflops, bw, watts, mem) = match kind {
            DeviceKind::Cpu => (1000.0, 70.0, 145.0, 64u64 << 30),
            DeviceKind::Gpu => (5500.0, 192.0, 75.0, 8 << 30),
            DeviceKind::Fpga => (1800.0, 60.0, 45.0, 16 << 30),
        };
        DeviceView {
            node: NodeId::new(node),
            node_name: String::new(),
            device,
            kind,
            gflops,
            mem_bandwidth_gbps: bw,
            power_watts: watts,
            mem_bytes: mem,
            busy_until: SimTime::ZERO,
            queue_depth: 0,
            local_bytes: 0,
            health_penalty: 1.0,
        }
    }

    /// Sets the cluster node name used in audit records (builder-style).
    pub fn named(mut self, name: &str) -> Self {
        self.node_name = name.to_string();
        self
    }

    /// Sets the load state (builder-style, for constructing snapshots).
    pub fn loaded(mut self, busy_until: SimTime, queue_depth: u32) -> Self {
        self.busy_until = busy_until;
        self.queue_depth = queue_depth;
        self
    }

    /// Sets the resident-data figure for the task under placement.
    pub fn with_local_bytes(mut self, bytes: u64) -> Self {
        self.local_bytes = bytes;
        self
    }

    /// Sets the advisory health multiplier (builder-style). Values are
    /// clamped to at least `1.0` — health never makes a device look
    /// *faster* than measured.
    pub fn with_health_penalty(mut self, penalty: f64) -> Self {
        self.health_penalty = penalty.max(1.0);
        self
    }
}

/// Recent timings must exceed the node's own baseline by this ratio
/// before a degradation strike is counted.
pub const DEGRADE_RATIO: f64 = 1.35;

/// Recent timings must fall back within this ratio of baseline before a
/// recovery strike is counted.
pub const RECOVER_RATIO: f64 = 1.15;

/// Secondary z-score gate: the recent mean must also sit this many
/// (floored) standard deviations above baseline.
pub const DRIFT_Z_THRESHOLD: f64 = 3.0;

/// Observations per `(kernel, node)` key used to freeze the healthy
/// baseline before drift testing begins.
const BASELINE_RUNS: u32 = 3;

/// Consecutive out-of-band observations before a key flips state, in
/// either direction — a debounce against one-off hiccups.
const STRIKES_TO_FLIP: u32 = 3;

/// Fast EWMA weight for the post-baseline "recent" window.
const RECENT_ALPHA: f64 = 0.5;

/// Relative floor on the baseline standard deviation. The simulator is
/// deterministic, so a healthy baseline's variance is often *exactly*
/// zero; the floor keeps z-scores finite while still letting any real
/// drift blow far past [`DRIFT_Z_THRESHOLD`].
const STD_FLOOR_FRACTION: f64 = 0.01;

/// One `(kernel, node)` timing window.
#[derive(Debug, Clone, Copy, Default)]
struct KeyWindow {
    samples: u32,
    baseline_mean: f64,
    /// Welford sum of squared deviations accumulated during baselining.
    baseline_m2: f64,
    recent: f64,
    degraded: bool,
    high_strikes: u32,
    low_strikes: u32,
}

impl KeyWindow {
    fn ratio(&self) -> f64 {
        if self.baseline_mean > 0.0 {
            self.recent / self.baseline_mean
        } else {
            1.0
        }
    }

    fn z_score(&self) -> f64 {
        if self.samples < BASELINE_RUNS || self.baseline_mean <= 0.0 {
            return 0.0;
        }
        let var = self.baseline_m2 / f64::from(BASELINE_RUNS.saturating_sub(1).max(1));
        let floor = STD_FLOOR_FRACTION * self.baseline_mean;
        let std = var.sqrt().max(floor).max(1.0);
        (self.recent - self.baseline_mean) / std
    }
}

/// A node-level health transition reported by [`DriftDetector::observe`].
#[derive(Debug, Clone, PartialEq)]
pub enum DriftEvent {
    /// The node's first timing window drifted out of band.
    Degraded {
        /// The affected node.
        node: NodeId,
        /// Recent-over-baseline slowdown ratio of the triggering window.
        ratio: f64,
    },
    /// The node's last out-of-band window returned to baseline.
    Recovered {
        /// The recovered node.
        node: NodeId,
    },
}

#[derive(Debug, Default)]
struct DriftInner {
    keys: BTreeMap<(String, u32), KeyWindow>,
    /// Per-node count of currently degraded keys.
    degraded_counts: BTreeMap<u32, u32>,
}

/// Per-node drift detector over the rolling launch-timing windows.
///
/// Each `(kernel, node)` pair freezes its own healthy baseline from the
/// first few observations, then runs a ratio test (primary) and a
/// z-score test (secondary, with a variance floor for the deterministic
/// simulator) against a fast EWMA of recent timings. [`STRIKES_TO_FLIP`]
/// consecutive out-of-band readings flip the key; a node is *degraded*
/// while any of its keys is. Verdicts are advisory — the scheduler
/// down-weights degraded candidates via
/// [`DeviceView::health_penalty`], it does not ban them.
#[derive(Debug, Default)]
pub struct DriftDetector {
    inner: Mutex<DriftInner>,
}

impl DriftDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        DriftDetector::default()
    }

    /// Feeds one completed launch's virtual duration. Returns a
    /// node-level transition when this observation flips the node's
    /// verdict, else `None`.
    pub fn observe(
        &self,
        kernel: &str,
        node: NodeId,
        duration: haocl_sim::SimDuration,
    ) -> Option<DriftEvent> {
        let nanos = duration.as_nanos() as f64;
        let mut inner = self.inner.lock();
        let w = inner
            .keys
            .entry((kernel.to_string(), node.raw()))
            .or_default();
        if w.samples < BASELINE_RUNS {
            // Welford accumulation of the healthy baseline.
            w.samples += 1;
            let delta = nanos - w.baseline_mean;
            w.baseline_mean += delta / f64::from(w.samples);
            w.baseline_m2 += delta * (nanos - w.baseline_mean);
            w.recent = w.baseline_mean;
            return None;
        }
        w.recent = RECENT_ALPHA * nanos + (1.0 - RECENT_ALPHA) * w.recent;
        let ratio = w.ratio();
        let z = w.z_score();
        let mut flipped = None;
        if w.degraded {
            if ratio <= RECOVER_RATIO {
                w.low_strikes += 1;
            } else {
                w.low_strikes = 0;
            }
            if w.low_strikes >= STRIKES_TO_FLIP {
                w.degraded = false;
                w.low_strikes = 0;
                flipped = Some(false);
            }
        } else {
            if ratio >= DEGRADE_RATIO && z >= DRIFT_Z_THRESHOLD {
                w.high_strikes += 1;
            } else {
                w.high_strikes = 0;
            }
            if w.high_strikes >= STRIKES_TO_FLIP {
                w.degraded = true;
                w.high_strikes = 0;
                flipped = Some(true);
            }
        }
        match flipped {
            Some(true) => {
                let count = inner.degraded_counts.entry(node.raw()).or_insert(0);
                *count += 1;
                (*count == 1).then_some(DriftEvent::Degraded { node, ratio })
            }
            Some(false) => {
                let count = inner.degraded_counts.entry(node.raw()).or_insert(0);
                *count = count.saturating_sub(1);
                (*count == 0).then_some(DriftEvent::Recovered { node })
            }
            None => None,
        }
    }

    /// Whether any of the node's timing windows is currently out of band.
    pub fn is_degraded(&self, node: NodeId) -> bool {
        self.inner
            .lock()
            .degraded_counts
            .get(&node.raw())
            .is_some_and(|&c| c > 0)
    }

    /// The advisory cost multiplier for a node: the worst slowdown ratio
    /// among its degraded windows, or `1.0` when healthy.
    pub fn penalty(&self, node: NodeId) -> f64 {
        let inner = self.inner.lock();
        if inner
            .degraded_counts
            .get(&node.raw())
            .is_none_or(|&c| c == 0)
        {
            return 1.0;
        }
        inner
            .keys
            .iter()
            .filter(|((_, n), w)| *n == node.raw() && w.degraded)
            .map(|(_, w)| w.ratio())
            .fold(1.0, f64::max)
    }

    /// Every currently degraded node, ascending.
    pub fn degraded_nodes(&self) -> Vec<NodeId> {
        self.inner
            .lock()
            .degraded_counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&n, _)| NodeId::new(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_descriptor_copies_model() {
        let d = DeviceDescriptor {
            index: 2,
            kind: DeviceKind::Fpga,
            name: "x".into(),
            mem_bytes: 1024,
            gflops: 1800.0,
            mem_bandwidth_gbps: 60.0,
            power_watts: 45.0,
        };
        let v = DeviceView::from_descriptor(NodeId::new(7), &d);
        assert_eq!(v.node, NodeId::new(7));
        assert_eq!(v.device, 2);
        assert_eq!(v.kind, DeviceKind::Fpga);
        assert_eq!(v.mem_bytes, 1024);
        assert_eq!(v.busy_until, SimTime::ZERO);
        assert_eq!(v.queue_depth, 0);
    }

    #[test]
    fn builders_set_load_and_locality() {
        let v = DeviceView::sample(0, 0, DeviceKind::Gpu)
            .loaded(SimTime::from_nanos(10), 3)
            .with_local_bytes(4096)
            .with_health_penalty(2.5);
        assert_eq!(v.busy_until, SimTime::from_nanos(10));
        assert_eq!(v.queue_depth, 3);
        assert_eq!(v.local_bytes, 4096);
        assert_eq!(v.health_penalty, 2.5);
    }

    #[test]
    fn health_penalty_clamps_below_one() {
        let v = DeviceView::sample(0, 0, DeviceKind::Gpu).with_health_penalty(0.2);
        assert_eq!(v.health_penalty, 1.0);
    }

    use haocl_sim::SimDuration;

    fn nanos(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    #[test]
    fn throttled_device_degrades_within_a_handful_of_launches() {
        let det = DriftDetector::new();
        let node = NodeId::new(1);
        for _ in 0..4 {
            assert_eq!(det.observe("k", node, nanos(1000)), None);
        }
        assert!(!det.is_degraded(node));
        // The device starts running 3× slow (throttled preset).
        let mut event = None;
        for i in 0..8 {
            if let Some(e) = det.observe("k", node, nanos(3000)) {
                event = Some((i, e));
                break;
            }
        }
        let (within, e) = event.expect("throttling must be detected");
        assert!(within < 5, "detected after {within} launches, want < 5");
        match e {
            DriftEvent::Degraded { node: n, ratio } => {
                assert_eq!(n, node);
                assert!(ratio > DEGRADE_RATIO, "{ratio}");
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(det.is_degraded(node));
        assert!(det.penalty(node) > 1.5);
        assert_eq!(det.degraded_nodes(), vec![node]);
    }

    #[test]
    fn healthy_fleets_never_flag_across_seeds() {
        for seed in 0u64..8 {
            let det = DriftDetector::new();
            // Deterministic ±2% jitter derived from the seed — real
            // clusters wobble; a healthy wobble must never strike.
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            for node in 0..3u32 {
                for _ in 0..40 {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let jitter = (state >> 33) % 41; // 0..=40
                    let t = 980 + jitter; // 980..=1020 around 1000
                    let ev = det.observe("k", NodeId::new(node), nanos(t));
                    assert_eq!(ev, None, "seed {seed} node {node} flagged");
                }
                assert!(!det.is_degraded(NodeId::new(node)));
            }
        }
    }

    #[test]
    fn degraded_node_recovers_at_baseline() {
        let det = DriftDetector::new();
        let node = NodeId::new(0);
        for _ in 0..4 {
            det.observe("k", node, nanos(1000));
        }
        for _ in 0..6 {
            det.observe("k", node, nanos(3000));
        }
        assert!(det.is_degraded(node));
        let mut recovered = false;
        for _ in 0..16 {
            if let Some(DriftEvent::Recovered { node: n }) = det.observe("k", node, nanos(1000)) {
                assert_eq!(n, node);
                recovered = true;
                break;
            }
        }
        assert!(recovered, "return to baseline must clear the verdict");
        assert!(!det.is_degraded(node));
        assert_eq!(det.penalty(node), 1.0);
        assert!(det.degraded_nodes().is_empty());
    }

    #[test]
    fn node_verdicts_are_independent() {
        let det = DriftDetector::new();
        for node in [0u32, 1] {
            for _ in 0..4 {
                det.observe("k", NodeId::new(node), nanos(1000));
            }
        }
        for _ in 0..6 {
            det.observe("k", NodeId::new(1), nanos(4000));
        }
        assert!(!det.is_degraded(NodeId::new(0)));
        assert!(det.is_degraded(NodeId::new(1)));
        assert_eq!(det.penalty(NodeId::new(0)), 1.0);
    }
}
