//! Built-in scheduling policies.
//!
//! The demo paper ships user-directed placement (pinning, handled by
//! [`crate::Scheduler`] itself) and motivates an automatic,
//! heterogeneity-aware upgrade. These built-ins cover that spectrum:
//!
//! | Policy | Objective |
//! |--------|-----------|
//! | [`RoundRobin`]   | fairness / trivial baseline |
//! | [`LeastLoaded`]  | queue balancing |
//! | [`HeteroAware`]  | minimize completion time using profiles + model estimates |
//! | [`PowerAware`]   | minimize energy (§I power efficiency) |
//! | [`LocalityAware`]| minimize data movement |

use std::sync::atomic::{AtomicUsize, Ordering};

use haocl_sim::{SimDuration, SimTime};

use crate::currency::CurrencyTable;
use crate::monitor::DeviceView;
use crate::policy::{estimate_time, SchedulingPolicy};
use crate::profile::ProfileDb;
use crate::task::TaskSpec;

/// Rotates placements across eligible devices.
#[derive(Debug, Default)]
pub struct RoundRobin {
    counter: AtomicUsize,
}

impl RoundRobin {
    /// Creates a round-robin policy starting at the first device.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl SchedulingPolicy for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn place(
        &self,
        _task: &TaskSpec,
        eligible: &[(usize, &DeviceView)],
        _profile: &ProfileDb,
    ) -> Option<usize> {
        if eligible.is_empty() {
            return None;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        Some(eligible[n % eligible.len()].0)
    }
}

/// Picks the device whose queue drains earliest (ties: shallower queue,
/// then lower index).
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// Creates the policy.
    pub fn new() -> Self {
        LeastLoaded
    }
}

impl SchedulingPolicy for LeastLoaded {
    fn name(&self) -> &str {
        "least-loaded"
    }

    fn place(
        &self,
        _task: &TaskSpec,
        eligible: &[(usize, &DeviceView)],
        _profile: &ProfileDb,
    ) -> Option<usize> {
        eligible
            .iter()
            .min_by_key(|(_, d)| (d.busy_until, d.queue_depth))
            .map(|(i, _)| *i)
    }
}

/// Minimizes estimated completion time: `max(now-ish, busy_until) +
/// predicted_run_time`, where the prediction comes from the profiling
/// database when warm and the class-level model estimate otherwise.
///
/// This is the "automatic scheduler with runtime profiling information"
/// the paper describes as the upgrade over user-directed placement.
#[derive(Debug, Default)]
pub struct HeteroAware;

impl HeteroAware {
    /// Creates the policy.
    pub fn new() -> Self {
        HeteroAware
    }
}

impl SchedulingPolicy for HeteroAware {
    fn name(&self) -> &str {
        "hetero-aware"
    }

    fn place(
        &self,
        task: &TaskSpec,
        eligible: &[(usize, &DeviceView)],
        profile: &ProfileDb,
    ) -> Option<usize> {
        let currency = CurrencyTable::from_profile(profile);
        eligible
            .iter()
            .min_by(|(_, a), (_, b)| {
                let fa = finish_time(task, a, profile, &currency);
                let fb = finish_time(task, b, profile, &currency);
                fa.partial_cmp(&fb).expect("finite finish times")
            })
            .map(|(i, _)| *i)
    }
}

/// The common-currency run-time prediction the cost-driven policies
/// compare candidates by: the per-class profile when warm or seeded, a
/// warm sibling-class observation converted through the exchange rates
/// otherwise, the roofline model as last resort — all scaled by the
/// device's advisory [`DeviceView::health_penalty`].
fn predicted_run(
    task: &TaskSpec,
    view: &DeviceView,
    profile: &ProfileDb,
    currency: &CurrencyTable,
) -> SimDuration {
    let run = profile
        .predict(&task.kernel, view.kind)
        .or_else(|| crate::policy::convert_observation(profile, currency, task, view.kind))
        .unwrap_or_else(|| estimate_time(task, view));
    SimDuration::from_nanos((run.as_nanos() as f64 * view.health_penalty.max(1.0)) as u64)
}

fn finish_time(
    task: &TaskSpec,
    view: &DeviceView,
    profile: &ProfileDb,
    currency: &CurrencyTable,
) -> f64 {
    let run = predicted_run(task, view, profile, currency);
    let start = view.busy_until.max(SimTime::ZERO);
    (start.as_nanos() + run.as_nanos()) as f64
}

/// Minimizes estimated energy (`predicted_time × load_power`), breaking
/// ties toward the faster device.
#[derive(Debug, Default)]
pub struct PowerAware;

impl PowerAware {
    /// Creates the policy.
    pub fn new() -> Self {
        PowerAware
    }
}

impl SchedulingPolicy for PowerAware {
    fn name(&self) -> &str {
        "power-aware"
    }

    fn place(
        &self,
        task: &TaskSpec,
        eligible: &[(usize, &DeviceView)],
        profile: &ProfileDb,
    ) -> Option<usize> {
        let currency = CurrencyTable::from_profile(profile);
        eligible
            .iter()
            .min_by(|(_, a), (_, b)| {
                let ea = energy(task, a, profile, &currency);
                let eb = energy(task, b, profile, &currency);
                ea.partial_cmp(&eb).expect("finite energies")
            })
            .map(|(i, _)| *i)
    }
}

fn energy(
    task: &TaskSpec,
    view: &DeviceView,
    profile: &ProfileDb,
    currency: &CurrencyTable,
) -> (f64, f64) {
    let secs = predicted_run(task, view, profile, currency).as_secs_f64();
    (secs * view.power_watts, secs)
}

/// Maximizes resident input data (minimizing transfers), breaking ties
/// toward the least-loaded device.
#[derive(Debug, Default)]
pub struct LocalityAware;

impl LocalityAware {
    /// Creates the policy.
    pub fn new() -> Self {
        LocalityAware
    }
}

impl SchedulingPolicy for LocalityAware {
    fn name(&self) -> &str {
        "locality-aware"
    }

    fn place(
        &self,
        _task: &TaskSpec,
        eligible: &[(usize, &DeviceView)],
        _profile: &ProfileDb,
    ) -> Option<usize> {
        eligible
            .iter()
            .max_by_key(|(_, d)| {
                (
                    d.local_bytes,
                    std::cmp::Reverse((d.busy_until, d.queue_depth)),
                )
            })
            .map(|(i, _)| *i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl_kernel::CostModel;
    use haocl_proto::messages::DeviceKind;
    use haocl_sim::SimDuration;

    fn eligible(views: &[DeviceView]) -> Vec<(usize, &DeviceView)> {
        views.iter().enumerate().collect()
    }

    #[test]
    fn round_robin_rotates() {
        let p = RoundRobin::new();
        let views = vec![
            DeviceView::sample(0, 0, DeviceKind::Gpu),
            DeviceView::sample(1, 0, DeviceKind::Gpu),
        ];
        let db = ProfileDb::new();
        let t = TaskSpec::new("k");
        let picks: Vec<usize> = (0..4)
            .map(|_| p.place(&t, &eligible(&views), &db).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn least_loaded_prefers_idle() {
        let p = LeastLoaded::new();
        let views = vec![
            DeviceView::sample(0, 0, DeviceKind::Gpu).loaded(SimTime::from_nanos(100), 2),
            DeviceView::sample(1, 0, DeviceKind::Gpu),
        ];
        let pick = p
            .place(&TaskSpec::new("k"), &eligible(&views), &ProfileDb::new())
            .unwrap();
        assert_eq!(pick, 1);
    }

    #[test]
    fn hetero_uses_model_estimate_when_profile_cold() {
        let p = HeteroAware::new();
        let views = vec![
            DeviceView::sample(0, 0, DeviceKind::Cpu),
            DeviceView::sample(1, 0, DeviceKind::Gpu),
            DeviceView::sample(2, 0, DeviceKind::Fpga),
        ];
        let batch = TaskSpec::new("mm").cost(CostModel::new().flops(1e10));
        assert_eq!(
            p.place(&batch, &eligible(&views), &ProfileDb::new())
                .unwrap(),
            1,
            "dense batch work goes to the GPU"
        );
        let stream = TaskSpec::new("spmv")
            .cost(CostModel::new().flops(1e10).streaming())
            .fpga_eligible(true);
        assert_eq!(
            p.place(&stream, &eligible(&views), &ProfileDb::new())
                .unwrap(),
            2,
            "streaming work goes to the FPGA"
        );
    }

    #[test]
    fn hetero_prefers_observed_profile_over_estimate() {
        let p = HeteroAware::new();
        let views = vec![
            DeviceView::sample(0, 0, DeviceKind::Cpu),
            DeviceView::sample(1, 0, DeviceKind::Gpu),
        ];
        let db = ProfileDb::new();
        // Observations say the CPU is dramatically faster for this kernel
        // (e.g. tiny launch dominated by GPU launch overhead).
        for _ in 0..3 {
            db.record("odd", DeviceKind::Cpu, SimDuration::from_nanos(10));
            db.record("odd", DeviceKind::Gpu, SimDuration::from_millis(50));
        }
        let t = TaskSpec::new("odd").cost(CostModel::new().flops(1e9));
        assert_eq!(p.place(&t, &eligible(&views), &db).unwrap(), 0);
    }

    #[test]
    fn static_report_flips_placement_before_first_launch() {
        use haocl_proto::messages::WireKernelReport;

        let p = HeteroAware::new();
        let views = vec![
            DeviceView::sample(0, 0, DeviceKind::Cpu),
            DeviceView::sample(1, 0, DeviceKind::Gpu),
            DeviceView::sample(2, 0, DeviceKind::Fpga),
        ];
        let t = TaskSpec::new("tiled_mm")
            .cost(CostModel::new().flops(1e10).streaming())
            .fpga_eligible(true);
        // Cold profile, no hints: the cost model sends streaming work to
        // the FPGA.
        let db = ProfileDb::new();
        assert_eq!(p.place(&t, &eligible(&views), &db).unwrap(), 2);
        // The compiler's report says the kernel is barrier-synchronised
        // __local tiling — a poor match for a streaming pipeline. Seeding
        // the same database flips the placement to the GPU.
        crate::hints::seed_from_report(
            &db,
            &WireKernelReport {
                kernel: "tiled_mm".into(),
                local_bytes: 8192,
                barrier_count: 2,
                arithmetic_intensity: 4.0,
                ..WireKernelReport::default()
            },
        );
        assert_eq!(p.place(&t, &eligible(&views), &db).unwrap(), 1);
    }

    #[test]
    fn hetero_accounts_for_queue_backlog() {
        let p = HeteroAware::new();
        // GPU is busy for a long time; CPU idle. Small task: CPU wins.
        let views = vec![
            DeviceView::sample(0, 0, DeviceKind::Gpu)
                .loaded(SimTime::ZERO + SimDuration::from_secs(100), 5),
            DeviceView::sample(1, 0, DeviceKind::Cpu),
        ];
        let t = TaskSpec::new("k").cost(CostModel::new().flops(1e9));
        assert_eq!(
            p.place(&t, &eligible(&views), &ProfileDb::new()).unwrap(),
            1
        );
    }

    #[test]
    fn hetero_down_weights_degraded_devices() {
        let p = HeteroAware::new();
        let db = ProfileDb::new();
        // Two identical GPUs, but node 0's is marked 3× slow by the
        // drift detector. The healthy, idle twin wins.
        let views = vec![
            DeviceView::sample(0, 0, DeviceKind::Gpu).with_health_penalty(3.0),
            DeviceView::sample(1, 0, DeviceKind::Gpu),
        ];
        let t = TaskSpec::new("k").cost(CostModel::new().flops(1e10));
        assert_eq!(p.place(&t, &eligible(&views), &db).unwrap(), 1);
        // Advisory, not a ban: with no healthy alternative the degraded
        // device still takes the work.
        let only = vec![DeviceView::sample(0, 0, DeviceKind::Gpu).with_health_penalty(3.0)];
        assert_eq!(p.place(&t, &eligible(&only), &db).unwrap(), 0);
    }

    #[test]
    fn hetero_compares_classes_through_currency() {
        let p = HeteroAware::new();
        let db = ProfileDb::new();
        // Link the classes: the CPU is observed 10× slower on a shared
        // kernel, and "j" has only ever run on the GPU, slowly.
        for _ in 0..2 {
            db.record("link", DeviceKind::Gpu, SimDuration::from_nanos(1_000));
            db.record("link", DeviceKind::Cpu, SimDuration::from_nanos(10_000));
            db.record("j", DeviceKind::Gpu, SimDuration::from_millis(50));
        }
        let views = vec![
            DeviceView::sample(0, 0, DeviceKind::Cpu),
            DeviceView::sample(1, 0, DeviceKind::Gpu),
        ];
        // The raw roofline estimate for this tiny task would make the
        // idle CPU look attractive; the currency-converted measurement
        // (50 ms × 10) keeps the comparison in common units and the GPU
        // wins.
        let t = TaskSpec::new("j").cost(CostModel::new().flops(1e3));
        assert_eq!(p.place(&t, &eligible(&views), &db).unwrap(), 1);
    }

    #[test]
    fn power_aware_picks_fpga_for_streaming() {
        let p = PowerAware::new();
        let views = vec![
            DeviceView::sample(0, 0, DeviceKind::Gpu),
            DeviceView::sample(1, 0, DeviceKind::Fpga),
            DeviceView::sample(2, 0, DeviceKind::Cpu),
        ];
        let t = TaskSpec::new("stream")
            .cost(CostModel::new().flops(1e10).streaming())
            .fpga_eligible(true);
        assert_eq!(
            p.place(&t, &eligible(&views), &ProfileDb::new()).unwrap(),
            1
        );
    }

    #[test]
    fn locality_follows_the_data() {
        let p = LocalityAware::new();
        let views = vec![
            DeviceView::sample(0, 0, DeviceKind::Gpu),
            DeviceView::sample(1, 0, DeviceKind::Gpu).with_local_bytes(1 << 20),
        ];
        let t = TaskSpec::new("k");
        assert_eq!(
            p.place(&t, &eligible(&views), &ProfileDb::new()).unwrap(),
            1
        );
    }

    #[test]
    fn locality_ties_break_to_least_loaded() {
        let p = LocalityAware::new();
        let views = vec![
            DeviceView::sample(0, 0, DeviceKind::Gpu).loaded(SimTime::from_nanos(50), 1),
            DeviceView::sample(1, 0, DeviceKind::Gpu),
        ];
        let t = TaskSpec::new("k");
        assert_eq!(
            p.place(&t, &eligible(&views), &ProfileDb::new()).unwrap(),
            1
        );
    }

    #[test]
    fn empty_eligible_returns_none_for_all() {
        let db = ProfileDb::new();
        let t = TaskSpec::new("k");
        let none: Vec<(usize, &DeviceView)> = vec![];
        assert!(RoundRobin::new().place(&t, &none, &db).is_none());
        assert!(LeastLoaded::new().place(&t, &none, &db).is_none());
        assert!(HeteroAware::new().place(&t, &none, &db).is_none());
        assert!(PowerAware::new().place(&t, &none, &db).is_none());
        assert!(LocalityAware::new().place(&t, &none, &db).is_none());
    }
}
