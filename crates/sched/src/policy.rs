//! The extensible policy interface.

use std::fmt;

use haocl_obs::{CandidateInfo, PlacementAudit, PredictionSource};
use haocl_proto::messages::DeviceKind;
use haocl_sim::SimDuration;

use crate::currency::CurrencyTable;
use crate::monitor::DeviceView;
use crate::profile::ProfileDb;
use crate::task::TaskSpec;

/// A placement failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// No device in the snapshot can legally run the task.
    NoEligibleDevice {
        /// The kernel that could not be placed.
        kernel: String,
    },
    /// The task was pinned to a device that is not in the snapshot.
    PinnedDeviceMissing {
        /// The kernel that could not be placed.
        kernel: String,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoEligibleDevice { kernel } => {
                write!(f, "no eligible device for kernel `{kernel}`")
            }
            SchedError::PinnedDeviceMissing { kernel } => {
                write!(f, "pinned device for kernel `{kernel}` is not present")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// A pluggable placement algorithm (object-safe so users can ship their
/// own as trait objects — "designers can design and illustrate their own
/// scheduling algorithms and embed them into HaoCL", paper §I).
///
/// Implementations choose among the devices in `devices` (already
/// filtered for legality by [`Scheduler::place`]) and return an index
/// into that slice, or `None` to fall through to the scheduler's error.
pub trait SchedulingPolicy: Send + Sync {
    /// The policy's display name (shown in ablation reports).
    fn name(&self) -> &str;

    /// Picks a device index from `eligible` for `task`.
    ///
    /// `eligible` pairs each candidate with its index in the original
    /// snapshot; implementations return the *original* index.
    fn place(
        &self,
        task: &TaskSpec,
        eligible: &[(usize, &DeviceView)],
        profile: &ProfileDb,
    ) -> Option<usize>;
}

/// The scheduling component: legality filtering plus a pluggable policy
/// and the shared profiling database.
pub struct Scheduler {
    policy: Box<dyn SchedulingPolicy>,
    profile: ProfileDb,
}

impl Scheduler {
    /// Creates a scheduler driven by `policy`.
    pub fn new(policy: Box<dyn SchedulingPolicy>) -> Self {
        Scheduler {
            policy,
            profile: ProfileDb::new(),
        }
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// The shared profiling database (record observations here).
    pub fn profile(&self) -> &ProfileDb {
        &self.profile
    }

    /// Swaps the policy at runtime, keeping accumulated profiles.
    pub fn set_policy(&mut self, policy: Box<dyn SchedulingPolicy>) {
        self.policy = policy;
    }

    /// Places `task` on one of `devices`, returning the chosen index.
    ///
    /// Legality filtering happens here, for every policy:
    /// * pinned tasks go to their pinned device (or fail),
    /// * FPGA devices are candidates only for `fpga_eligible` tasks.
    ///
    /// # Errors
    ///
    /// [`SchedError::PinnedDeviceMissing`] or
    /// [`SchedError::NoEligibleDevice`].
    pub fn place(&self, task: &TaskSpec, devices: &[DeviceView]) -> Result<usize, SchedError> {
        self.place_audited(task, devices).map(|(idx, _)| idx)
    }

    /// Like [`place`](Self::place), but also returns the full audit
    /// record of the decision: every candidate that survived eligibility
    /// filtering, what each prediction source said about it, and why the
    /// winner won. Callers that don't need the trail use `place`.
    ///
    /// # Errors
    ///
    /// Same as [`place`](Self::place).
    pub fn place_audited(
        &self,
        task: &TaskSpec,
        devices: &[DeviceView],
    ) -> Result<(usize, PlacementAudit), SchedError> {
        let currency = CurrencyTable::from_profile(&self.profile);
        if let Some((node, dev)) = task.pinned {
            let idx = devices
                .iter()
                .position(|d| d.node == node && d.device == dev)
                .ok_or_else(|| SchedError::PinnedDeviceMissing {
                    kernel: task.kernel.clone(),
                })?;
            let audit = PlacementAudit {
                kernel: task.kernel.clone(),
                tenant: task.tenant.clone(),
                policy: self.policy.name().to_string(),
                candidates: vec![self.candidate(task, idx, &devices[idx], &currency)],
                chosen: idx,
                reason: "pinned by task spec".to_string(),
                fused: haocl_obs::FusionDecision::Unconsidered,
            };
            return Ok((idx, audit));
        }
        let eligible: Vec<(usize, &DeviceView)> = devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind != DeviceKind::Fpga || task.fpga_eligible)
            .collect();
        if eligible.is_empty() {
            return Err(SchedError::NoEligibleDevice {
                kernel: task.kernel.clone(),
            });
        }
        let chosen = self
            .policy
            .place(task, &eligible, &self.profile)
            .ok_or_else(|| SchedError::NoEligibleDevice {
                kernel: task.kernel.clone(),
            })?;
        let candidates: Vec<CandidateInfo> = eligible
            .iter()
            .map(|&(i, d)| self.candidate(task, i, d, &currency))
            .collect();
        let reason = candidates
            .iter()
            .find(|c| c.device == chosen)
            .map(|w| match (w.source, w.predicted_nanos) {
                (PredictionSource::Observed, Some(n)) => {
                    format!("observed profile predicts {}", SimDuration::from_nanos(n))
                }
                (PredictionSource::Seed, Some(n)) => {
                    format!("static seed predicts {}", SimDuration::from_nanos(n))
                }
                (PredictionSource::Currency, Some(n)) => format!(
                    "currency-converted observation predicts {}",
                    SimDuration::from_nanos(n)
                ),
                (PredictionSource::CostModel, Some(n)) => {
                    format!("cost model estimates {}", SimDuration::from_nanos(n))
                }
                (src, None) => format!("no prediction (src={src})"),
            })
            .unwrap_or_else(|| "policy choice".to_string());
        let audit = PlacementAudit {
            kernel: task.kernel.clone(),
            tenant: task.tenant.clone(),
            policy: self.policy.name().to_string(),
            candidates,
            chosen,
            reason,
            fused: haocl_obs::FusionDecision::Unconsidered,
        };
        Ok((chosen, audit))
    }

    /// Builds the audit record for one candidate device, attributing the
    /// prediction to the strongest available source: warm profile, then
    /// static seed, then a warm observation from another device class
    /// converted through the compute-currency table, then the roofline
    /// cost model.
    fn candidate(
        &self,
        task: &TaskSpec,
        idx: usize,
        view: &DeviceView,
        currency: &CurrencyTable,
    ) -> CandidateInfo {
        let (predicted_nanos, source) =
            if let Some(d) = self.profile.observed(&task.kernel, view.kind) {
                (Some(d.as_nanos()), PredictionSource::Observed)
            } else if let Some(d) = self.profile.seed_hint(&task.kernel, view.kind) {
                (Some(d.as_nanos()), PredictionSource::Seed)
            } else if let Some(d) = convert_observation(&self.profile, currency, task, view.kind) {
                (Some(d.as_nanos()), PredictionSource::Currency)
            } else {
                (
                    Some(estimate_time(task, view).as_nanos()),
                    PredictionSource::CostModel,
                )
            };
        let health = if view.health_penalty > 1.0 {
            CandidateInfo::degraded_health(view.health_penalty)
        } else {
            CandidateInfo::HEALTHY.to_string()
        };
        CandidateInfo {
            device: idx,
            node: if view.node_name.is_empty() {
                format!("node{}", view.node.raw())
            } else {
                view.node_name.clone()
            },
            kind: format!("{:?}", view.kind),
            predicted_nanos,
            source,
            health,
        }
    }
}

/// Transfers the kernel's warm observation from another device class onto
/// `kind` through the currency table's exchange rates. `None` when the
/// kernel has no warm sibling or the table lacks a rate for either class.
pub(crate) fn convert_observation(
    profile: &ProfileDb,
    currency: &CurrencyTable,
    task: &TaskSpec,
    kind: DeviceKind,
) -> Option<SimDuration> {
    profile
        .warm_observations(&task.kernel)
        .into_iter()
        .filter(|&(k, _)| k != kind)
        .filter_map(|(k, d)| currency.convert(d, k, kind))
        .min()
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("policy", &self.policy.name())
            .field("profile_keys", &self.profile.len())
            .finish()
    }
}

/// Bytes/second the host assumes for migrating input data onto a
/// candidate device (the fabric's Gigabit-Ethernet line rate, §III-C).
const MIGRATION_BYTES_PER_SEC: f64 = 125e6;

/// Host-side estimate of how long `task` runs on a device of this class.
///
/// Mirrors the device model's roofline with class-level match factors;
/// it is intentionally an *estimate* (the host does not know the exact
/// device internals) — observed profiles override it when available.
/// Input bytes not already resident on the candidate
/// ([`TaskSpec::input_bytes`] minus [`DeviceView::local_bytes`]) are
/// charged as an up-front migration over the backbone, so time-minimizing
/// policies see the real cost of placing work away from its data.
pub fn estimate_time(task: &TaskSpec, view: &DeviceView) -> SimDuration {
    let streaming = task.cost.is_streaming();
    let fraction = match (view.kind, streaming) {
        (DeviceKind::Gpu, false) => 0.70,
        (DeviceKind::Gpu, true) => 0.25,
        (DeviceKind::Cpu, false) => 0.55,
        (DeviceKind::Cpu, true) => 0.50,
        (DeviceKind::Fpga, false) => 0.35,
        (DeviceKind::Fpga, true) => 0.85,
    };
    let mut rate = view.gflops * 1e9 * fraction;
    if !task.cost.is_uniform() {
        rate /= match view.kind {
            DeviceKind::Gpu => 4.0,
            DeviceKind::Cpu => 1.3,
            DeviceKind::Fpga => 2.0,
        };
    }
    let compute = if rate > 0.0 {
        task.cost.total_flops() / rate
    } else {
        0.0
    };
    let bw = view.mem_bandwidth_gbps * 1e9;
    let memory = if bw > 0.0 {
        task.cost.total_bytes() / bw
    } else {
        0.0
    };
    let missing = task.input_bytes.saturating_sub(view.local_bytes);
    let migration = missing as f64 / MIGRATION_BYTES_PER_SEC;
    SimDuration::from_secs_f64(compute.max(memory) + migration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl_kernel::CostModel;
    use haocl_proto::ids::NodeId;

    struct FirstFit;

    impl SchedulingPolicy for FirstFit {
        fn name(&self) -> &str {
            "first-fit"
        }

        fn place(
            &self,
            _task: &TaskSpec,
            eligible: &[(usize, &DeviceView)],
            _profile: &ProfileDb,
        ) -> Option<usize> {
            eligible.first().map(|(i, _)| *i)
        }
    }

    fn snapshot() -> Vec<DeviceView> {
        vec![
            DeviceView::sample(0, 0, DeviceKind::Fpga),
            DeviceView::sample(1, 0, DeviceKind::Gpu),
            DeviceView::sample(2, 0, DeviceKind::Cpu),
        ]
    }

    #[test]
    fn fpga_filtered_unless_eligible() {
        let s = Scheduler::new(Box::new(FirstFit));
        let devices = snapshot();
        let plain = TaskSpec::new("k");
        assert_eq!(s.place(&plain, &devices).unwrap(), 1); // skips FPGA
        let bitstream = TaskSpec::new("k").fpga_eligible(true);
        assert_eq!(s.place(&bitstream, &devices).unwrap(), 0);
    }

    #[test]
    fn pinned_task_bypasses_policy() {
        let s = Scheduler::new(Box::new(FirstFit));
        let devices = snapshot();
        let t = TaskSpec::new("k").pin(NodeId::new(2), 0);
        assert_eq!(s.place(&t, &devices).unwrap(), 2);
    }

    #[test]
    fn pinned_to_missing_device_errors() {
        let s = Scheduler::new(Box::new(FirstFit));
        let t = TaskSpec::new("k").pin(NodeId::new(9), 0);
        let err = s.place(&t, &snapshot()).unwrap_err();
        assert!(matches!(err, SchedError::PinnedDeviceMissing { .. }));
    }

    #[test]
    fn no_devices_errors() {
        let s = Scheduler::new(Box::new(FirstFit));
        let t = TaskSpec::new("k");
        let err = s.place(&t, &[]).unwrap_err();
        assert!(matches!(err, SchedError::NoEligibleDevice { .. }));
    }

    #[test]
    fn only_fpgas_and_ineligible_task_errors() {
        let s = Scheduler::new(Box::new(FirstFit));
        let devices = vec![DeviceView::sample(0, 0, DeviceKind::Fpga)];
        let err = s.place(&TaskSpec::new("k"), &devices).unwrap_err();
        assert!(matches!(err, SchedError::NoEligibleDevice { .. }));
    }

    #[test]
    fn estimate_prefers_gpu_for_batch_fpga_for_streaming() {
        let gpu = DeviceView::sample(0, 0, DeviceKind::Gpu);
        let fpga = DeviceView::sample(1, 0, DeviceKind::Fpga);
        let batch = TaskSpec::new("k").cost(CostModel::new().flops(1e10));
        assert!(estimate_time(&batch, &gpu) < estimate_time(&batch, &fpga));
        let stream = TaskSpec::new("k").cost(CostModel::new().flops(1e10).streaming());
        assert!(estimate_time(&stream, &fpga) < estimate_time(&stream, &gpu));
    }

    #[test]
    fn estimate_charges_migration_for_nonresident_input() {
        let away = DeviceView::sample(0, 0, DeviceKind::Gpu);
        let home = DeviceView::sample(1, 0, DeviceKind::Gpu).with_local_bytes(1 << 30);
        let t = TaskSpec::new("k")
            .cost(CostModel::new().flops(1e9))
            .input_bytes(1 << 30);
        let cold = estimate_time(&t, &away);
        let warm = estimate_time(&t, &home);
        assert!(cold > warm, "missing input must cost backbone time");
        // The gap is the full migration: 1 GiB at the gigabit line rate.
        let gap = cold - warm;
        let expected = SimDuration::from_secs_f64((1u64 << 30) as f64 / 125e6);
        assert_eq!(gap, expected);
        // Without declared input the estimate is unchanged from before.
        let plain = TaskSpec::new("k").cost(CostModel::new().flops(1e9));
        assert_eq!(estimate_time(&plain, &away), estimate_time(&plain, &home));
    }

    #[test]
    fn place_audited_names_winner_and_prediction_source() {
        let s = Scheduler::new(Box::new(FirstFit));
        let devices = snapshot();
        let (idx, audit) = s.place_audited(&TaskSpec::new("k"), &devices).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(audit.chosen, 1);
        assert_eq!(audit.policy, "first-fit");
        assert_eq!(audit.candidates.len(), 2, "FPGA filtered out");
        let w = audit.winner().unwrap();
        assert_eq!(w.kind, "Gpu");
        assert_eq!(w.source, PredictionSource::CostModel);
        assert!(audit.reason.starts_with("cost model estimates"));
        // Warm the profile: the source flips to Observed.
        s.profile()
            .record("k", DeviceKind::Gpu, SimDuration::from_nanos(700));
        s.profile()
            .record("k", DeviceKind::Gpu, SimDuration::from_nanos(700));
        let (_, audit) = s.place_audited(&TaskSpec::new("k"), &devices).unwrap();
        let w = audit.winner().unwrap();
        assert_eq!(w.source, PredictionSource::Observed);
        assert_eq!(w.predicted_nanos, Some(700));
        assert!(audit.line().contains("chosen=node1/Gpu"));
    }

    #[test]
    fn currency_converts_sibling_observations_for_unseen_classes() {
        let s = Scheduler::new(Box::new(FirstFit));
        // Link the GPU and CPU classes through a shared kernel: the CPU
        // runs it 4× slower.
        for _ in 0..2 {
            s.profile()
                .record("link", DeviceKind::Gpu, SimDuration::from_nanos(100));
            s.profile()
                .record("link", DeviceKind::Cpu, SimDuration::from_nanos(400));
        }
        // Kernel "j" has only been measured on the GPU.
        for _ in 0..2 {
            s.profile()
                .record("j", DeviceKind::Gpu, SimDuration::from_nanos(1000));
        }
        let (_, audit) = s.place_audited(&TaskSpec::new("j"), &snapshot()).unwrap();
        let cpu = audit.candidates.iter().find(|c| c.kind == "Cpu").unwrap();
        assert_eq!(
            cpu.source,
            PredictionSource::Currency,
            "unseen class gets a converted measurement, not a model guess"
        );
        assert_eq!(cpu.predicted_nanos, Some(4000));
        let gpu = audit.candidates.iter().find(|c| c.kind == "Gpu").unwrap();
        assert_eq!(gpu.source, PredictionSource::Observed);
    }

    #[test]
    fn candidates_carry_the_health_verdict() {
        let s = Scheduler::new(Box::new(FirstFit));
        let mut devices = snapshot();
        devices[1] = devices[1].clone().with_health_penalty(2.0);
        let (_, audit) = s.place_audited(&TaskSpec::new("k"), &devices).unwrap();
        let gpu = audit.candidates.iter().find(|c| c.kind == "Gpu").unwrap();
        assert_eq!(gpu.health, "degraded(x2.00)");
        assert!(gpu.is_degraded());
        let cpu = audit.candidates.iter().find(|c| c.kind == "Cpu").unwrap();
        assert_eq!(cpu.health, CandidateInfo::HEALTHY);
        assert!(audit.line().contains("health=degraded(x2.00)"));
    }

    #[test]
    fn pinned_placement_audits_as_pinned() {
        let s = Scheduler::new(Box::new(FirstFit));
        let devices = snapshot();
        let t = TaskSpec::new("k").pin(NodeId::new(2), 0);
        let (idx, audit) = s.place_audited(&t, &devices).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(audit.reason, "pinned by task spec");
        assert_eq!(audit.candidates.len(), 1);
    }

    #[test]
    fn policy_can_be_swapped_keeping_profile() {
        let mut s = Scheduler::new(Box::new(FirstFit));
        s.profile()
            .record("k", DeviceKind::Gpu, SimDuration::from_nanos(5));
        s.set_policy(Box::new(FirstFit));
        assert_eq!(s.profile().runs("k", DeviceKind::Gpu), 1);
        assert_eq!(s.policy_name(), "first-fit");
    }
}
