//! The runtime profiling database.
//!
//! NMPs report per-kernel execution times ([`haocl_proto::messages::ProfileEntry`]);
//! the host folds them into exponential moving averages keyed by
//! `(kernel, device class)`. The heterogeneity-aware policy prefers these
//! *observed* times over model-based estimates once enough runs exist —
//! the "automatic scheduler with runtime profiling information" the paper
//! names as the upgrade path (§III-B).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use haocl_proto::messages::DeviceKind;
use haocl_sim::SimDuration;
use parking_lot::RwLock;

/// EMA smoothing factor: weight of the newest observation.
const ALPHA: f64 = 0.3;

/// Observations below this count are considered too thin to trust.
const MIN_RUNS: u64 = 2;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    runs: u64,
    ema_nanos: f64,
}

/// Thread-safe profile store.
///
/// # Examples
///
/// ```
/// use haocl_sched::ProfileDb;
/// use haocl_proto::messages::DeviceKind;
/// use haocl_sim::SimDuration;
///
/// let db = ProfileDb::new();
/// db.record("matmul", DeviceKind::Gpu, SimDuration::from_millis(10));
/// db.record("matmul", DeviceKind::Gpu, SimDuration::from_millis(12));
/// let predicted = db.predict("matmul", DeviceKind::Gpu).unwrap();
/// assert!(predicted >= SimDuration::from_millis(10));
/// assert!(predicted <= SimDuration::from_millis(12));
/// ```
#[derive(Debug, Default)]
pub struct ProfileDb {
    entries: RwLock<HashMap<(String, DeviceKind), Entry>>,
    /// Static placement hints (see [`ProfileDb::seed`]), consulted only
    /// while the observed profile for a key is still cold.
    seeds: RwLock<HashMap<(String, DeviceKind), f64>>,
    /// How many seeded keys have warmed past `MIN_RUNS` (the moment the
    /// dynamic profile first displaces a static hint).
    seed_displacements: AtomicU64,
}

/// One `(kernel, device class)` row of a [`ProfileDb::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSnapshotEntry {
    /// The kernel name.
    pub kernel: String,
    /// The device class.
    pub kind: DeviceKind,
    /// Observed run count (0 for seed-only rows).
    pub runs: u64,
    /// The warm observed EMA, if `runs` passed the trust threshold.
    pub observed: Option<SimDuration>,
    /// The planted static hint, if any.
    pub seed: Option<SimDuration>,
    /// What [`ProfileDb::predict`] currently answers for this key.
    pub prediction: Option<SimDuration>,
}

impl ProfileDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        ProfileDb::default()
    }

    /// Records one observed execution time.
    pub fn record(&self, kernel: &str, kind: DeviceKind, duration: SimDuration) {
        let key = (kernel.to_string(), kind);
        let mut entries = self.entries.write();
        let e = entries.entry(key.clone()).or_default();
        let nanos = duration.as_nanos() as f64;
        if e.runs == 0 {
            e.ema_nanos = nanos;
        } else {
            e.ema_nanos = ALPHA * nanos + (1.0 - ALPHA) * e.ema_nanos;
        }
        e.runs += 1;
        if e.runs == MIN_RUNS && self.seeds.read().contains_key(&key) {
            self.seed_displacements.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Plants a *static* prediction for a key, used by
    /// [`predict`](Self::predict) until enough real observations exist to
    /// displace it. This is how the compiler's feature-vector placement
    /// hints enter the scheduler before any launch has run (see
    /// [`crate::seed_from_report`]).
    pub fn seed(&self, kernel: &str, kind: DeviceKind, duration: SimDuration) {
        self.seeds
            .write()
            .insert((kernel.to_string(), kind), duration.as_nanos() as f64);
    }

    /// Predicted execution time: the observed EMA once warm
    /// (≥ `MIN_RUNS` observations), else a planted seed, else `None`.
    pub fn predict(&self, kernel: &str, kind: DeviceKind) -> Option<SimDuration> {
        let key = (kernel.to_string(), kind);
        {
            let entries = self.entries.read();
            if let Some(e) = entries.get(&key) {
                if e.runs >= MIN_RUNS {
                    return Some(SimDuration::from_nanos(e.ema_nanos as u64));
                }
            }
        }
        self.seeds
            .read()
            .get(&key)
            .map(|&n| SimDuration::from_nanos(n as u64))
    }

    /// The warm observed EMA only — `None` while the key is cold, even
    /// if a seed exists. Use [`predict`](Self::predict) for the combined
    /// answer; this split lets callers attribute a prediction's *source*.
    pub fn observed(&self, kernel: &str, kind: DeviceKind) -> Option<SimDuration> {
        self.entries
            .read()
            .get(&(kernel.to_string(), kind))
            .filter(|e| e.runs >= MIN_RUNS)
            .map(|e| SimDuration::from_nanos(e.ema_nanos as u64))
    }

    /// The planted static hint for a key, regardless of warm-up state.
    pub fn seed_hint(&self, kernel: &str, kind: DeviceKind) -> Option<SimDuration> {
        self.seeds
            .read()
            .get(&(kernel.to_string(), kind))
            .map(|&n| SimDuration::from_nanos(n as u64))
    }

    /// How many seeded keys have been displaced by warm observations so
    /// far — each counts exactly once, at the record that crossed the
    /// trust threshold. Feeds the `haocl_profile_seed_displaced_total`
    /// metric.
    pub fn seed_displacements(&self) -> u64 {
        self.seed_displacements.load(Ordering::Relaxed)
    }

    /// Every `(kernel, device class)` key the database knows about —
    /// observed or merely seeded — with run counts and all three
    /// prediction views, sorted by kernel then device class.
    pub fn snapshot(&self) -> Vec<ProfileSnapshotEntry> {
        let entries = self.entries.read();
        let seeds = self.seeds.read();
        let mut keys: Vec<(String, DeviceKind)> =
            entries.keys().chain(seeds.keys()).cloned().collect();
        keys.sort_by(|a, b| (&a.0, format!("{:?}", a.1)).cmp(&(&b.0, format!("{:?}", b.1))));
        keys.dedup();
        keys.into_iter()
            .map(|key| {
                let e = entries.get(&key).copied().unwrap_or_default();
                let observed =
                    (e.runs >= MIN_RUNS).then(|| SimDuration::from_nanos(e.ema_nanos as u64));
                let seed = seeds.get(&key).map(|&n| SimDuration::from_nanos(n as u64));
                ProfileSnapshotEntry {
                    prediction: observed.or(seed),
                    kernel: key.0,
                    kind: key.1,
                    runs: e.runs,
                    observed,
                    seed,
                }
            })
            .collect()
    }

    /// Number of recorded observations for a key.
    pub fn runs(&self, kernel: &str, kind: DeviceKind) -> u64 {
        self.entries
            .read()
            .get(&(kernel.to_string(), kind))
            .map_or(0, |e| e.runs)
    }

    /// Number of distinct `(kernel, device class)` keys.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Clears all observations, seeds and the displacement counter.
    pub fn clear(&self) {
        self.entries.write().clear();
        self.seeds.write().clear();
        self.seed_displacements.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_observation_is_not_enough() {
        let db = ProfileDb::new();
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(db.predict("k", DeviceKind::Gpu), None);
        assert_eq!(db.runs("k", DeviceKind::Gpu), 1);
    }

    #[test]
    fn ema_converges_toward_recent_observations() {
        let db = ProfileDb::new();
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(1000));
        for _ in 0..50 {
            db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        }
        let p = db.predict("k", DeviceKind::Gpu).unwrap();
        assert!(p < SimDuration::from_nanos(110), "{p}");
    }

    #[test]
    fn kinds_are_independent_keys() {
        let db = ProfileDb::new();
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(10));
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(10));
        db.record("k", DeviceKind::Fpga, SimDuration::from_nanos(999));
        assert!(db.predict("k", DeviceKind::Gpu).is_some());
        assert!(db.predict("k", DeviceKind::Fpga).is_none());
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn unknown_kernel_predicts_none() {
        let db = ProfileDb::new();
        assert_eq!(db.predict("ghost", DeviceKind::Cpu), None);
        assert!(db.is_empty());
    }

    #[test]
    fn clear_resets() {
        let db = ProfileDb::new();
        db.record("k", DeviceKind::Cpu, SimDuration::from_nanos(5));
        db.seed("k", DeviceKind::Gpu, SimDuration::from_nanos(5));
        db.clear();
        assert!(db.is_empty());
        assert_eq!(db.predict("k", DeviceKind::Gpu), None);
    }

    #[test]
    fn snapshot_covers_observed_and_seed_only_keys() {
        let db = ProfileDb::new();
        db.record("a", DeviceKind::Gpu, SimDuration::from_nanos(100));
        db.record("a", DeviceKind::Gpu, SimDuration::from_nanos(100));
        db.seed("b", DeviceKind::Fpga, SimDuration::from_nanos(900));
        let snap = db.snapshot();
        assert_eq!(snap.len(), 2);
        let a = &snap[0];
        assert_eq!(
            (a.kernel.as_str(), a.kind, a.runs),
            ("a", DeviceKind::Gpu, 2)
        );
        assert!(a.observed.is_some() && a.seed.is_none());
        assert_eq!(a.prediction, a.observed);
        let b = &snap[1];
        assert_eq!(
            (b.kernel.as_str(), b.kind, b.runs),
            ("b", DeviceKind::Fpga, 0)
        );
        assert_eq!(b.prediction, Some(SimDuration::from_nanos(900)));
    }

    #[test]
    fn seed_displacement_counts_once_per_key() {
        let db = ProfileDb::new();
        db.seed("k", DeviceKind::Gpu, SimDuration::from_nanos(500));
        assert_eq!(db.seed_displacements(), 0);
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(db.seed_displacements(), 0, "one run is still cold");
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(
            db.seed_displacements(),
            1,
            "warming past the threshold displaces"
        );
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(db.seed_displacements(), 1, "further runs don't re-count");
        // Unseeded keys never count.
        db.record("u", DeviceKind::Cpu, SimDuration::from_nanos(1));
        db.record("u", DeviceKind::Cpu, SimDuration::from_nanos(1));
        assert_eq!(db.seed_displacements(), 1);
    }

    #[test]
    fn seed_predicts_until_observations_warm() {
        let db = ProfileDb::new();
        db.seed("k", DeviceKind::Gpu, SimDuration::from_nanos(500));
        assert_eq!(
            db.predict("k", DeviceKind::Gpu),
            Some(SimDuration::from_nanos(500)),
            "cold profile falls back to the static seed"
        );
        // One observation is still too thin — the seed keeps answering.
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(
            db.predict("k", DeviceKind::Gpu),
            Some(SimDuration::from_nanos(500))
        );
        // Warm profile displaces the seed.
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(
            db.predict("k", DeviceKind::Gpu),
            Some(SimDuration::from_nanos(100))
        );
    }
}
