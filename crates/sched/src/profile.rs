//! The runtime profiling database.
//!
//! NMPs report per-kernel execution times ([`haocl_proto::messages::ProfileEntry`]);
//! the host folds them into exponential moving averages keyed by
//! `(kernel, device class)`. The heterogeneity-aware policy prefers these
//! *observed* times over model-based estimates once enough runs exist —
//! the "automatic scheduler with runtime profiling information" the paper
//! names as the upgrade path (§III-B).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use haocl_proto::messages::DeviceKind;
use haocl_sim::SimDuration;
use parking_lot::RwLock;

/// EMA smoothing factor: weight of the newest observation.
const ALPHA: f64 = 0.3;

/// Observations below this count are considered too thin to trust.
const MIN_RUNS: u64 = 2;

/// Per-observation decay of a seed's weight once the key is warm: after
/// `k` post-warm-up observations the seed still contributes
/// `SEED_DECAY^k` of the blended prediction, so static hints fade out
/// geometrically instead of being dropped on a cliff edge.
const SEED_DECAY: f64 = 0.5;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    runs: u64,
    ema_nanos: f64,
    /// Exponentially weighted variance of the observations (same ALPHA
    /// window as the mean) — the rolling dispersion the drift detector's
    /// z-scores are measured against.
    var_nanos2: f64,
}

/// Thread-safe profile store.
///
/// # Examples
///
/// ```
/// use haocl_sched::ProfileDb;
/// use haocl_proto::messages::DeviceKind;
/// use haocl_sim::SimDuration;
///
/// let db = ProfileDb::new();
/// db.record("matmul", DeviceKind::Gpu, SimDuration::from_millis(10));
/// db.record("matmul", DeviceKind::Gpu, SimDuration::from_millis(12));
/// let predicted = db.predict("matmul", DeviceKind::Gpu).unwrap();
/// assert!(predicted >= SimDuration::from_millis(10));
/// assert!(predicted <= SimDuration::from_millis(12));
/// ```
#[derive(Debug, Default)]
pub struct ProfileDb {
    entries: RwLock<HashMap<(String, DeviceKind), Entry>>,
    /// Static placement hints (see [`ProfileDb::seed`]), consulted only
    /// while the observed profile for a key is still cold.
    seeds: RwLock<HashMap<(String, DeviceKind), f64>>,
    /// How many seeded keys have warmed past `MIN_RUNS` (the moment the
    /// dynamic profile first displaces a static hint).
    seed_displacements: AtomicU64,
    /// How many observations have updated an *already warm* key — each
    /// one is an online recalibration of a trusted estimate. Feeds the
    /// `haocl_profile_recalibrations_total` metric.
    recalibrations: AtomicU64,
}

/// Rolling statistics for one warm `(kernel, device class)` key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileStats {
    /// Observed run count.
    pub runs: u64,
    /// The exponentially weighted mean execution time.
    pub mean: SimDuration,
    /// The exponentially weighted standard deviation.
    pub std_dev: SimDuration,
}

/// One `(kernel, device class)` row of a [`ProfileDb::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSnapshotEntry {
    /// The kernel name.
    pub kernel: String,
    /// The device class.
    pub kind: DeviceKind,
    /// Observed run count (0 for seed-only rows).
    pub runs: u64,
    /// The warm observed EMA, if `runs` passed the trust threshold.
    pub observed: Option<SimDuration>,
    /// The planted static hint, if any.
    pub seed: Option<SimDuration>,
    /// What [`ProfileDb::predict`] currently answers for this key.
    pub prediction: Option<SimDuration>,
}

impl ProfileDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        ProfileDb::default()
    }

    /// Records one observed execution time, updating the rolling EWMA
    /// and its exponentially weighted variance (West's incremental
    /// update). Every record against an already-warm key counts as an
    /// online recalibration.
    pub fn record(&self, kernel: &str, kind: DeviceKind, duration: SimDuration) {
        let key = (kernel.to_string(), kind);
        let mut entries = self.entries.write();
        let e = entries.entry(key.clone()).or_default();
        let nanos = duration.as_nanos() as f64;
        if e.runs == 0 {
            e.ema_nanos = nanos;
            e.var_nanos2 = 0.0;
        } else {
            if e.runs >= MIN_RUNS {
                self.recalibrations.fetch_add(1, Ordering::Relaxed);
            }
            let diff = nanos - e.ema_nanos;
            let incr = ALPHA * diff;
            e.ema_nanos += incr;
            e.var_nanos2 = (1.0 - ALPHA) * (e.var_nanos2 + diff * incr);
        }
        e.runs += 1;
        if e.runs == MIN_RUNS && self.seeds.read().contains_key(&key) {
            self.seed_displacements.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Plants a *static* prediction for a key, used by
    /// [`predict`](Self::predict) until enough real observations exist to
    /// displace it. This is how the compiler's feature-vector placement
    /// hints enter the scheduler before any launch has run (see
    /// [`crate::seed_from_report`]).
    pub fn seed(&self, kernel: &str, kind: DeviceKind, duration: SimDuration) {
        self.seeds
            .write()
            .insert((kernel.to_string(), kind), duration.as_nanos() as f64);
    }

    /// Predicted execution time. While a key is cold (< `MIN_RUNS`
    /// observations) a planted seed answers alone; once warm, the seed's
    /// weight decays geometrically with every further observation
    /// (`SEED_DECAY^k`), so the blended prediction slides from the static
    /// hint onto the observed EMA instead of jumping on a cliff edge.
    pub fn predict(&self, kernel: &str, kind: DeviceKind) -> Option<SimDuration> {
        let key = (kernel.to_string(), kind);
        let entry = self.entries.read().get(&key).copied();
        let seed = self.seeds.read().get(&key).copied();
        blend(entry, seed).map(|n| SimDuration::from_nanos(n as u64))
    }

    /// The warm observed EMA only — `None` while the key is cold, even
    /// if a seed exists. Use [`predict`](Self::predict) for the combined
    /// answer; this split lets callers attribute a prediction's *source*.
    pub fn observed(&self, kernel: &str, kind: DeviceKind) -> Option<SimDuration> {
        self.entries
            .read()
            .get(&(kernel.to_string(), kind))
            .filter(|e| e.runs >= MIN_RUNS)
            .map(|e| SimDuration::from_nanos(e.ema_nanos as u64))
    }

    /// The planted static hint for a key, regardless of warm-up state.
    pub fn seed_hint(&self, kernel: &str, kind: DeviceKind) -> Option<SimDuration> {
        self.seeds
            .read()
            .get(&(kernel.to_string(), kind))
            .map(|&n| SimDuration::from_nanos(n as u64))
    }

    /// How many seeded keys have been displaced by warm observations so
    /// far — each counts exactly once, at the record that crossed the
    /// trust threshold. Feeds the `haocl_profile_seed_displaced_total`
    /// metric.
    pub fn seed_displacements(&self) -> u64 {
        self.seed_displacements.load(Ordering::Relaxed)
    }

    /// How many observations have recalibrated an already-warm key.
    /// Feeds the `haocl_profile_recalibrations_total` metric.
    pub fn recalibrations(&self) -> u64 {
        self.recalibrations.load(Ordering::Relaxed)
    }

    /// Rolling mean and dispersion for a warm key — the window the drift
    /// detector's z-score/ratio tests are measured against. `None` while
    /// cold.
    pub fn stats(&self, kernel: &str, kind: DeviceKind) -> Option<ProfileStats> {
        self.entries
            .read()
            .get(&(kernel.to_string(), kind))
            .filter(|e| e.runs >= MIN_RUNS)
            .map(|e| ProfileStats {
                runs: e.runs,
                mean: SimDuration::from_nanos(e.ema_nanos as u64),
                std_dev: SimDuration::from_nanos(e.var_nanos2.max(0.0).sqrt() as u64),
            })
    }

    /// Every device class with a *warm* observation of `kernel`, with its
    /// observed EMA. This is the raw material the compute-currency table
    /// derives device-class exchange rates from.
    pub fn warm_observations(&self, kernel: &str) -> Vec<(DeviceKind, SimDuration)> {
        let mut out: Vec<(DeviceKind, SimDuration)> = self
            .entries
            .read()
            .iter()
            .filter(|((k, _), e)| k == kernel && e.runs >= MIN_RUNS)
            .map(|((_, kind), e)| (*kind, SimDuration::from_nanos(e.ema_nanos as u64)))
            .collect();
        out.sort_by_key(|(kind, _)| format!("{kind:?}"));
        out
    }

    /// Every kernel name with at least one warm observation, sorted.
    pub fn warm_kernels(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .entries
            .read()
            .iter()
            .filter(|(_, e)| e.runs >= MIN_RUNS)
            .map(|((k, _), _)| k.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Every `(kernel, device class)` key the database knows about —
    /// observed or merely seeded — with run counts and all three
    /// prediction views, sorted by kernel then device class.
    pub fn snapshot(&self) -> Vec<ProfileSnapshotEntry> {
        let entries = self.entries.read();
        let seeds = self.seeds.read();
        let mut keys: Vec<(String, DeviceKind)> =
            entries.keys().chain(seeds.keys()).cloned().collect();
        keys.sort_by(|a, b| (&a.0, format!("{:?}", a.1)).cmp(&(&b.0, format!("{:?}", b.1))));
        keys.dedup();
        keys.into_iter()
            .map(|key| {
                let e = entries.get(&key).copied();
                let seed_nanos = seeds.get(&key).copied();
                let entry = e.unwrap_or_default();
                let observed = (entry.runs >= MIN_RUNS)
                    .then(|| SimDuration::from_nanos(entry.ema_nanos as u64));
                let seed = seed_nanos.map(|n| SimDuration::from_nanos(n as u64));
                ProfileSnapshotEntry {
                    prediction: blend(e, seed_nanos).map(|n| SimDuration::from_nanos(n as u64)),
                    kernel: key.0,
                    kind: key.1,
                    runs: entry.runs,
                    observed,
                    seed,
                }
            })
            .collect()
    }

    /// Number of recorded observations for a key.
    pub fn runs(&self, kernel: &str, kind: DeviceKind) -> u64 {
        self.entries
            .read()
            .get(&(kernel.to_string(), kind))
            .map_or(0, |e| e.runs)
    }

    /// Number of distinct `(kernel, device class)` keys.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Clears all observations, seeds and the displacement counter.
    pub fn clear(&self) {
        self.entries.write().clear();
        self.seeds.write().clear();
        self.seed_displacements.store(0, Ordering::Relaxed);
        self.recalibrations.store(0, Ordering::Relaxed);
    }
}

/// The seed-decay blend behind [`ProfileDb::predict`]: cold keys answer
/// from the seed alone; warm keys mix the seed in with geometrically
/// vanishing weight.
fn blend(entry: Option<Entry>, seed: Option<f64>) -> Option<f64> {
    match (entry.filter(|e| e.runs >= MIN_RUNS), seed) {
        (Some(e), Some(s)) => {
            let w = SEED_DECAY.powi((e.runs - MIN_RUNS + 1).min(64) as i32);
            Some(w * s + (1.0 - w) * e.ema_nanos)
        }
        (Some(e), None) => Some(e.ema_nanos),
        (None, s) => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_observation_is_not_enough() {
        let db = ProfileDb::new();
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(db.predict("k", DeviceKind::Gpu), None);
        assert_eq!(db.runs("k", DeviceKind::Gpu), 1);
    }

    #[test]
    fn ema_converges_toward_recent_observations() {
        let db = ProfileDb::new();
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(1000));
        for _ in 0..50 {
            db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        }
        let p = db.predict("k", DeviceKind::Gpu).unwrap();
        assert!(p < SimDuration::from_nanos(110), "{p}");
    }

    #[test]
    fn kinds_are_independent_keys() {
        let db = ProfileDb::new();
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(10));
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(10));
        db.record("k", DeviceKind::Fpga, SimDuration::from_nanos(999));
        assert!(db.predict("k", DeviceKind::Gpu).is_some());
        assert!(db.predict("k", DeviceKind::Fpga).is_none());
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn unknown_kernel_predicts_none() {
        let db = ProfileDb::new();
        assert_eq!(db.predict("ghost", DeviceKind::Cpu), None);
        assert!(db.is_empty());
    }

    #[test]
    fn clear_resets() {
        let db = ProfileDb::new();
        db.record("k", DeviceKind::Cpu, SimDuration::from_nanos(5));
        db.seed("k", DeviceKind::Gpu, SimDuration::from_nanos(5));
        db.clear();
        assert!(db.is_empty());
        assert_eq!(db.predict("k", DeviceKind::Gpu), None);
    }

    #[test]
    fn snapshot_covers_observed_and_seed_only_keys() {
        let db = ProfileDb::new();
        db.record("a", DeviceKind::Gpu, SimDuration::from_nanos(100));
        db.record("a", DeviceKind::Gpu, SimDuration::from_nanos(100));
        db.seed("b", DeviceKind::Fpga, SimDuration::from_nanos(900));
        let snap = db.snapshot();
        assert_eq!(snap.len(), 2);
        let a = &snap[0];
        assert_eq!(
            (a.kernel.as_str(), a.kind, a.runs),
            ("a", DeviceKind::Gpu, 2)
        );
        assert!(a.observed.is_some() && a.seed.is_none());
        assert_eq!(a.prediction, a.observed);
        let b = &snap[1];
        assert_eq!(
            (b.kernel.as_str(), b.kind, b.runs),
            ("b", DeviceKind::Fpga, 0)
        );
        assert_eq!(b.prediction, Some(SimDuration::from_nanos(900)));
    }

    #[test]
    fn seed_displacement_counts_once_per_key() {
        let db = ProfileDb::new();
        db.seed("k", DeviceKind::Gpu, SimDuration::from_nanos(500));
        assert_eq!(db.seed_displacements(), 0);
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(db.seed_displacements(), 0, "one run is still cold");
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(
            db.seed_displacements(),
            1,
            "warming past the threshold displaces"
        );
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(db.seed_displacements(), 1, "further runs don't re-count");
        // Unseeded keys never count.
        db.record("u", DeviceKind::Cpu, SimDuration::from_nanos(1));
        db.record("u", DeviceKind::Cpu, SimDuration::from_nanos(1));
        assert_eq!(db.seed_displacements(), 1);
    }

    #[test]
    fn seed_predicts_until_observations_warm_then_decays() {
        let db = ProfileDb::new();
        db.seed("k", DeviceKind::Gpu, SimDuration::from_nanos(500));
        assert_eq!(
            db.predict("k", DeviceKind::Gpu),
            Some(SimDuration::from_nanos(500)),
            "cold profile falls back to the static seed"
        );
        // One observation is still too thin — the seed keeps answering.
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(
            db.predict("k", DeviceKind::Gpu),
            Some(SimDuration::from_nanos(500))
        );
        // Warm profile blends: the seed still carries half the weight at
        // the trust threshold…
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(
            db.predict("k", DeviceKind::Gpu),
            Some(SimDuration::from_nanos(300))
        );
        // …then decays geometrically toward the observed EMA.
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(
            db.predict("k", DeviceKind::Gpu),
            Some(SimDuration::from_nanos(200))
        );
        for _ in 0..20 {
            db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        }
        let p = db.predict("k", DeviceKind::Gpu).unwrap();
        assert!(p <= SimDuration::from_nanos(101), "seed fully decayed: {p}");
    }

    #[test]
    fn recalibrations_count_warm_updates_only() {
        let db = ProfileDb::new();
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(db.recalibrations(), 0, "warm-up records are not recals");
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(120));
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(90));
        assert_eq!(db.recalibrations(), 2);
        db.clear();
        assert_eq!(db.recalibrations(), 0);
    }

    #[test]
    fn stats_expose_rolling_dispersion() {
        let db = ProfileDb::new();
        assert_eq!(db.stats("k", DeviceKind::Gpu), None);
        for _ in 0..8 {
            db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(1000));
        }
        let steady = db.stats("k", DeviceKind::Gpu).unwrap();
        assert_eq!(steady.mean, SimDuration::from_nanos(1000));
        assert_eq!(
            steady.std_dev,
            SimDuration::ZERO,
            "constant observations have no spread"
        );
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(2000));
        let jolted = db.stats("k", DeviceKind::Gpu).unwrap();
        assert!(jolted.std_dev > SimDuration::ZERO);
        assert!(jolted.mean > steady.mean);
    }

    #[test]
    fn warm_observations_list_kinds_that_share_a_kernel() {
        let db = ProfileDb::new();
        for _ in 0..2 {
            db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
            db.record("k", DeviceKind::Cpu, SimDuration::from_nanos(400));
        }
        db.record("k", DeviceKind::Fpga, SimDuration::from_nanos(999));
        let warm = db.warm_observations("k");
        assert_eq!(
            warm,
            vec![
                (DeviceKind::Cpu, SimDuration::from_nanos(400)),
                (DeviceKind::Gpu, SimDuration::from_nanos(100)),
            ],
            "the single FPGA run is still cold"
        );
        assert_eq!(db.warm_kernels(), vec!["k".to_string()]);
    }
}
