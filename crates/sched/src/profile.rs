//! The runtime profiling database.
//!
//! NMPs report per-kernel execution times ([`haocl_proto::messages::ProfileEntry`]);
//! the host folds them into exponential moving averages keyed by
//! `(kernel, device class)`. The heterogeneity-aware policy prefers these
//! *observed* times over model-based estimates once enough runs exist —
//! the "automatic scheduler with runtime profiling information" the paper
//! names as the upgrade path (§III-B).

use std::collections::HashMap;

use haocl_proto::messages::DeviceKind;
use haocl_sim::SimDuration;
use parking_lot::RwLock;

/// EMA smoothing factor: weight of the newest observation.
const ALPHA: f64 = 0.3;

/// Observations below this count are considered too thin to trust.
const MIN_RUNS: u64 = 2;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    runs: u64,
    ema_nanos: f64,
}

/// Thread-safe profile store.
///
/// # Examples
///
/// ```
/// use haocl_sched::ProfileDb;
/// use haocl_proto::messages::DeviceKind;
/// use haocl_sim::SimDuration;
///
/// let db = ProfileDb::new();
/// db.record("matmul", DeviceKind::Gpu, SimDuration::from_millis(10));
/// db.record("matmul", DeviceKind::Gpu, SimDuration::from_millis(12));
/// let predicted = db.predict("matmul", DeviceKind::Gpu).unwrap();
/// assert!(predicted >= SimDuration::from_millis(10));
/// assert!(predicted <= SimDuration::from_millis(12));
/// ```
#[derive(Debug, Default)]
pub struct ProfileDb {
    entries: RwLock<HashMap<(String, DeviceKind), Entry>>,
    /// Static placement hints (see [`ProfileDb::seed`]), consulted only
    /// while the observed profile for a key is still cold.
    seeds: RwLock<HashMap<(String, DeviceKind), f64>>,
}

impl ProfileDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        ProfileDb::default()
    }

    /// Records one observed execution time.
    pub fn record(&self, kernel: &str, kind: DeviceKind, duration: SimDuration) {
        let mut entries = self.entries.write();
        let e = entries.entry((kernel.to_string(), kind)).or_default();
        let nanos = duration.as_nanos() as f64;
        if e.runs == 0 {
            e.ema_nanos = nanos;
        } else {
            e.ema_nanos = ALPHA * nanos + (1.0 - ALPHA) * e.ema_nanos;
        }
        e.runs += 1;
    }

    /// Plants a *static* prediction for a key, used by
    /// [`predict`](Self::predict) until enough real observations exist to
    /// displace it. This is how the compiler's feature-vector placement
    /// hints enter the scheduler before any launch has run (see
    /// [`crate::seed_from_report`]).
    pub fn seed(&self, kernel: &str, kind: DeviceKind, duration: SimDuration) {
        self.seeds
            .write()
            .insert((kernel.to_string(), kind), duration.as_nanos() as f64);
    }

    /// Predicted execution time: the observed EMA once warm
    /// (≥ `MIN_RUNS` observations), else a planted seed, else `None`.
    pub fn predict(&self, kernel: &str, kind: DeviceKind) -> Option<SimDuration> {
        let key = (kernel.to_string(), kind);
        {
            let entries = self.entries.read();
            if let Some(e) = entries.get(&key) {
                if e.runs >= MIN_RUNS {
                    return Some(SimDuration::from_nanos(e.ema_nanos as u64));
                }
            }
        }
        self.seeds
            .read()
            .get(&key)
            .map(|&n| SimDuration::from_nanos(n as u64))
    }

    /// Number of recorded observations for a key.
    pub fn runs(&self, kernel: &str, kind: DeviceKind) -> u64 {
        self.entries
            .read()
            .get(&(kernel.to_string(), kind))
            .map_or(0, |e| e.runs)
    }

    /// Number of distinct `(kernel, device class)` keys.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Clears all observations and seeds.
    pub fn clear(&self) {
        self.entries.write().clear();
        self.seeds.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_observation_is_not_enough() {
        let db = ProfileDb::new();
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(db.predict("k", DeviceKind::Gpu), None);
        assert_eq!(db.runs("k", DeviceKind::Gpu), 1);
    }

    #[test]
    fn ema_converges_toward_recent_observations() {
        let db = ProfileDb::new();
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(1000));
        for _ in 0..50 {
            db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        }
        let p = db.predict("k", DeviceKind::Gpu).unwrap();
        assert!(p < SimDuration::from_nanos(110), "{p}");
    }

    #[test]
    fn kinds_are_independent_keys() {
        let db = ProfileDb::new();
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(10));
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(10));
        db.record("k", DeviceKind::Fpga, SimDuration::from_nanos(999));
        assert!(db.predict("k", DeviceKind::Gpu).is_some());
        assert!(db.predict("k", DeviceKind::Fpga).is_none());
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn unknown_kernel_predicts_none() {
        let db = ProfileDb::new();
        assert_eq!(db.predict("ghost", DeviceKind::Cpu), None);
        assert!(db.is_empty());
    }

    #[test]
    fn clear_resets() {
        let db = ProfileDb::new();
        db.record("k", DeviceKind::Cpu, SimDuration::from_nanos(5));
        db.seed("k", DeviceKind::Gpu, SimDuration::from_nanos(5));
        db.clear();
        assert!(db.is_empty());
        assert_eq!(db.predict("k", DeviceKind::Gpu), None);
    }

    #[test]
    fn seed_predicts_until_observations_warm() {
        let db = ProfileDb::new();
        db.seed("k", DeviceKind::Gpu, SimDuration::from_nanos(500));
        assert_eq!(
            db.predict("k", DeviceKind::Gpu),
            Some(SimDuration::from_nanos(500)),
            "cold profile falls back to the static seed"
        );
        // One observation is still too thin — the seed keeps answering.
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(
            db.predict("k", DeviceKind::Gpu),
            Some(SimDuration::from_nanos(500))
        );
        // Warm profile displaces the seed.
        db.record("k", DeviceKind::Gpu, SimDuration::from_nanos(100));
        assert_eq!(
            db.predict("k", DeviceKind::Gpu),
            Some(SimDuration::from_nanos(100))
        );
    }
}
