//! Node health tracking for the scheduler.
//!
//! The host runtime absorbs transport faults (retransmission, failover),
//! but a node that keeps losing its route is a bad place to put work
//! even when every individual call eventually succeeds. The
//! [`QuarantineTracker`] turns the runtime's failure signals — routing
//! epoch bumps and explicit failure reports — into strikes per node;
//! once a node accumulates [`QuarantineTracker::threshold`] strikes it
//! is *quarantined*: the scheduler stops offering its devices while any
//! alternative exists (quarantine is advisory — a cluster whose every
//! node is quarantined still schedules, because refusing all work
//! helps nobody).

use std::collections::BTreeMap;

use haocl_proto::ids::NodeId;
use parking_lot::Mutex;

/// Default number of strikes before a node is quarantined.
pub const DEFAULT_QUARANTINE_THRESHOLD: u32 = 2;

#[derive(Debug, Default, Clone, Copy)]
struct NodeHealth {
    strikes: u32,
    /// The node's last observed routing epoch (see
    /// [`QuarantineTracker::observe_epoch`]).
    last_epoch: u32,
    quarantined: bool,
    /// Advisory sub-healthy flag set by the drift detector: the node is
    /// slower than its own baseline but still functional. Degraded
    /// candidates are down-weighted by the placement policies, never
    /// removed from the candidate set.
    degraded: bool,
}

/// A node's overall health verdict, worst-first when combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeCondition {
    /// No strikes against the node.
    Healthy,
    /// Advisory: the drift detector sees the node running sub-healthy;
    /// its candidates are down-weighted, not banned.
    Degraded,
    /// Hard: the node is out of the candidate set while alternatives
    /// exist.
    Quarantined,
}

impl std::fmt::Display for NodeCondition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            NodeCondition::Healthy => "healthy",
            NodeCondition::Degraded => "degraded",
            NodeCondition::Quarantined => "quarantined",
        })
    }
}

/// Per-node strike counter with a quarantine threshold.
#[derive(Debug)]
pub struct QuarantineTracker {
    threshold: u32,
    // BTreeMap keyed by raw id keeps iteration (and rendering) ordered
    // and deterministic.
    nodes: Mutex<BTreeMap<u32, NodeHealth>>,
}

impl Default for QuarantineTracker {
    fn default() -> Self {
        QuarantineTracker::new(DEFAULT_QUARANTINE_THRESHOLD)
    }
}

impl QuarantineTracker {
    /// Creates a tracker that quarantines after `threshold` strikes.
    /// A threshold of 0 is clamped to 1 (a tracker that quarantines
    /// healthy nodes is a misconfiguration, not a policy).
    pub fn new(threshold: u32) -> Self {
        QuarantineTracker {
            threshold: threshold.max(1),
            nodes: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configured strike threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Records one failure strike against `node`. Returns `true` when
    /// this strike newly quarantined the node (exactly once per
    /// quarantine, so callers can emit the audit entry / metric on the
    /// transition).
    pub fn record_failure(&self, node: NodeId) -> bool {
        let mut nodes = self.nodes.lock();
        let health = nodes.entry(node.raw()).or_default();
        health.strikes += 1;
        if !health.quarantined && health.strikes >= self.threshold {
            health.quarantined = true;
            return true;
        }
        false
    }

    /// Records a success: clears accumulated strikes (a quarantined
    /// node stays quarantined — release is an explicit
    /// [`QuarantineTracker::reinstate`] decision, not a side effect of
    /// one good call).
    pub fn record_success(&self, node: NodeId) {
        if let Some(health) = self.nodes.lock().get_mut(&node.raw()) {
            health.strikes = 0;
        }
    }

    /// Folds a routing-epoch observation into the strike count: every
    /// epoch increment since the last observation is one failover the
    /// runtime performed for this node, i.e. one strike. Returns `true`
    /// when the observation newly quarantined the node.
    pub fn observe_epoch(&self, node: NodeId, epoch: u32) -> bool {
        self.observe_epochs(node, epoch, 0)
    }

    /// Like [`QuarantineTracker::observe_epoch`], but with the node's
    /// *voluntary* epoch count (graceful drains) subtracted first. A
    /// drain bumps the routing epoch exactly like a crash does — the
    /// bump is what invalidates stale residency — but it is an operator
    /// decision, not a failure signal, so it must not earn strikes.
    pub fn observe_epochs(&self, node: NodeId, epoch: u32, voluntary: u32) -> bool {
        let epoch = epoch.saturating_sub(voluntary);
        let mut nodes = self.nodes.lock();
        let health = nodes.entry(node.raw()).or_default();
        let new_strikes = epoch.saturating_sub(health.last_epoch);
        health.last_epoch = health.last_epoch.max(epoch);
        if new_strikes == 0 {
            return false;
        }
        health.strikes += new_strikes;
        if !health.quarantined && health.strikes >= self.threshold {
            health.quarantined = true;
            return true;
        }
        false
    }

    /// Whether `node` is currently quarantined.
    pub fn is_quarantined(&self, node: NodeId) -> bool {
        self.nodes
            .lock()
            .get(&node.raw())
            .is_some_and(|h| h.quarantined)
    }

    /// Current strike count for `node`.
    pub fn strikes(&self, node: NodeId) -> u32 {
        self.nodes.lock().get(&node.raw()).map_or(0, |h| h.strikes)
    }

    /// The quarantined nodes, ascending by id.
    pub fn quarantined(&self) -> Vec<NodeId> {
        self.nodes
            .lock()
            .iter()
            .filter(|(_, h)| h.quarantined)
            .map(|(id, _)| NodeId::new(*id))
            .collect()
    }

    /// Lifts a node's quarantine and clears its strikes (operator
    /// decision after the node recovered).
    pub fn reinstate(&self, node: NodeId) {
        if let Some(health) = self.nodes.lock().get_mut(&node.raw()) {
            health.strikes = 0;
            health.quarantined = false;
        }
    }

    /// Erases everything the tracker knows about a node: strikes,
    /// epoch baseline, quarantine and degraded flags. Called when a
    /// node *voluntarily* departs the cluster — its history must not
    /// follow a fresh node that later rejoins under the same id, and a
    /// drain is not evidence of ill health.
    pub fn forget(&self, node: NodeId) {
        self.nodes.lock().remove(&node.raw());
    }

    /// Sets the advisory `Degraded` flag on a node (drift-detector
    /// verdict). Returns `true` on the transition, `false` if the node
    /// was already degraded.
    pub fn mark_degraded(&self, node: NodeId) -> bool {
        let mut nodes = self.nodes.lock();
        let health = nodes.entry(node.raw()).or_default();
        let transition = !health.degraded;
        health.degraded = true;
        transition
    }

    /// Clears the advisory `Degraded` flag. Returns `true` on the
    /// transition.
    pub fn clear_degraded(&self, node: NodeId) -> bool {
        let mut nodes = self.nodes.lock();
        let Some(health) = nodes.get_mut(&node.raw()) else {
            return false;
        };
        let transition = health.degraded;
        health.degraded = false;
        transition
    }

    /// Whether the node currently carries the advisory `Degraded` flag.
    pub fn is_degraded(&self, node: NodeId) -> bool {
        self.nodes
            .lock()
            .get(&node.raw())
            .is_some_and(|h| h.degraded)
    }

    /// The node's overall condition, worst verdict first: a hard
    /// quarantine outranks the advisory degraded flag.
    pub fn condition(&self, node: NodeId) -> NodeCondition {
        match self.nodes.lock().get(&node.raw()) {
            Some(h) if h.quarantined => NodeCondition::Quarantined,
            Some(h) if h.degraded => NodeCondition::Degraded,
            _ => NodeCondition::Healthy,
        }
    }

    /// The degraded (but not quarantined) nodes, ascending by id.
    pub fn degraded(&self) -> Vec<NodeId> {
        self.nodes
            .lock()
            .iter()
            .filter(|(_, h)| h.degraded && !h.quarantined)
            .map(|(id, _)| NodeId::new(*id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strikes_accumulate_to_quarantine_exactly_once() {
        let t = QuarantineTracker::new(3);
        let n = NodeId::new(4);
        assert!(!t.record_failure(n));
        assert!(!t.record_failure(n));
        assert!(!t.is_quarantined(n));
        assert!(t.record_failure(n), "third strike quarantines");
        assert!(t.is_quarantined(n));
        assert!(!t.record_failure(n), "transition reported only once");
        assert_eq!(t.quarantined(), vec![n]);
    }

    #[test]
    fn success_clears_strikes_but_not_quarantine() {
        let t = QuarantineTracker::new(2);
        let n = NodeId::new(0);
        t.record_failure(n);
        assert_eq!(t.strikes(n), 1);
        t.record_success(n);
        assert_eq!(t.strikes(n), 0);
        // A flapping node must still reach quarantine from zero.
        t.record_failure(n);
        assert!(t.record_failure(n));
        t.record_success(n);
        assert!(t.is_quarantined(n), "success does not lift quarantine");
        t.reinstate(n);
        assert!(!t.is_quarantined(n));
        assert_eq!(t.strikes(n), 0);
    }

    #[test]
    fn epoch_observations_convert_failovers_to_strikes() {
        let t = QuarantineTracker::new(2);
        let n = NodeId::new(1);
        assert!(!t.observe_epoch(n, 0), "epoch 0 is the healthy baseline");
        assert!(!t.observe_epoch(n, 1), "first failover: one strike");
        assert_eq!(t.strikes(n), 1);
        assert!(!t.observe_epoch(n, 1), "same epoch re-observed: no strike");
        assert!(t.observe_epoch(n, 2), "second failover quarantines");
        assert!(t.is_quarantined(n));
        // A jump of several epochs lands all its strikes at once.
        let m = NodeId::new(2);
        assert!(t.observe_epoch(m, 5));
        assert_eq!(t.strikes(m), 5);
    }

    #[test]
    fn degraded_is_advisory_and_orthogonal_to_quarantine() {
        let t = QuarantineTracker::new(2);
        let n = NodeId::new(3);
        assert_eq!(t.condition(n), NodeCondition::Healthy);
        assert!(t.mark_degraded(n), "first mark is a transition");
        assert!(!t.mark_degraded(n), "re-marking is not");
        assert_eq!(t.condition(n), NodeCondition::Degraded);
        assert_eq!(t.degraded(), vec![n]);
        // Degradation does not quarantine and does not add strikes.
        assert!(!t.is_quarantined(n));
        assert_eq!(t.strikes(n), 0);
        // A hard quarantine outranks the advisory flag…
        t.record_failure(n);
        t.record_failure(n);
        assert_eq!(t.condition(n), NodeCondition::Quarantined);
        assert!(t.degraded().is_empty(), "quarantined nodes drop out");
        // …and clearing the advisory flag leaves quarantine intact.
        assert!(t.clear_degraded(n));
        assert!(!t.clear_degraded(n));
        assert!(t.is_quarantined(n));
        assert_eq!(t.condition(n), NodeCondition::Quarantined);
    }

    #[test]
    fn voluntary_epochs_earn_no_strikes() {
        let t = QuarantineTracker::new(2);
        let n = NodeId::new(5);
        // Two drains, zero crashes: epoch 2, voluntary 2 — healthy.
        assert!(!t.observe_epochs(n, 2, 2));
        assert_eq!(t.strikes(n), 0);
        assert_eq!(t.condition(n), NodeCondition::Healthy);
        // One real failover on top of the drains is exactly one strike.
        assert!(!t.observe_epochs(n, 3, 2));
        assert_eq!(t.strikes(n), 1);
        // A second real failover quarantines as usual.
        assert!(t.observe_epochs(n, 4, 2));
        assert!(t.is_quarantined(n));
    }

    #[test]
    fn forget_wipes_history_for_a_rejoining_node() {
        let t = QuarantineTracker::new(2);
        let n = NodeId::new(6);
        t.record_failure(n);
        t.record_failure(n);
        t.mark_degraded(n);
        assert!(t.is_quarantined(n));
        t.forget(n);
        assert!(!t.is_quarantined(n));
        assert!(!t.is_degraded(n));
        assert_eq!(t.strikes(n), 0);
        assert_eq!(t.condition(n), NodeCondition::Healthy);
        // The epoch baseline is gone too: a rejoin re-observing the
        // (voluntary-adjusted) epoch 0 starts clean, not mid-history.
        assert!(!t.observe_epochs(n, 0, 0));
        assert_eq!(t.strikes(n), 0);
    }

    #[test]
    fn zero_threshold_is_clamped() {
        let t = QuarantineTracker::new(0);
        assert_eq!(t.threshold(), 1);
        let n = NodeId::new(9);
        assert!(!t.is_quarantined(n), "no strikes, no quarantine");
        assert!(t.record_failure(n));
    }
}
