//! Task descriptors and the task dependency graph.

use std::collections::HashMap;

use haocl_kernel::CostModel;
use haocl_proto::ids::{NodeId, UserId};

/// One kernel launch as the scheduler sees it.
///
/// Built with a fluent API; everything except the kernel name has
/// sensible defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Kernel name (profile key).
    pub kernel: String,
    /// Device-independent launch cost.
    pub cost: CostModel,
    /// The submitting user/session.
    pub user: UserId,
    /// The billing tenant's display name (audit/metric label); untagged
    /// launches bill the `"default"` tenant.
    pub tenant: String,
    /// Whether a pre-built bitstream exists, making FPGA placement legal
    /// (§III-D: FPGAs run pre-built kernels only).
    pub fpga_eligible: bool,
    /// Explicit placement from the user (`(node, device_index)`), the
    /// paper's shipped user-directed mode.
    pub pinned: Option<(NodeId, u8)>,
    /// Total bytes of input buffers the launch reads. Compared against
    /// each candidate's [`crate::DeviceView::local_bytes`] so policies
    /// and the cost model charge real migration traffic per placement.
    pub input_bytes: u64,
}

impl TaskSpec {
    /// Creates a task for `kernel` with default cost and no constraints.
    pub fn new(kernel: impl Into<String>) -> Self {
        TaskSpec {
            kernel: kernel.into(),
            cost: CostModel::new(),
            user: UserId::new(0),
            tenant: "default".to_string(),
            fpga_eligible: false,
            pinned: None,
            input_bytes: 0,
        }
    }

    /// Sets the launch cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the submitting user.
    pub fn user(mut self, user: UserId) -> Self {
        self.user = user;
        self
    }

    /// Tags the billing tenant (audit/metric label).
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Marks a pre-built bitstream as available.
    pub fn fpga_eligible(mut self, eligible: bool) -> Self {
        self.fpga_eligible = eligible;
        self
    }

    /// Pins the task to an explicit device (user-directed scheduling).
    pub fn pin(mut self, node: NodeId, device: u8) -> Self {
        self.pinned = Some((node, device));
        self
    }

    /// Declares how many bytes of input the launch reads (for
    /// locality-aware migration charging).
    pub fn input_bytes(mut self, bytes: u64) -> Self {
        self.input_bytes = bytes;
        self
    }
}

/// A dependency DAG of tasks (Fig. 1's task graph A→…→F).
///
/// # Examples
///
/// ```
/// use haocl_sched::task::{TaskGraph, TaskSpec};
///
/// let mut g = TaskGraph::new();
/// let a = g.add(TaskSpec::new("partition"));
/// let b = g.add(TaskSpec::new("compute"));
/// let c = g.add(TaskSpec::new("reduce"));
/// g.add_dep(a, b)?;
/// g.add_dep(b, c)?;
/// assert_eq!(g.topo_order()?, vec![a, b, c]);
/// # Ok::<(), haocl_sched::task::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<TaskSpec>,
    /// edges[i] = tasks that depend on i.
    edges: Vec<Vec<usize>>,
    /// Number of unfinished prerequisites per task.
    indegree: Vec<usize>,
}

/// A task graph construction or scheduling failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A task index was out of range.
    UnknownTask(usize),
    /// An edge would create a cycle (detected at `topo_order`).
    Cycle,
    /// A self-dependency was requested.
    SelfDependency(usize),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownTask(i) => write!(f, "unknown task index {i}"),
            GraphError::Cycle => f.write_str("task graph contains a cycle"),
            GraphError::SelfDependency(i) => write!(f, "task {i} cannot depend on itself"),
        }
    }
}

impl std::error::Error for GraphError {}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Adds a task, returning its index.
    pub fn add(&mut self, task: TaskSpec) -> usize {
        self.tasks.push(task);
        self.edges.push(Vec::new());
        self.indegree.push(0);
        self.tasks.len() - 1
    }

    /// Declares that `after` cannot start until `before` completes.
    ///
    /// # Errors
    ///
    /// [`GraphError::UnknownTask`] for bad indices,
    /// [`GraphError::SelfDependency`] if `before == after`.
    pub fn add_dep(&mut self, before: usize, after: usize) -> Result<(), GraphError> {
        if before == after {
            return Err(GraphError::SelfDependency(before));
        }
        if before >= self.tasks.len() {
            return Err(GraphError::UnknownTask(before));
        }
        if after >= self.tasks.len() {
            return Err(GraphError::UnknownTask(after));
        }
        self.edges[before].push(after);
        self.indegree[after] += 1;
        Ok(())
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task at `index`.
    pub fn task(&self, index: usize) -> Option<&TaskSpec> {
        self.tasks.get(index)
    }

    /// Tasks with no prerequisites (initially runnable).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.tasks.len())
            .filter(|&i| self.indegree[i] == 0)
            .collect()
    }

    /// A topological order of all tasks (Kahn's algorithm). Stable: ties
    /// resolve in insertion order.
    ///
    /// # Errors
    ///
    /// [`GraphError::Cycle`] if the graph is not a DAG.
    pub fn topo_order(&self) -> Result<Vec<usize>, GraphError> {
        let mut indegree = self.indegree.clone();
        let mut ready: Vec<usize> = (0..self.tasks.len())
            .filter(|&i| indegree[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.tasks.len());
        let mut cursor = 0;
        while cursor < ready.len() {
            let i = ready[cursor];
            cursor += 1;
            order.push(i);
            for &next in &self.edges[i] {
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    ready.push(next);
                }
            }
        }
        if order.len() != self.tasks.len() {
            return Err(GraphError::Cycle);
        }
        Ok(order)
    }

    /// Groups the topological order into parallel *waves*: tasks in the
    /// same wave have no dependencies among them and may run concurrently.
    ///
    /// # Errors
    ///
    /// [`GraphError::Cycle`] if the graph is not a DAG.
    pub fn waves(&self) -> Result<Vec<Vec<usize>>, GraphError> {
        let order = self.topo_order()?;
        let mut depth: HashMap<usize, usize> = HashMap::new();
        for &i in &order {
            let d = depth.get(&i).copied().unwrap_or(0);
            for &next in &self.edges[i] {
                let nd = depth.entry(next).or_insert(0);
                *nd = (*nd).max(d + 1);
            }
            depth.entry(i).or_insert(d);
        }
        let max_depth = depth.values().copied().max().unwrap_or(0);
        let mut waves = vec![Vec::new(); max_depth + 1];
        for &i in &order {
            waves[depth[&i]].push(i);
        }
        Ok(waves.into_iter().filter(|w| !w.is_empty()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let t = TaskSpec::new("matmul")
            .cost(CostModel::new().flops(10.0))
            .user(UserId::new(3))
            .tenant("acme")
            .fpga_eligible(true)
            .pin(NodeId::new(1), 0)
            .input_bytes(4096);
        assert_eq!(t.kernel, "matmul");
        assert_eq!(t.cost.total_flops(), 10.0);
        assert_eq!(t.user, UserId::new(3));
        assert_eq!(t.tenant, "acme");
        assert_eq!(TaskSpec::new("k").tenant, "default");
        assert!(t.fpga_eligible);
        assert_eq!(t.pinned, Some((NodeId::new(1), 0)));
        assert_eq!(t.input_bytes, 4096);
    }

    #[test]
    fn diamond_graph_topo_and_waves() {
        // a → b, a → c, b → d, c → d (the classic diamond).
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::new("a"));
        let b = g.add(TaskSpec::new("b"));
        let c = g.add(TaskSpec::new("c"));
        let d = g.add(TaskSpec::new("d"));
        g.add_dep(a, b).unwrap();
        g.add_dep(a, c).unwrap();
        g.add_dep(b, d).unwrap();
        g.add_dep(c, d).unwrap();
        assert_eq!(g.roots(), vec![a]);
        let order = g.topo_order().unwrap();
        assert_eq!(order[0], a);
        assert_eq!(order[3], d);
        let waves = g.waves().unwrap();
        assert_eq!(waves, vec![vec![a], vec![b, c], vec![d]]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::new("a"));
        let b = g.add(TaskSpec::new("b"));
        g.add_dep(a, b).unwrap();
        g.add_dep(b, a).unwrap();
        assert_eq!(g.topo_order().unwrap_err(), GraphError::Cycle);
        assert_eq!(g.waves().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn self_dependency_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::new("a"));
        assert_eq!(g.add_dep(a, a).unwrap_err(), GraphError::SelfDependency(a));
    }

    #[test]
    fn unknown_index_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::new("a"));
        assert_eq!(g.add_dep(a, 7).unwrap_err(), GraphError::UnknownTask(7));
        assert_eq!(g.add_dep(7, a).unwrap_err(), GraphError::UnknownTask(7));
        assert!(g.task(7).is_none());
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.topo_order().unwrap(), Vec::<usize>::new());
        assert_eq!(g.waves().unwrap(), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn independent_tasks_form_one_wave() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::new("a"));
        let b = g.add(TaskSpec::new("b"));
        assert_eq!(g.waves().unwrap(), vec![vec![a, b]]);
    }
}
