//! The multi-tenant arbitration tier: fair-share queueing, quotas and
//! admission control.
//!
//! The paper's host program owns the whole cluster (§III-A); a serving
//! system instead arbitrates between many concurrent *tenants*, each with
//! its own quotas. This module is the scheduler tier that sits **above**
//! placement: placement (`Scheduler`) answers *where* a launch runs,
//! tenancy answers *whose* launch runs next — and whether it is admitted
//! at all.
//!
//! * [`TenantScheduler`] — weighted fair queueing over bounded per-tenant
//!   queues. Each tenant carries a virtual-time counter advanced by
//!   `consumed / weight`; the next dispatch always goes to the active
//!   tenant with the smallest virtual time, so long-run compute shares
//!   converge to the weight ratio and no tenant starves.
//! * [`TenantQuota`] — device-memory bytes and a normalized compute-time
//!   budget. Memory is enforced at allocation through the [`QuotaLedger`];
//!   compute is enforced at admission using [`CostModel`] estimates
//!   ([`normalized_cost_nanos`]) and settled with observed durations.
//! * [`AdmitError`] — the typed `Overloaded` taxonomy: a full queue, a
//!   memory quota, or an exhausted compute budget. Load is *shed* with an
//!   error, never absorbed into an unbounded queue.
//! * Budget exhaustion works like [`crate::QuarantineTracker`] strikes: a
//!   tenant over its compute budget is throttled (every submit sheds)
//!   until an explicit [`TenantScheduler::replenish`] — an operator/billing
//!   decision, not a side effect.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use parking_lot::Mutex;

use haocl_kernel::CostModel;
use haocl_proto::ids::TenantId;
use haocl_sim::SimDuration;

/// Default bound on a tenant's pending-launch queue.
pub const DEFAULT_MAX_PENDING: usize = 64;

/// Reference device the compute budget normalizes against: 1 TFLOP/s.
/// A budget of one "normalized second" buys what the reference device
/// computes in one second, regardless of which device class actually
/// runs the work (the "compute currency" the cost model trades in).
const REFERENCE_FLOPS: f64 = 1.0e12;
/// Reference memory bandwidth: 100 GB/s.
const REFERENCE_BYTES_PER_SEC: f64 = 100.0e9;

/// Converts a launch's cost model into normalized compute nanoseconds on
/// the reference device (roofline: max of compute and memory time).
pub fn normalized_cost_nanos(cost: &CostModel) -> u64 {
    let compute = cost.total_flops() / REFERENCE_FLOPS;
    let memory = cost.total_bytes() / REFERENCE_BYTES_PER_SEC;
    SimDuration::from_secs_f64(compute.max(memory)).as_nanos()
}

/// Per-tenant resource limits. `None` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Device-memory bytes the tenant may hold allocated at once.
    pub mem_bytes: Option<u64>,
    /// Cumulative normalized compute-time budget in nanoseconds (see
    /// [`normalized_cost_nanos`]); exhausted budgets shed until
    /// [`TenantScheduler::replenish`].
    pub compute_nanos: Option<u64>,
    /// Bound on the pending-launch queue; submissions beyond it shed
    /// with [`AdmitError::QueueFull`].
    pub max_pending: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            mem_bytes: None,
            compute_nanos: None,
            max_pending: DEFAULT_MAX_PENDING,
        }
    }
}

impl TenantQuota {
    /// No limits at all (the default tenant's quota: single-tenant
    /// programs must never be shed).
    pub fn unlimited() -> Self {
        TenantQuota {
            mem_bytes: None,
            compute_nanos: None,
            max_pending: usize::MAX,
        }
    }

    /// Caps held device memory.
    pub fn mem_bytes(mut self, bytes: u64) -> Self {
        self.mem_bytes = Some(bytes);
        self
    }

    /// Caps the cumulative normalized compute budget.
    pub fn compute(mut self, budget: SimDuration) -> Self {
        self.compute_nanos = Some(budget.as_nanos());
        self
    }

    /// Bounds the pending queue.
    pub fn max_pending(mut self, limit: usize) -> Self {
        self.max_pending = limit.max(1);
        self
    }
}

/// A tenant as registered with the arbiter.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name (metric/audit label).
    pub name: String,
    /// Fair-share weight (≥ 1): long-run compute shares converge to the
    /// weight ratio between backlogged tenants.
    pub weight: u32,
    /// Resource limits.
    pub quota: TenantQuota,
}

impl TenantSpec {
    /// A weight-1 tenant with default quotas.
    pub fn new(name: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            weight: 1,
            quota: TenantQuota::default(),
        }
    }

    /// Sets the fair-share weight (clamped to ≥ 1).
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the quota.
    pub fn quota(mut self, quota: TenantQuota) -> Self {
        self.quota = quota;
        self
    }
}

/// Why a submission (or allocation) was shed instead of queued — the
/// typed `Overloaded` taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant's pending queue is at its bound.
    QueueFull {
        /// Shedding tenant.
        tenant: String,
        /// The configured bound it hit.
        limit: usize,
    },
    /// The allocation would exceed the tenant's device-memory quota.
    MemoryQuota {
        /// Shedding tenant.
        tenant: String,
        /// Bytes currently charged.
        used: u64,
        /// Bytes the allocation asked for.
        requested: u64,
        /// The configured quota.
        limit: u64,
    },
    /// The tenant's normalized compute budget is exhausted (throttled
    /// until [`TenantScheduler::replenish`]).
    ComputeBudget {
        /// Shedding tenant.
        tenant: String,
        /// Normalized nanoseconds consumed so far.
        used_nanos: u64,
        /// The configured budget.
        limit_nanos: u64,
    },
    /// The tenant id was never registered (or already closed).
    UnknownTenant {
        /// The unresolved id.
        tenant: TenantId,
    },
}

impl AdmitError {
    /// The shedding tenant's display name (`tenantN` for unknown ids).
    pub fn tenant(&self) -> String {
        match self {
            AdmitError::QueueFull { tenant, .. }
            | AdmitError::MemoryQuota { tenant, .. }
            | AdmitError::ComputeBudget { tenant, .. } => tenant.clone(),
            AdmitError::UnknownTenant { tenant } => tenant.to_string(),
        }
    }
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::QueueFull { tenant, limit } => {
                write!(f, "tenant `{tenant}` queue full (limit {limit})")
            }
            AdmitError::MemoryQuota {
                tenant,
                used,
                requested,
                limit,
            } => write!(
                f,
                "tenant `{tenant}` memory quota: {used}+{requested} B exceeds {limit} B"
            ),
            AdmitError::ComputeBudget {
                tenant,
                used_nanos,
                limit_nanos,
            } => write!(
                f,
                "tenant `{tenant}` compute budget exhausted: {used_nanos} of {limit_nanos} ns"
            ),
            AdmitError::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant}"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// A tenant's accounting snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Launches admitted into the queue.
    pub submitted: u64,
    /// Launches dispatched and completed.
    pub completed: u64,
    /// Submissions shed by admission control.
    pub shed: u64,
    /// Virtual compute-time consumed by completed launches, in
    /// nanoseconds (what fairness ratios are measured over).
    pub compute_nanos: u64,
    /// Launches currently queued.
    pub pending: usize,
    /// Device-memory bytes currently charged.
    pub mem_bytes: u64,
}

/// Thread-safe per-tenant device-memory accounting, shared between the
/// arbiter (admission) and buffer lifetimes (release on drop).
///
/// Kept separate from [`TenantScheduler`] so a buffer's release guard
/// does not need the arbiter's queue-payload type.
#[derive(Debug, Default)]
pub struct QuotaLedger {
    accounts: Mutex<BTreeMap<u32, MemAccount>>,
}

#[derive(Debug, Default, Clone)]
struct MemAccount {
    name: String,
    used: u64,
    limit: Option<u64>,
}

impl QuotaLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        QuotaLedger::default()
    }

    /// Registers (or re-limits) a tenant's memory account.
    pub fn open(&self, tenant: TenantId, name: impl Into<String>, limit: Option<u64>) {
        let mut accounts = self.accounts.lock();
        let account = accounts.entry(tenant.raw()).or_default();
        account.name = name.into();
        account.limit = limit;
    }

    /// Atomically checks and charges `bytes` against the tenant's quota.
    ///
    /// # Errors
    ///
    /// [`AdmitError::MemoryQuota`] when the charge would exceed the
    /// limit; [`AdmitError::UnknownTenant`] for unregistered ids.
    pub fn try_charge(&self, tenant: TenantId, bytes: u64) -> Result<(), AdmitError> {
        let mut accounts = self.accounts.lock();
        let account = accounts
            .get_mut(&tenant.raw())
            .ok_or(AdmitError::UnknownTenant { tenant })?;
        if let Some(limit) = account.limit {
            if account.used.saturating_add(bytes) > limit {
                return Err(AdmitError::MemoryQuota {
                    tenant: account.name.clone(),
                    used: account.used,
                    requested: bytes,
                    limit,
                });
            }
        }
        account.used += bytes;
        Ok(())
    }

    /// Releases a previous charge (buffer dropped / freed).
    pub fn release(&self, tenant: TenantId, bytes: u64) {
        if let Some(account) = self.accounts.lock().get_mut(&tenant.raw()) {
            account.used = account.used.saturating_sub(bytes);
        }
    }

    /// Bytes currently charged to `tenant`.
    pub fn used(&self, tenant: TenantId) -> u64 {
        self.accounts
            .lock()
            .get(&tenant.raw())
            .map_or(0, |a| a.used)
    }
}

struct TenantState<T> {
    spec: TenantSpec,
    queue: VecDeque<T>,
    /// WFQ virtual time in weighted nanoseconds: grows by
    /// `consumed / weight` per completion. The smallest active value is
    /// dispatched next.
    vtime: u128,
    submitted: u64,
    completed: u64,
    shed: u64,
    compute_nanos: u64,
    throttled: bool,
}

struct ArbiterInner<T> {
    tenants: BTreeMap<u32, TenantState<T>>,
    /// Virtual time of the most recent dispatch: newly-active tenants
    /// start here, so going idle never banks credit against tenants
    /// that kept the cluster busy meanwhile.
    vclock: u128,
}

/// Weighted fair queueing over bounded per-tenant launch queues.
///
/// Deterministic: dispatch order is a pure function of the submission
/// sequence and completion durations (ties on virtual time break on the
/// lower tenant id).
///
/// # Examples
///
/// ```
/// use haocl_proto::ids::TenantId;
/// use haocl_sched::tenancy::{TenantScheduler, TenantSpec};
/// use haocl_sim::SimDuration;
///
/// let arb: TenantScheduler<&'static str> = TenantScheduler::new();
/// let a = TenantId::new(1);
/// let b = TenantId::new(2);
/// arb.register(a, TenantSpec::new("a").weight(2));
/// arb.register(b, TenantSpec::new("b"));
/// arb.submit(a, "a1", 0).unwrap();
/// arb.submit(a, "a2", 0).unwrap();
/// arb.submit(b, "b1", 0).unwrap();
/// // Equal virtual time: the lower id goes first; completing charges
/// // vtime by duration/weight, so weight-2 `a` runs twice per `b` once.
/// let (first, item) = arb.next().unwrap();
/// assert_eq!((first, item), (a, "a1"));
/// arb.complete(first, SimDuration::from_micros(10));
/// assert_eq!(arb.next().unwrap(), (b, "b1"));
/// ```
pub struct TenantScheduler<T> {
    inner: Mutex<ArbiterInner<T>>,
}

impl<T> Default for TenantScheduler<T> {
    fn default() -> Self {
        TenantScheduler::new()
    }
}

impl<T> TenantScheduler<T> {
    /// Creates an arbiter with no tenants.
    pub fn new() -> Self {
        TenantScheduler {
            inner: Mutex::new(ArbiterInner {
                tenants: BTreeMap::new(),
                vclock: 0,
            }),
        }
    }

    /// Registers a tenant. Re-registering an id replaces its spec but
    /// keeps accumulated accounting.
    pub fn register(&self, tenant: TenantId, spec: TenantSpec) {
        let mut inner = self.inner.lock();
        let vclock = inner.vclock;
        inner
            .tenants
            .entry(tenant.raw())
            .and_modify(|t| t.spec = spec.clone())
            .or_insert_with(|| TenantState {
                spec,
                queue: VecDeque::new(),
                vtime: vclock,
                submitted: 0,
                completed: 0,
                shed: 0,
                compute_nanos: 0,
                throttled: false,
            });
    }

    /// Removes a tenant, returning any still-queued items.
    pub fn unregister(&self, tenant: TenantId) -> Vec<T> {
        self.inner
            .lock()
            .tenants
            .remove(&tenant.raw())
            .map(|t| t.queue.into_iter().collect())
            .unwrap_or_default()
    }

    /// The registered tenant's display name.
    pub fn name(&self, tenant: TenantId) -> Option<String> {
        self.inner
            .lock()
            .tenants
            .get(&tenant.raw())
            .map(|t| t.spec.name.clone())
    }

    /// Admission control + enqueue: `est_nanos` is the launch's
    /// normalized cost estimate ([`normalized_cost_nanos`]), checked
    /// against the remaining compute budget.
    ///
    /// # Errors
    ///
    /// The typed shed reasons of [`AdmitError`]; a shed submission is
    /// counted but never queued.
    pub fn submit(&self, tenant: TenantId, item: T, est_nanos: u64) -> Result<(), AdmitError> {
        let mut inner = self.inner.lock();
        let vclock = inner.vclock;
        let state = inner
            .tenants
            .get_mut(&tenant.raw())
            .ok_or(AdmitError::UnknownTenant { tenant })?;
        if let Some(limit) = state.spec.quota.compute_nanos {
            if state.throttled || state.compute_nanos.saturating_add(est_nanos) > limit {
                state.throttled = true;
                state.shed += 1;
                return Err(AdmitError::ComputeBudget {
                    tenant: state.spec.name.clone(),
                    used_nanos: state.compute_nanos,
                    limit_nanos: limit,
                });
            }
        }
        if state.queue.len() >= state.spec.quota.max_pending {
            state.shed += 1;
            return Err(AdmitError::QueueFull {
                tenant: state.spec.name.clone(),
                limit: state.spec.quota.max_pending,
            });
        }
        if state.queue.is_empty() {
            // (Re)activation: catch up to the dispatch clock so idle
            // time is not banked as credit.
            state.vtime = state.vtime.max(vclock);
        }
        state.queue.push_back(item);
        state.submitted += 1;
        Ok(())
    }

    /// Dispatches the next launch: the backlogged tenant with the
    /// smallest virtual time (ties to the lower id). Returns `None` when
    /// every queue is empty.
    pub fn next(&self) -> Option<(TenantId, T)> {
        let mut inner = self.inner.lock();
        let chosen = inner
            .tenants
            .iter()
            .filter(|(_, t)| !t.queue.is_empty())
            .min_by_key(|(id, t)| (t.vtime, **id))
            .map(|(id, _)| *id)?;
        let vtime = inner.tenants[&chosen].vtime;
        inner.vclock = inner.vclock.max(vtime);
        let item = inner
            .tenants
            .get_mut(&chosen)
            .and_then(|t| t.queue.pop_front())?;
        Some((TenantId::new(chosen), item))
    }

    /// Settles a dispatched launch: charges `consumed` virtual compute
    /// time to the tenant's fairness account and budget. Returns `true`
    /// when this settlement newly exhausted the compute budget (the
    /// throttle transition, reported once — callers emit the audit
    /// entry / metric on it, like a quarantine strike).
    pub fn complete(&self, tenant: TenantId, consumed: SimDuration) -> bool {
        let mut inner = self.inner.lock();
        let Some(state) = inner.tenants.get_mut(&tenant.raw()) else {
            return false;
        };
        let nanos = consumed.as_nanos();
        state.completed += 1;
        state.compute_nanos = state.compute_nanos.saturating_add(nanos);
        state.vtime += u128::from(nanos) / u128::from(state.spec.weight.max(1));
        if let Some(limit) = state.spec.quota.compute_nanos {
            if !state.throttled && state.compute_nanos >= limit {
                state.throttled = true;
                return true;
            }
        }
        false
    }

    /// Whether the tenant is currently throttled (budget exhausted).
    pub fn is_throttled(&self, tenant: TenantId) -> bool {
        self.inner
            .lock()
            .tenants
            .get(&tenant.raw())
            .is_some_and(|t| t.throttled)
    }

    /// Lifts a compute-budget throttle and resets consumed budget (the
    /// start of a new accounting period).
    pub fn replenish(&self, tenant: TenantId) {
        if let Some(state) = self.inner.lock().tenants.get_mut(&tenant.raw()) {
            state.compute_nanos = 0;
            state.throttled = false;
        }
    }

    /// The tenant's accounting snapshot (memory comes from the caller's
    /// [`QuotaLedger`], reported as 0 here).
    pub fn stats(&self, tenant: TenantId) -> Option<TenantStats> {
        self.inner
            .lock()
            .tenants
            .get(&tenant.raw())
            .map(|t| TenantStats {
                submitted: t.submitted,
                completed: t.completed,
                shed: t.shed,
                compute_nanos: t.compute_nanos,
                pending: t.queue.len(),
                mem_bytes: 0,
            })
    }

    /// Every tenant's `(id, name, stats)`, ascending by id.
    pub fn all_stats(&self) -> Vec<(TenantId, String, TenantStats)> {
        self.inner
            .lock()
            .tenants
            .iter()
            .map(|(id, t)| {
                (
                    TenantId::new(*id),
                    t.spec.name.clone(),
                    TenantStats {
                        submitted: t.submitted,
                        completed: t.completed,
                        shed: t.shed,
                        compute_nanos: t.compute_nanos,
                        pending: t.queue.len(),
                        mem_bytes: 0,
                    },
                )
            })
            .collect()
    }

    /// Total launches queued across all tenants.
    pub fn pending(&self) -> usize {
        self.inner
            .lock()
            .tenants
            .values()
            .map(|t| t.queue.len())
            .sum()
    }

    /// Whether no launch is queued anywhere.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }
}

impl<T> fmt::Debug for TenantScheduler<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("TenantScheduler")
            .field("tenants", &inner.tenants.len())
            .field(
                "pending",
                &inner.tenants.values().map(|t| t.queue.len()).sum::<usize>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arb() -> TenantScheduler<u32> {
        TenantScheduler::new()
    }

    #[test]
    fn wfq_shares_follow_weights() {
        let a = TenantId::new(1);
        let b = TenantId::new(2);
        let s = arb();
        s.register(
            a,
            TenantSpec::new("a")
                .weight(2)
                .quota(TenantQuota::unlimited()),
        );
        s.register(b, TenantSpec::new("b").quota(TenantQuota::unlimited()));
        for i in 0..90 {
            s.submit(a, i, 0).unwrap();
            s.submit(b, i, 0).unwrap();
        }
        // Dispatch 60 equal-cost launches; weight 2 should win ~40.
        let mut counts = (0u32, 0u32);
        for _ in 0..60 {
            let (t, _) = s.next().unwrap();
            if t == a {
                counts.0 += 1;
            } else {
                counts.1 += 1;
            }
            s.complete(t, SimDuration::from_micros(100));
        }
        assert_eq!(counts, (40, 20), "weighted shares must be exact here");
        let sa = s.stats(a).unwrap();
        let sb = s.stats(b).unwrap();
        assert_eq!(sa.compute_nanos, 2 * sb.compute_nanos);
    }

    #[test]
    fn no_backlogged_tenant_starves() {
        let s = arb();
        let ids: Vec<TenantId> = (1..=4).map(TenantId::new).collect();
        for (i, &t) in ids.iter().enumerate() {
            s.register(
                t,
                TenantSpec::new(format!("t{i}"))
                    .weight(if i == 0 { 8 } else { 1 })
                    .quota(TenantQuota::unlimited()),
            );
            for j in 0..50 {
                s.submit(t, j, 0).unwrap();
            }
        }
        let mut completed = vec![0u32; 4];
        for _ in 0..40 {
            let (t, _) = s.next().unwrap();
            completed[(t.raw() - 1) as usize] += 1;
            s.complete(t, SimDuration::from_micros(10));
        }
        for (i, &c) in completed.iter().enumerate() {
            assert!(c > 0, "tenant {i} starved: {completed:?}");
        }
    }

    #[test]
    fn queue_bound_sheds_with_typed_error() {
        let s = arb();
        let t = TenantId::new(1);
        s.register(
            t,
            TenantSpec::new("t").quota(TenantQuota::default().max_pending(2)),
        );
        s.submit(t, 0, 0).unwrap();
        s.submit(t, 1, 0).unwrap();
        let err = s.submit(t, 2, 0).unwrap_err();
        assert_eq!(
            err,
            AdmitError::QueueFull {
                tenant: "t".into(),
                limit: 2
            }
        );
        let stats = s.stats(t).unwrap();
        assert_eq!((stats.submitted, stats.shed, stats.pending), (2, 1, 2));
        // Draining reopens the queue.
        s.next().unwrap();
        s.submit(t, 2, 0).unwrap();
    }

    #[test]
    fn compute_budget_throttles_until_replenished() {
        let s = arb();
        let t = TenantId::new(1);
        s.register(
            t,
            TenantSpec::new("t").quota(TenantQuota::default().compute(SimDuration::from_micros(1))),
        );
        // Estimate alone can shed: a launch bigger than the whole budget.
        let err = s.submit(t, 0, 5_000).unwrap_err();
        assert!(matches!(err, AdmitError::ComputeBudget { .. }));
        // Once throttled, even free-looking submissions shed.
        assert!(s.is_throttled(t));
        assert!(s.submit(t, 0, 0).is_err());
        s.replenish(t);
        assert!(!s.is_throttled(t));
        s.submit(t, 0, 0).unwrap();
        // Observed consumption also exhausts the budget, exactly once.
        let (dispatched, _) = s.next().unwrap();
        assert!(s.complete(dispatched, SimDuration::from_micros(2)));
        assert!(!s.complete(dispatched, SimDuration::from_micros(2)));
        assert!(s.is_throttled(t));
    }

    #[test]
    fn idle_tenant_banks_no_credit() {
        let s = arb();
        let busy = TenantId::new(1);
        let idle = TenantId::new(2);
        s.register(
            busy,
            TenantSpec::new("busy").quota(TenantQuota::unlimited()),
        );
        s.register(
            idle,
            TenantSpec::new("idle").quota(TenantQuota::unlimited()),
        );
        for i in 0..10 {
            s.submit(busy, i, 0).unwrap();
        }
        for _ in 0..10 {
            let (t, _) = s.next().unwrap();
            s.complete(t, SimDuration::from_millis(1));
        }
        // `idle` wakes up: it must not get 10 ms of catch-up credit —
        // after one dispatch each, the clock is even again.
        s.submit(idle, 0, 0).unwrap();
        s.submit(idle, 1, 0).unwrap();
        s.submit(busy, 0, 0).unwrap();
        let (first, _) = s.next().unwrap();
        assert_eq!(first, idle, "fresh tenant goes first once");
        s.complete(first, SimDuration::from_millis(1));
        let (second, _) = s.next().unwrap();
        assert_eq!(second, busy, "but does not monopolize afterwards");
    }

    #[test]
    fn ledger_charges_release_and_enforce() {
        let ledger = QuotaLedger::new();
        let t = TenantId::new(1);
        ledger.open(t, "t", Some(100));
        ledger.try_charge(t, 60).unwrap();
        ledger.try_charge(t, 40).unwrap();
        let err = ledger.try_charge(t, 1).unwrap_err();
        assert_eq!(
            err,
            AdmitError::MemoryQuota {
                tenant: "t".into(),
                used: 100,
                requested: 1,
                limit: 100
            }
        );
        ledger.release(t, 40);
        assert_eq!(ledger.used(t), 60);
        ledger.try_charge(t, 40).unwrap();
        // Unknown tenants are typed, not panics.
        assert!(matches!(
            ledger.try_charge(TenantId::new(9), 1),
            Err(AdmitError::UnknownTenant { .. })
        ));
    }

    #[test]
    fn unregister_returns_queued_items() {
        let s = arb();
        let t = TenantId::new(1);
        s.register(t, TenantSpec::new("t"));
        s.submit(t, 7, 0).unwrap();
        s.submit(t, 8, 0).unwrap();
        assert_eq!(s.unregister(t), vec![7, 8]);
        assert!(matches!(
            s.submit(t, 9, 0),
            Err(AdmitError::UnknownTenant { .. })
        ));
        assert!(s.is_idle());
    }

    #[test]
    fn normalized_cost_is_roofline_on_reference_device() {
        // 1e12 flops at 1 TFLOP/s = 1 s; memory term smaller.
        let c = CostModel::new().flops(1e12).bytes_read(1e9);
        assert_eq!(normalized_cost_nanos(&c), 1_000_000_000);
        // 1e12 bytes at 100 GB/s = 10 s dominates.
        let m = CostModel::new().flops(1e9).bytes_read(1e12);
        assert_eq!(normalized_cost_nanos(&m), 10_000_000_000);
    }
}
