//! A shared monotonic virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::{SimDuration, SimTime};

/// A monotonic virtual clock shared by every component of a simulation.
///
/// The clock only moves forward: [`Clock::advance_to`] is a monotonic max,
/// so concurrent actors (NMP threads, the host runtime) can each push the
/// clock to the completion time of their latest operation without ever
/// rewinding another actor's progress. Cloning is cheap and all clones
/// observe the same time.
///
/// # Examples
///
/// ```
/// use haocl_sim::{Clock, SimDuration, SimTime};
///
/// let clock = Clock::new();
/// clock.advance_by(SimDuration::from_micros(5));
/// let other = clock.clone();
/// assert_eq!(other.now(), SimTime::ZERO + SimDuration::from_micros(5));
/// // Advancing to an earlier instant is a no-op.
/// other.advance_to(SimTime::ZERO);
/// assert_eq!(clock.now().as_nanos(), 5_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now_nanos: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Clock::default()
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_nanos.load(Ordering::SeqCst))
    }

    /// Moves the clock forward to `instant` if it is later than now.
    ///
    /// Returns the (possibly unchanged) new time.
    pub fn advance_to(&self, instant: SimTime) -> SimTime {
        let target = instant.as_nanos();
        let prev = self.now_nanos.fetch_max(target, Ordering::SeqCst);
        SimTime::from_nanos(prev.max(target))
    }

    /// Moves the clock forward by `dur` from the current instant.
    ///
    /// Returns the new time.
    pub fn advance_by(&self, dur: SimDuration) -> SimTime {
        // fetch_add keeps concurrent advances cumulative rather than racy.
        let prev = self.now_nanos.fetch_add(dur.as_nanos(), Ordering::SeqCst);
        SimTime::from_nanos(prev + dur.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Clock::new().now(), SimTime::ZERO);
    }

    #[test]
    fn advance_to_is_monotonic_max() {
        let clock = Clock::new();
        clock.advance_to(SimTime::from_nanos(100));
        clock.advance_to(SimTime::from_nanos(50));
        assert_eq!(clock.now(), SimTime::from_nanos(100));
    }

    #[test]
    fn clones_share_time() {
        let clock = Clock::new();
        let dolly = clock.clone();
        dolly.advance_by(SimDuration::from_nanos(7));
        assert_eq!(clock.now(), SimTime::from_nanos(7));
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let clock = Clock::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = clock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance_by(SimDuration::from_nanos(1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(clock.now(), SimTime::from_nanos(8000));
    }
}
