//! Virtual-time simulation substrate for the HaoCL framework.
//!
//! The HaoCL paper evaluates on a 20-node Alibaba Cloud cluster of GPUs and
//! FPGAs connected by Gigabit Ethernet. This reproduction runs on a single
//! machine, so *time* — device compute time, link transfer time, queueing
//! delay — is modelled with a deterministic virtual clock rather than
//! measured from silicon. This crate provides the pieces every other HaoCL
//! crate builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual
//!   timestamps and spans.
//! * [`Resource`] — a serialized resource (a device, a NIC, an Ethernet
//!   link) that admits one operation at a time and tracks `busy_until`.
//! * [`Clock`] — a shared monotonic virtual clock.
//! * [`trace`] — phase tracing used by the Fig. 3 breakdown analysis
//!   (data-create / data-transfer / compute phases).
//! * [`stats`] — summary statistics for the benchmark harness.
//! * [`rng`] — deterministic seed-derivation helpers so every experiment is
//!   reproducible bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use haocl_sim::{Clock, Resource, SimDuration};
//!
//! let clock = Clock::new();
//! let mut link = Resource::new("eth0");
//! // Two back-to-back transfers serialize on the link.
//! let first = link.acquire(clock.now(), SimDuration::from_micros(10));
//! let second = link.acquire(clock.now(), SimDuration::from_micros(10));
//! assert_eq!(second.end - first.end, SimDuration::from_micros(10));
//! ```

pub mod clock;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use clock::Clock;
pub use resource::{Grant, Resource};
pub use stats::Summary;
pub use time::{SimDuration, SimTime};
pub use trace::{Phase, PhaseBreakdown, Tracer};
