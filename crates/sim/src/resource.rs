//! Serialized resources with `busy_until` admission.
//!
//! A [`Resource`] models anything that can do one thing at a time: a device
//! compute pipeline, a PCIe lane, an Ethernet link, the host NIC. Operations
//! are admitted in call order; an operation requested at time `t` begins at
//! `max(t, busy_until)` and the resource stays busy until it completes.
//! This is the elementary queueing building block behind HaoCL's virtual
//! timing — contention on the shared host NIC is what bends the Fig. 2
//! scaling curves away from ideal.

use crate::time::{SimDuration, SimTime};

/// The admission result for one operation on a [`Resource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When the operation actually started (after queueing).
    pub start: SimTime,
    /// When the operation completes and the resource frees up.
    pub end: SimTime,
}

impl Grant {
    /// Time spent waiting for the resource before starting.
    pub fn queueing(&self, requested_at: SimTime) -> SimDuration {
        self.start.saturating_duration_since(requested_at)
    }

    /// Time the operation itself occupied the resource.
    pub fn service(&self) -> SimDuration {
        self.end - self.start
    }
}

/// A resource that serializes operations and tracks utilization.
///
/// # Examples
///
/// ```
/// use haocl_sim::{Resource, SimDuration, SimTime};
///
/// let mut dev = Resource::new("gpu0");
/// let a = dev.acquire(SimTime::ZERO, SimDuration::from_micros(10));
/// // Requested while busy: queues behind `a`.
/// let b = dev.acquire(SimTime::ZERO, SimDuration::from_micros(10));
/// assert_eq!(b.start, a.end);
/// assert_eq!(dev.busy_time(), SimDuration::from_micros(20));
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    name: String,
    busy_until: SimTime,
    busy_time: SimDuration,
    operations: u64,
}

impl Resource {
    /// Creates an idle resource with a diagnostic `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            busy_until: SimTime::ZERO,
            busy_time: SimDuration::ZERO,
            operations: 0,
        }
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instant the resource becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total time the resource has been occupied.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// How many operations have been admitted.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Admits an operation of length `service` requested at `at`.
    ///
    /// The operation starts as soon as the resource is free and never
    /// before `at`.
    pub fn acquire(&mut self, at: SimTime, service: SimDuration) -> Grant {
        let start = at.max(self.busy_until);
        let end = start + service;
        self.busy_until = end;
        self.busy_time += service;
        self.operations += 1;
        Grant { start, end }
    }

    /// Utilization over `[SimTime::ZERO, horizon]`, in `0.0..=1.0`.
    ///
    /// Returns `0.0` for a zero horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_time.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
    }

    /// Resets the resource to idle, clearing accounting.
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.busy_time = SimDuration::ZERO;
        self.operations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = Resource::new("r");
        let g = r.acquire(SimTime::from_nanos(5), SimDuration::from_nanos(10));
        assert_eq!(g.start, SimTime::from_nanos(5));
        assert_eq!(g.end, SimTime::from_nanos(15));
        assert_eq!(g.queueing(SimTime::from_nanos(5)), SimDuration::ZERO);
    }

    #[test]
    fn busy_resource_queues() {
        let mut r = Resource::new("r");
        r.acquire(SimTime::ZERO, SimDuration::from_nanos(100));
        let g = r.acquire(SimTime::from_nanos(30), SimDuration::from_nanos(10));
        assert_eq!(g.start, SimTime::from_nanos(100));
        assert_eq!(
            g.queueing(SimTime::from_nanos(30)),
            SimDuration::from_nanos(70)
        );
        assert_eq!(g.service(), SimDuration::from_nanos(10));
    }

    #[test]
    fn gap_leaves_resource_idle() {
        let mut r = Resource::new("r");
        r.acquire(SimTime::ZERO, SimDuration::from_nanos(10));
        let g = r.acquire(SimTime::from_nanos(100), SimDuration::from_nanos(10));
        assert_eq!(g.start, SimTime::from_nanos(100));
        // busy_time counts service only, not the idle gap.
        assert_eq!(r.busy_time(), SimDuration::from_nanos(20));
    }

    #[test]
    fn utilization_is_fraction_of_horizon() {
        let mut r = Resource::new("r");
        r.acquire(SimTime::ZERO, SimDuration::from_nanos(25));
        assert!((r.utilization(SimTime::from_nanos(100)) - 0.25).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new("r");
        r.acquire(SimTime::ZERO, SimDuration::from_nanos(25));
        r.reset();
        assert_eq!(r.busy_until(), SimTime::ZERO);
        assert_eq!(r.busy_time(), SimDuration::ZERO);
        assert_eq!(r.operations(), 0);
    }
}
