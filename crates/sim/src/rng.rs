//! Deterministic seed derivation.
//!
//! Every stochastic component in the reproduction (workload generators,
//! randomized schedules, property tests' corpora) draws its randomness from
//! a seed derived with [`derive_seed`], so a whole experiment re-runs
//! bit-for-bit from a single root seed printed in its report.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The root seed used by the benchmark harness unless overridden.
pub const DEFAULT_ROOT_SEED: u64 = 0x0a0c_1202_2020_1c0e;

/// Derives a child seed from a root seed and a textual label.
///
/// Uses the FNV-1a hash folded with splitmix64 finalization; labels that
/// differ in any byte produce unrelated streams.
///
/// # Examples
///
/// ```
/// use haocl_sim::rng::derive_seed;
///
/// let a = derive_seed(42, "matmul/gen");
/// let b = derive_seed(42, "matmul/gen");
/// let c = derive_seed(42, "bfs/gen");
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ root;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(h)
}

/// Creates a [`StdRng`] for the `(root, label)` pair.
///
/// # Examples
///
/// ```
/// use haocl_sim::rng::labeled_rng;
/// use rand::Rng;
///
/// let mut r1 = labeled_rng(7, "gen");
/// let mut r2 = labeled_rng(7, "gen");
/// assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
/// ```
pub fn labeled_rng(root: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, label))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(1, "x"), derive_seed(1, "x"));
    }

    #[test]
    fn roots_separate_streams() {
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
    }

    #[test]
    fn labels_separate_streams() {
        assert_ne!(derive_seed(1, "x"), derive_seed(1, "y"));
        assert_ne!(derive_seed(1, "ab"), derive_seed(1, "ba"));
    }

    #[test]
    fn rng_reproduces_sequence() {
        let seq1: Vec<u32> = {
            let mut r = labeled_rng(99, "seq");
            (0..16).map(|_| r.gen()).collect()
        };
        let seq2: Vec<u32> = {
            let mut r = labeled_rng(99, "seq");
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(seq1, seq2);
    }
}
