//! Summary statistics for the benchmark harness.

use std::fmt;

/// Streaming summary of a sample of `f64` observations.
///
/// Mean and variance use Welford's online algorithm, so the summary is
/// numerically stable regardless of sample magnitude and never stores the
/// observations.
///
/// # Examples
///
/// ```
/// use haocl_sim::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.stddev() - 2.138089935299395).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1 denominator), or `0.0` for fewer
    /// than two observations.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.record(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..37].iter().copied().collect();
        let right: Summary = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.stddev() - whole.stddev()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn sum_is_mean_times_count() {
        let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        assert!((s.sum() - 6.0).abs() < 1e-12);
    }
}
