//! Virtual timestamps and durations.
//!
//! [`SimTime`] is an absolute instant on the simulation timeline and
//! [`SimDuration`] is a span between instants. Both count integer
//! nanoseconds, which keeps arithmetic exact and ordering total — floating
//! point would make event ordering depend on summation order.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in virtual time, in nanoseconds since simulation
/// start.
///
/// # Examples
///
/// ```
/// use haocl_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use haocl_sim::SimDuration;
///
/// let d = SimDuration::from_micros(2) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 2_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: {earlier} is after {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from a (non-negative, finite) number of seconds.
    ///
    /// Fractions below one nanosecond round to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or infinite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The span length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span length in seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span length in milliseconds, as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Subtraction clamped at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(rhs.0 <= self.0, "duration underflow: {self} - {rhs}");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_add_duration() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t, SimTime::from_nanos(150));
    }

    #[test]
    fn time_difference_is_duration() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(350);
        assert_eq!(b - a, SimDuration::from_nanos(250));
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn time_difference_underflow_panics() {
        let _ = SimTime::from_nanos(10) - SimTime::from_nanos(20);
    }

    #[test]
    fn saturating_difference_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_scale() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn duration_from_nan_panics() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_nanos(10) * 3 / 2;
        assert_eq!(d, SimDuration::from_nanos(15));
        let sum: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(sum, SimDuration::from_nanos(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn max_picks_later() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(
            SimDuration::from_nanos(1).max(SimDuration::from_nanos(2)),
            SimDuration::from_nanos(2)
        );
    }
}
