//! Phase tracing for breakdown analysis.
//!
//! Fig. 3 of the HaoCL paper decomposes MatrixMul runtime into *data
//! creation*, *data transfer* and *compute* (system initialization is
//! reported as negligible). [`Tracer`] accumulates virtual-time spans per
//! [`Phase`]; [`PhaseBreakdown`] is the aggregated result the Fig. 3 bench
//! prints.
//!
//! A [`Phase`] is an open-ended category name rather than a closed enum:
//! the canonical four phases from the paper are associated constants
//! ([`Phase::Init`], [`Phase::DataCreate`], [`Phase::DataTransfer`],
//! [`Phase::Compute`]), and new subsystems (the `haocl-obs` span layer,
//! scheduler instrumentation, …) can mint their own categories with
//! [`Phase::new`] without touching any [`Phase::ALL`] call site. The
//! Fig. 3 breakdown output stays byte-identical: [`PhaseBreakdown`]'s
//! `Display` always lists the canonical phases first, in reporting order,
//! and appends any extra categories after them.

use std::fmt;

use parking_lot::Mutex;

use crate::time::SimDuration;

/// A runtime phase (span category) tracked by the breakdown analysis.
///
/// Phases are interned names: two phases are equal iff their names are.
/// The paper's four canonical phases are associated constants; arbitrary
/// further categories come from [`Phase::new`].
///
/// # Examples
///
/// ```
/// use haocl_sim::Phase;
///
/// let sched = Phase::new("Sched");
/// assert_ne!(sched, Phase::Compute);
/// assert_eq!(sched.as_str(), "Sched");
/// assert_eq!(Phase::new("Compute"), Phase::Compute);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Phase(&'static str);

#[allow(non_upper_case_globals)]
impl Phase {
    /// System/context initialization (reported as negligible in the paper).
    pub const Init: Phase = Phase("Init");
    /// Creating input data and device buffers.
    pub const DataCreate: Phase = Phase("DataCreate");
    /// Moving data between host and device nodes.
    pub const DataTransfer: Phase = Phase("DataTransfer");
    /// Kernel execution on the accelerator.
    pub const Compute: Phase = Phase("Compute");
}

impl Phase {
    /// The canonical phases, in Fig. 3 reporting order.
    pub const ALL: [Phase; 4] = [
        Phase::Init,
        Phase::DataCreate,
        Phase::DataTransfer,
        Phase::Compute,
    ];

    /// Mints a phase with an arbitrary category name.
    pub const fn new(name: &'static str) -> Phase {
        Phase(name)
    }

    /// The category name.
    pub const fn as_str(self) -> &'static str {
        self.0
    }

    /// Whether this is one of the canonical Fig. 3 phases.
    pub fn is_canonical(self) -> bool {
        Phase::ALL.contains(&self)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl fmt::Debug for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// Accumulated time per phase.
///
/// # Examples
///
/// ```
/// use haocl_sim::{Phase, PhaseBreakdown, SimDuration};
///
/// let mut b = PhaseBreakdown::default();
/// b.add(Phase::Compute, SimDuration::from_millis(30));
/// b.add(Phase::DataTransfer, SimDuration::from_millis(10));
/// assert!((b.fraction(Phase::Compute) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    /// Recorded categories in first-seen order.
    spans: Vec<(Phase, SimDuration)>,
    /// Bytes moved per category, in first-seen order. Tracked separately
    /// from `spans` so the `Display` output (frozen since the fixed-enum
    /// era) is unaffected.
    bytes: Vec<(Phase, u64)>,
}

impl PhaseBreakdown {
    /// Adds `dur` to `phase`.
    pub fn add(&mut self, phase: Phase, dur: SimDuration) {
        if let Some((_, d)) = self.spans.iter_mut().find(|(p, _)| *p == phase) {
            *d += dur;
        } else {
            self.spans.push((phase, dur));
        }
    }

    /// Adds `n` bytes moved during `phase`.
    pub fn add_bytes(&mut self, phase: Phase, n: u64) {
        if let Some((_, b)) = self.bytes.iter_mut().find(|(p, _)| *p == phase) {
            *b += n;
        } else {
            self.bytes.push((phase, n));
        }
    }

    /// Total bytes recorded for `phase` (zero if none).
    pub fn bytes(&self, phase: Phase) -> u64 {
        self.bytes
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, b)| *b)
            .unwrap_or(0)
    }

    /// Sum of bytes over all phases.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().map(|(_, b)| *b).sum()
    }

    /// Total time recorded for `phase` (zero if the phase never occurred).
    pub fn time(&self, phase: Phase) -> SimDuration {
        self.spans
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, d)| *d)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Sum over all phases.
    pub fn total(&self) -> SimDuration {
        self.spans.iter().map(|(_, d)| *d).sum()
    }

    /// Fraction of the total spent in `phase` (`0.0` if nothing recorded).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == SimDuration::ZERO {
            0.0
        } else {
            self.time(phase).as_secs_f64() / total.as_secs_f64()
        }
    }

    /// Merges another breakdown into this one, category by category.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for (p, d) in &other.spans {
            self.add(*p, *d);
        }
        for (p, b) in &other.bytes {
            self.add_bytes(*p, *b);
        }
    }

    /// All phases in reporting order: the canonical Fig. 3 phases first
    /// (always present), then any extra categories in first-seen order.
    pub fn phases(&self) -> Vec<Phase> {
        let mut out: Vec<Phase> = Phase::ALL.to_vec();
        for (p, _) in &self.spans {
            if !p.is_canonical() {
                out.push(*p);
            }
        }
        out
    }
}

impl PartialEq for PhaseBreakdown {
    fn eq(&self, other: &Self) -> bool {
        // Order-independent: equal iff every category agrees (absent means
        // zero), matching the old fixed-array semantics. Byte counts are
        // auxiliary instrumentation and do not participate in equality.
        self.spans.iter().all(|(p, d)| other.time(*p) == *d)
            && other.spans.iter().all(|(p, d)| self.time(*p) == *d)
    }
}

impl Eq for PhaseBreakdown {}

impl fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for p in self.phases() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}={}", p, self.time(p))?;
            first = false;
        }
        Ok(())
    }
}

/// A thread-safe collector of phase spans.
///
/// The host runtime and the NMP threads all hold clones of one tracer and
/// record into it as operations retire; the bench reads the aggregate at
/// the end of the run.
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Mutex<PhaseBreakdown>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Records `dur` against `phase`.
    pub fn record(&self, phase: Phase, dur: SimDuration) {
        self.inner.lock().add(phase, dur);
    }

    /// Records `n` bytes moved during `phase`.
    pub fn record_bytes(&self, phase: Phase, n: u64) {
        self.inner.lock().add_bytes(phase, n);
    }

    /// A snapshot of the accumulated breakdown.
    pub fn breakdown(&self) -> PhaseBreakdown {
        self.inner.lock().clone()
    }

    /// Clears the accumulated breakdown.
    pub fn reset(&self) {
        *self.inner.lock() = PhaseBreakdown::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn breakdown_accumulates_and_fractions() {
        let mut b = PhaseBreakdown::default();
        b.add(Phase::Compute, SimDuration::from_nanos(60));
        b.add(Phase::Compute, SimDuration::from_nanos(15));
        b.add(Phase::DataTransfer, SimDuration::from_nanos(25));
        assert_eq!(b.time(Phase::Compute), SimDuration::from_nanos(75));
        assert_eq!(b.total(), SimDuration::from_nanos(100));
        assert!((b.fraction(Phase::DataTransfer) - 0.25).abs() < 1e-12);
        assert_eq!(b.fraction(Phase::Init), 0.0);
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        assert_eq!(PhaseBreakdown::default().fraction(Phase::Compute), 0.0);
    }

    #[test]
    fn merge_adds_per_phase() {
        let mut a = PhaseBreakdown::default();
        a.add(Phase::Init, SimDuration::from_nanos(1));
        let mut b = PhaseBreakdown::default();
        b.add(Phase::Init, SimDuration::from_nanos(2));
        b.add(Phase::Compute, SimDuration::from_nanos(3));
        a.merge(&b);
        assert_eq!(a.time(Phase::Init), SimDuration::from_nanos(3));
        assert_eq!(a.time(Phase::Compute), SimDuration::from_nanos(3));
    }

    #[test]
    fn tracer_is_shared_across_threads() {
        let tracer = Arc::new(Tracer::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&tracer);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        t.record(Phase::Compute, SimDuration::from_nanos(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            tracer.breakdown().time(Phase::Compute),
            SimDuration::from_nanos(400)
        );
        tracer.reset();
        assert_eq!(tracer.breakdown().total(), SimDuration::ZERO);
    }

    #[test]
    fn display_lists_all_phases() {
        let b = PhaseBreakdown::default();
        let s = b.to_string();
        for p in Phase::ALL {
            assert!(s.contains(&p.to_string()), "missing {p} in {s}");
        }
    }

    #[test]
    fn display_is_byte_identical_to_fixed_enum_era() {
        // The exact Fig. 3 header line the bench printed before phases
        // became open-ended — this string must never change.
        let mut b = PhaseBreakdown::default();
        b.add(Phase::DataCreate, SimDuration::from_nanos(2_000));
        b.add(Phase::Compute, SimDuration::from_nanos(30_000));
        assert_eq!(
            b.to_string(),
            "Init=0ns DataCreate=2.000us DataTransfer=0ns Compute=30.000us"
        );
    }

    #[test]
    fn custom_phases_extend_the_breakdown() {
        let mut b = PhaseBreakdown::default();
        let sched = Phase::new("Sched");
        b.add(sched, SimDuration::from_nanos(5));
        b.add(Phase::Compute, SimDuration::from_nanos(15));
        assert_eq!(b.time(sched), SimDuration::from_nanos(5));
        assert_eq!(b.total(), SimDuration::from_nanos(20));
        let s = b.to_string();
        assert!(
            s.starts_with("Init=0ns DataCreate=0ns DataTransfer=0ns Compute=15ns"),
            "canonical phases lead: {s}"
        );
        assert!(s.ends_with("Sched=5ns"), "extras trail: {s}");
    }

    #[test]
    fn bytes_accumulate_per_phase_without_touching_display() {
        let mut b = PhaseBreakdown::default();
        b.add_bytes(Phase::DataTransfer, 100);
        b.add_bytes(Phase::DataTransfer, 28);
        b.add_bytes(Phase::DataCreate, 64);
        assert_eq!(b.bytes(Phase::DataTransfer), 128);
        assert_eq!(b.bytes(Phase::Init), 0);
        assert_eq!(b.total_bytes(), 192);
        assert_eq!(
            b.to_string(),
            "Init=0ns DataCreate=0ns DataTransfer=0ns Compute=0ns"
        );
        let mut merged = PhaseBreakdown::default();
        merged.add_bytes(Phase::DataCreate, 1);
        merged.merge(&b);
        assert_eq!(merged.bytes(Phase::DataCreate), 65);
    }

    #[test]
    fn equality_is_order_independent() {
        let mut a = PhaseBreakdown::default();
        a.add(Phase::new("A"), SimDuration::from_nanos(1));
        a.add(Phase::new("B"), SimDuration::from_nanos(2));
        let mut b = PhaseBreakdown::default();
        b.add(Phase::new("B"), SimDuration::from_nanos(2));
        b.add(Phase::new("A"), SimDuration::from_nanos(1));
        assert_eq!(a, b);
        b.add(Phase::new("C"), SimDuration::from_nanos(3));
        assert_ne!(a, b);
    }
}
