//! Phase tracing for breakdown analysis.
//!
//! Fig. 3 of the HaoCL paper decomposes MatrixMul runtime into *data
//! creation*, *data transfer* and *compute* (system initialization is
//! reported as negligible). [`Tracer`] accumulates virtual-time spans per
//! [`Phase`]; [`PhaseBreakdown`] is the aggregated result the Fig. 3 bench
//! prints.

use std::fmt;

use parking_lot::Mutex;

use crate::time::SimDuration;

/// The runtime phases the paper's breakdown analysis distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// System/context initialization (reported as negligible in the paper).
    Init,
    /// Creating input data and device buffers.
    DataCreate,
    /// Moving data between host and device nodes.
    DataTransfer,
    /// Kernel execution on the accelerator.
    Compute,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 4] = [
        Phase::Init,
        Phase::DataCreate,
        Phase::DataTransfer,
        Phase::Compute,
    ];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Phase::Init => "Init",
            Phase::DataCreate => "DataCreate",
            Phase::DataTransfer => "DataTransfer",
            Phase::Compute => "Compute",
        };
        f.write_str(name)
    }
}

/// Accumulated time per phase.
///
/// # Examples
///
/// ```
/// use haocl_sim::{Phase, PhaseBreakdown, SimDuration};
///
/// let mut b = PhaseBreakdown::default();
/// b.add(Phase::Compute, SimDuration::from_millis(30));
/// b.add(Phase::DataTransfer, SimDuration::from_millis(10));
/// assert!((b.fraction(Phase::Compute) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    spans: [SimDuration; 4],
}

impl PhaseBreakdown {
    /// Adds `dur` to `phase`.
    pub fn add(&mut self, phase: Phase, dur: SimDuration) {
        self.spans[phase as usize] += dur;
    }

    /// Total time recorded for `phase`.
    pub fn time(&self, phase: Phase) -> SimDuration {
        self.spans[phase as usize]
    }

    /// Sum over all phases.
    pub fn total(&self) -> SimDuration {
        self.spans.iter().copied().sum()
    }

    /// Fraction of the total spent in `phase` (`0.0` if nothing recorded).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == SimDuration::ZERO {
            0.0
        } else {
            self.time(phase).as_secs_f64() / total.as_secs_f64()
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for p in Phase::ALL {
            self.add(p, other.time(p));
        }
    }
}

impl fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for p in Phase::ALL {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}={}", p, self.time(p))?;
            first = false;
        }
        Ok(())
    }
}

/// A thread-safe collector of phase spans.
///
/// The host runtime and the NMP threads all hold clones of one tracer and
/// record into it as operations retire; the bench reads the aggregate at
/// the end of the run.
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Mutex<PhaseBreakdown>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Records `dur` against `phase`.
    pub fn record(&self, phase: Phase, dur: SimDuration) {
        self.inner.lock().add(phase, dur);
    }

    /// A snapshot of the accumulated breakdown.
    pub fn breakdown(&self) -> PhaseBreakdown {
        *self.inner.lock()
    }

    /// Clears the accumulated breakdown.
    pub fn reset(&self) {
        *self.inner.lock() = PhaseBreakdown::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn breakdown_accumulates_and_fractions() {
        let mut b = PhaseBreakdown::default();
        b.add(Phase::Compute, SimDuration::from_nanos(60));
        b.add(Phase::Compute, SimDuration::from_nanos(15));
        b.add(Phase::DataTransfer, SimDuration::from_nanos(25));
        assert_eq!(b.time(Phase::Compute), SimDuration::from_nanos(75));
        assert_eq!(b.total(), SimDuration::from_nanos(100));
        assert!((b.fraction(Phase::DataTransfer) - 0.25).abs() < 1e-12);
        assert_eq!(b.fraction(Phase::Init), 0.0);
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        assert_eq!(PhaseBreakdown::default().fraction(Phase::Compute), 0.0);
    }

    #[test]
    fn merge_adds_per_phase() {
        let mut a = PhaseBreakdown::default();
        a.add(Phase::Init, SimDuration::from_nanos(1));
        let mut b = PhaseBreakdown::default();
        b.add(Phase::Init, SimDuration::from_nanos(2));
        b.add(Phase::Compute, SimDuration::from_nanos(3));
        a.merge(&b);
        assert_eq!(a.time(Phase::Init), SimDuration::from_nanos(3));
        assert_eq!(a.time(Phase::Compute), SimDuration::from_nanos(3));
    }

    #[test]
    fn tracer_is_shared_across_threads() {
        let tracer = Arc::new(Tracer::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&tracer);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        t.record(Phase::Compute, SimDuration::from_nanos(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            tracer.breakdown().time(Phase::Compute),
            SimDuration::from_nanos(400)
        );
        tracer.reset();
        assert_eq!(tracer.breakdown().total(), SimDuration::ZERO);
    }

    #[test]
    fn display_lists_all_phases() {
        let b = PhaseBreakdown::default();
        let s = b.to_string();
        for p in Phase::ALL {
            assert!(s.contains(&p.to_string()), "missing {p} in {s}");
        }
    }
}
