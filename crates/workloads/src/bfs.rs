//! BFS: breadth-first traversal of all connected components (Table I,
//! 240 MB; Rodinia `bfs` with a distribution-aware frontier exchange).
//!
//! Level-synchronous BSP traversal. Each device keeps a resident copy of
//! the depth array plus its block's CSR slice; every level:
//!
//! 1. the host broadcasts the *delta* — nodes discovered last level — and
//!    each device applies it ([`APPLY_KERNEL_NAME`]),
//! 2. each device scans its node block for frontier members and appends
//!    newly reachable neighbours to a compact `found` list
//!    ([`KERNEL_NAME`]),
//! 3. the host reads back only the compact lists and merges them.
//!
//! Exchanging deltas instead of whole depth arrays is what a real
//! distributed BFS must do, yet the broadcast still grows with the node
//! count — BFS remains the paper's worst scaler ("the performance
//! improvement also depends on the … communication characteristics",
//! §IV-B).
//!
//! The `found`-list append uses a plain counter: the kernel VM and the
//! native kernels execute work-items sequentially, so the increment is
//! race-free here; a production GPU/bitstream build would use
//! `atomic_inc`.

use haocl::{
    Buffer, CommandQueue, Context, DeviceType, Error, Kernel, MemFlags, NdRange, Platform, Program,
};
use haocl_kernel::{
    ArgValue, CostModel, ExecError, ExecStats, GlobalBuffer, KernelRegistry, NativeKernel,
};
use haocl_sim::rng::labeled_rng;
use rand::Rng;

use crate::matmul::{buf_index, scalar_i32};
use crate::partition::balanced_ranges;
use crate::report::{KernelMode, RunOptions, RunReport};
use crate::util::{bytes_to_i32s, create_buffer, i32s_to_bytes, round_up, write_buffer};

/// The frontier-scan kernel.
pub const KERNEL_NAME: &str = "bfs_step";

/// The delta-apply kernel.
pub const APPLY_KERNEL_NAME: &str = "bfs_apply";

/// OpenCL C source for both kernels.
pub const KERNEL_SOURCE: &str = r#"
__kernel void bfs_apply(__global int* depth, __global const int* updates, int count) {
    int t = get_global_id(0);
    if (t < count) {
        depth[updates[2 * t]] = updates[2 * t + 1];
    }
}

__kernel void bfs_step(__global const int* row_off, __global const int* cols,
                       __global const int* depth, __global int* found,
                       __global int* count, int level, int node_offset, int nodes) {
    int t = get_global_id(0);
    if (t < nodes) {
        int u = node_offset + t;
        if (depth[u] == level) {
            for (int e = row_off[t]; e < row_off[t + 1]; e++) {
                int v = cols[e];
                if (depth[v] == -1) {
                    int idx = count[0];
                    count[0] = idx + 1;
                    found[idx] = v;
                }
            }
        }
    }
}
"#;

/// A directed graph in CSR adjacency form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// Row offsets (`nodes + 1` entries).
    pub row_off: Vec<u32>,
    /// Edge targets.
    pub cols: Vec<u32>,
}

impl Graph {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.row_off.len() - 1
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.cols.len()
    }
}

/// Workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Average out-degree.
    pub avg_degree: usize,
    /// BFS source node.
    pub source: usize,
    /// Levels simulated in modeled fidelity (full fidelity iterates until
    /// the frontier empties).
    pub modeled_levels: usize,
    /// Generator seed.
    pub seed: u64,
}

impl BfsConfig {
    /// Table I scale: ~6.7 M nodes, degree 6 ≈ 240 MB.
    pub fn paper_scale() -> Self {
        BfsConfig {
            nodes: 6_700_000,
            avg_degree: 6,
            source: 0,
            modeled_levels: 8,
            seed: 42,
        }
    }

    /// Small size for full-fidelity tests.
    pub fn test_scale() -> Self {
        BfsConfig {
            nodes: 512,
            avg_degree: 4,
            source: 0,
            modeled_levels: 8,
            seed: 42,
        }
    }

    /// Approximate bytes of the graph plus depth arrays.
    pub fn input_bytes(&self) -> u64 {
        let n = self.nodes as u64;
        let e = n * self.avg_degree as u64;
        4 * (n + 1) + 4 * e + 8 * n
    }
}

/// Generates a random directed graph (uniform endpoints, sorted rows).
pub fn generate_graph(cfg: &BfsConfig) -> Graph {
    let mut rng = labeled_rng(cfg.seed, "bfs/graph");
    let mut row_off = Vec::with_capacity(cfg.nodes + 1);
    let mut cols = Vec::new();
    row_off.push(0u32);
    for _ in 0..cfg.nodes {
        let deg = rng.gen_range(0..=cfg.avg_degree * 2);
        let mut targets: Vec<u32> = (0..deg)
            .map(|_| rng.gen_range(0..cfg.nodes as u32))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        cols.extend_from_slice(&targets);
        row_off.push(cols.len() as u32);
    }
    Graph { row_off, cols }
}

/// Host reference BFS depths (`-1` for unreachable nodes).
pub fn reference(graph: &Graph, source: usize) -> Vec<i32> {
    let mut depth = vec![-1i32; graph.nodes()];
    let mut frontier = vec![source];
    depth[source] = 0;
    let mut level = 0;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for e in graph.row_off[u] as usize..graph.row_off[u + 1] as usize {
                let v = graph.cols[e] as usize;
                if depth[v] == -1 {
                    depth[v] = level + 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
        level += 1;
    }
    depth
}

/// Cost of one device's per-level frontier scan over `nodes` nodes and
/// `edges` slice edges (a full mask scan, divergent branching).
pub fn launch_cost(nodes: usize, edges: usize) -> CostModel {
    let (n, e) = (nodes as f64, edges as f64);
    CostModel::new()
        .flops(n + 2.0 * e)
        .bytes_read(4.0 * (2.0 * n + 2.0 * e))
        .bytes_written(4.0 * e * 0.2)
        .divergent()
}

/// Cost of applying `count` depth updates.
pub fn apply_cost(count: usize) -> CostModel {
    let c = count as f64;
    CostModel::new()
        .flops(c)
        .bytes_read(8.0 * c)
        .bytes_written(4.0 * c)
}

struct NativeBfsStep;

impl NativeKernel for NativeBfsStep {
    fn name(&self) -> &str {
        KERNEL_NAME
    }

    fn arity(&self) -> usize {
        8
    }

    fn execute(
        &self,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        _range: &NdRange,
    ) -> Result<ExecStats, ExecError> {
        let scalar_at = |at: usize| -> Result<i32, ExecError> {
            match args[at] {
                ArgValue::Scalar(v) => scalar_i32(v),
                _ => Err(ExecError::from_message("bfs_step: expected scalar")),
            }
        };
        let level = scalar_at(5)?;
        let node_offset = scalar_at(6)? as usize;
        let nodes = scalar_at(7)? as usize;
        let row_off = buffers[buf_index(args, 0)?].as_i32();
        let cols = buffers[buf_index(args, 1)?].as_i32();
        let depth = buffers[buf_index(args, 2)?].as_i32();
        let fi = buf_index(args, 3)?;
        let ci = buf_index(args, 4)?;
        let mut found = buffers[fi].as_i32();
        let mut count = buffers[ci].as_i32();
        let mut visited = 0u64;
        for t in 0..nodes {
            let u = node_offset + t;
            if depth[u] == level {
                for &v in &cols[row_off[t] as usize..row_off[t + 1] as usize] {
                    visited += 1;
                    if depth[v as usize] == -1 {
                        let idx = count[0] as usize;
                        count[0] = idx as i32 + 1;
                        found[idx] = v;
                    }
                }
            }
        }
        buffers[fi] = GlobalBuffer::from_i32(&found);
        buffers[ci] = GlobalBuffer::from_i32(&count);
        Ok(ExecStats {
            instructions: nodes as u64 + visited,
            work_items: nodes as u64,
            work_groups: 1,
            barriers: 0,
        })
    }
}

struct NativeBfsApply;

impl NativeKernel for NativeBfsApply {
    fn name(&self) -> &str {
        APPLY_KERNEL_NAME
    }

    fn arity(&self) -> usize {
        3
    }

    fn execute(
        &self,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        _range: &NdRange,
    ) -> Result<ExecStats, ExecError> {
        let count = match args[2] {
            ArgValue::Scalar(v) => scalar_i32(v)? as usize,
            _ => return Err(ExecError::from_message("bfs_apply: expected scalar")),
        };
        let updates = buffers[buf_index(args, 1)?].as_i32();
        let di = buf_index(args, 0)?;
        let mut depth = buffers[di].as_i32();
        for t in 0..count {
            depth[updates[2 * t] as usize] = updates[2 * t + 1];
        }
        buffers[di] = GlobalBuffer::from_i32(&depth);
        Ok(ExecStats {
            instructions: count as u64,
            work_items: count as u64,
            work_groups: 1,
            barriers: 0,
        })
    }
}

/// Registers both native BFS kernels in `registry`.
pub fn register_natives(registry: &KernelRegistry) {
    registry.register(std::sync::Arc::new(NativeBfsStep));
    registry.register(std::sync::Arc::new(NativeBfsApply));
}

struct Part {
    ro_d: Buffer,
    cols_d: Buffer,
    depth_d: Buffer,
    found_d: Buffer,
    count_d: Buffer,
    updates_d: Buffer,
    range: std::ops::Range<usize>,
    slice_edges: usize,
}

/// Runs distributed level-synchronous BFS across every device of
/// `platform`.
///
/// # Errors
///
/// Propagates any API or transport failure from the wrapper library.
#[allow(clippy::too_many_lines)]
pub fn run(platform: &Platform, cfg: &BfsConfig, opts: &RunOptions) -> Result<RunReport, Error> {
    let devices = platform.devices(DeviceType::All);
    let ctx = Context::new(platform, &devices)?;
    let queues: Vec<CommandQueue> = devices
        .iter()
        .map(|d| CommandQueue::new(&ctx, d))
        .collect::<Result<_, _>>()?;
    let program = match opts.mode {
        KernelMode::Native => {
            Program::with_bitstream_kernels(&ctx, [KERNEL_NAME, APPLY_KERNEL_NAME])
        }
        KernelMode::Source => Program::from_source(&ctx, KERNEL_SOURCE),
    };
    program.build()?;
    let step = Kernel::new(&program, KERNEL_NAME)?;
    let apply = Kernel::new(&program, APPLY_KERNEL_NAME)?;
    step.set_fidelity(opts.fidelity);
    apply.set_fidelity(opts.fidelity);

    platform.reset_phases();
    let t0 = platform.now();
    let full = opts.is_full();
    let n = cfg.nodes;

    let graph = if full {
        generate_graph(cfg)
    } else {
        Graph {
            row_off: Vec::new(),
            cols: Vec::new(),
        }
    };
    platform.charge_data_creation(cfg.input_bytes());
    if opts.replicate_inputs {
        crate::util::charge_replication(&ctx, &queues, cfg.input_bytes())?;
    }

    // Stage the graph slices and the initial depth array (source = 0).
    let ranges = balanced_ranges(n, devices.len());
    let depth_bytes = (4 * n) as u64;
    let mut initial_depth = Vec::new();
    if full {
        initial_depth = vec![-1i32; n];
        initial_depth[cfg.source] = 0;
    }
    let mut parts: Vec<Part> = Vec::new();
    for (queue, range) in queues.iter().zip(&ranges) {
        let r = range.len();
        let (slice_edges, ro_local, cols_local) = if full {
            let lo = graph.row_off[range.start] as usize;
            let hi = graph.row_off[range.end] as usize;
            let ro: Vec<i32> = graph.row_off[range.start..=range.end]
                .iter()
                .map(|&v| (v as usize - lo) as i32)
                .collect();
            let cl: Vec<i32> = graph.cols[lo..hi].iter().map(|&c| c as i32).collect();
            (hi - lo, ro, cl)
        } else {
            (cfg.avg_degree * r, Vec::new(), Vec::new())
        };
        let ro_d = create_buffer(&ctx, MemFlags::READ_ONLY, (4 * (r + 1)).max(8) as u64, full)?;
        let cols_d = create_buffer(
            &ctx,
            MemFlags::READ_ONLY,
            (4 * slice_edges).max(4) as u64,
            full,
        )?;
        let depth_d = create_buffer(&ctx, MemFlags::READ_WRITE, depth_bytes, full)?;
        let found_d = create_buffer(
            &ctx,
            MemFlags::READ_WRITE,
            (4 * slice_edges).max(4) as u64,
            full,
        )?;
        let count_d = create_buffer(&ctx, MemFlags::READ_WRITE, 4, full)?;
        let updates_d = create_buffer(&ctx, MemFlags::READ_ONLY, (8 * n) as u64, full)?;
        if r > 0 {
            write_buffer(
                queue,
                &ro_d,
                &i32s_to_bytes(&ro_local),
                4 * (r as u64 + 1),
                full,
            )?;
            if slice_edges > 0 {
                write_buffer(
                    queue,
                    &cols_d,
                    &i32s_to_bytes(&cols_local),
                    (4 * slice_edges) as u64,
                    full,
                )?;
            }
            let depth_data = if full {
                i32s_to_bytes(&initial_depth)
            } else {
                Vec::new()
            };
            write_buffer(queue, &depth_d, &depth_data, depth_bytes, full)?;
        }
        parts.push(Part {
            ro_d,
            cols_d,
            depth_d,
            found_d,
            count_d,
            updates_d,
            range: range.clone(),
            slice_edges,
        });
    }
    // Steady-state measurement starts once the graph is resident.
    let t0 = if opts.data_resident {
        platform.now()
    } else {
        t0
    };

    // Level-synchronous iterations with delta exchange.
    let mut depth = initial_depth;
    // (node, depth) pairs discovered last level, flattened.
    let mut updates: Vec<i32> = Vec::new();
    // Modeled-run traffic estimate: discoveries spread over the levels.
    let modeled_delta = (n / cfg.modeled_levels.max(1)).max(1);
    let mut level = 0i32;
    loop {
        for (queue, part) in queues.iter().zip(&parts) {
            let r = part.range.len();
            if r == 0 {
                continue;
            }
            // 1. Apply last level's delta to the resident depth array.
            let apply_count = if full {
                updates.len() / 2
            } else if level > 0 {
                modeled_delta
            } else {
                0
            };
            if apply_count > 0 {
                write_buffer(
                    queue,
                    &part.updates_d,
                    &i32s_to_bytes(&updates),
                    (8 * apply_count) as u64,
                    full,
                )?;
                apply.set_arg_buffer(0, &part.depth_d)?;
                apply.set_arg_buffer(1, &part.updates_d)?;
                apply.set_arg_i32(2, apply_count as i32)?;
                apply.set_cost(apply_cost(apply_count));
                queue.enqueue_nd_range_kernel(
                    &apply,
                    NdRange::linear(round_up(apply_count as u64, 64), 64),
                )?;
            }
            // 2. Reset the counter and scan this block's frontier.
            write_buffer(queue, &part.count_d, &i32s_to_bytes(&[0]), 4, full)?;
            step.set_arg_buffer(0, &part.ro_d)?;
            step.set_arg_buffer(1, &part.cols_d)?;
            step.set_arg_buffer(2, &part.depth_d)?;
            step.set_arg_buffer(3, &part.found_d)?;
            step.set_arg_buffer(4, &part.count_d)?;
            step.set_arg_i32(5, level)?;
            step.set_arg_i32(6, part.range.start as i32)?;
            step.set_arg_i32(7, r as i32)?;
            step.set_cost(launch_cost(r, part.slice_edges));
            queue.enqueue_nd_range_kernel(&step, NdRange::linear(round_up(r as u64, 64), 64))?;
        }
        for queue in &queues {
            queue.finish();
        }
        // 3. Read back the compact found lists and merge.
        let mut next_updates: Vec<i32> = Vec::new();
        for (queue, part) in queues.iter().zip(&parts) {
            if part.range.is_empty() {
                continue;
            }
            if full {
                let mut count_bytes = [0u8; 4];
                queue.enqueue_read_buffer(&part.count_d, 0, &mut count_bytes)?;
                let found_count = i32::from_le_bytes(count_bytes) as usize;
                if found_count > 0 {
                    let mut found_bytes = vec![0u8; 4 * found_count];
                    queue.enqueue_read_buffer(&part.found_d, 0, &mut found_bytes)?;
                    for v in bytes_to_i32s(&found_bytes) {
                        let v = v as usize;
                        if depth[v] == -1 {
                            depth[v] = level + 1;
                            next_updates.push(v as i32);
                            next_updates.push(level + 1);
                        }
                    }
                }
            } else {
                queue.enqueue_read_buffer_modeled(&part.count_d, 0, 4)?;
                let est = ((modeled_delta / queues.len().max(1)).max(1) * 4) as u64;
                let cap = (4 * part.slice_edges).max(4) as u64;
                queue.enqueue_read_buffer_modeled(&part.found_d, 0, est.min(cap))?;
            }
        }
        updates = next_updates;
        level += 1;
        let done = if full {
            updates.is_empty()
        } else {
            level as usize >= cfg.modeled_levels
        };
        if done {
            break;
        }
    }

    let verified = if full && opts.verify {
        Some(depth == reference(&graph, cfg.source))
    } else {
        None
    };

    Ok(RunReport {
        app: "BFS".to_string(),
        devices: devices.len(),
        makespan: platform.now() - t0,
        phases: platform.phase_breakdown(),
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl::DeviceKind;

    fn platform(kinds: &[DeviceKind]) -> Platform {
        Platform::local_with_registry(kinds, crate::registry_with_all()).unwrap()
    }

    #[test]
    fn single_device_verifies() {
        let report = run(
            &platform(&[DeviceKind::Gpu]),
            &BfsConfig::test_scale(),
            &RunOptions::full(),
        )
        .unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn source_kernel_verifies() {
        let cfg = BfsConfig {
            nodes: 128,
            ..BfsConfig::test_scale()
        };
        let report = run(&platform(&[DeviceKind::Gpu]), &cfg, &RunOptions::source()).unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn multi_device_traversal_verifies() {
        let report = run(
            &platform(&[DeviceKind::Gpu, DeviceKind::Gpu, DeviceKind::Gpu]),
            &BfsConfig::test_scale(),
            &RunOptions::full(),
        )
        .unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn disconnected_source_terminates() {
        // A graph where no node has outgoing edges: one level, done.
        let cfg = BfsConfig {
            nodes: 64,
            avg_degree: 0,
            source: 5,
            modeled_levels: 2,
            seed: 1,
        };
        let report = run(&platform(&[DeviceKind::Gpu]), &cfg, &RunOptions::full()).unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn reference_on_a_path_graph() {
        // 0 → 1 → 2 → 3, node 4 isolated.
        let g = Graph {
            row_off: vec![0, 1, 2, 3, 3, 3],
            cols: vec![1, 2, 3],
        };
        assert_eq!(reference(&g, 0), vec![0, 1, 2, 3, -1]);
    }

    #[test]
    fn modeled_run_executes_fixed_levels() {
        let cfg = BfsConfig {
            nodes: 4096,
            modeled_levels: 3,
            ..BfsConfig::test_scale()
        };
        let report = run(&platform(&[DeviceKind::Gpu]), &cfg, &RunOptions::modeled()).unwrap();
        assert_eq!(report.verified, None);
        assert!(report.makespan > haocl_sim::SimDuration::ZERO);
    }

    #[test]
    fn paper_scale_matches_table1() {
        let bytes = BfsConfig::paper_scale().input_bytes();
        assert!((2.2e8..2.7e8).contains(&(bytes as f64)), "{bytes}");
    }
}
