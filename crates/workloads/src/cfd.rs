//! CFD: an unstructured-grid finite-volume Euler solver (Table I,
//! 800 MB; Rodinia `cfd`/euler3d).
//!
//! Each cell carries five conserved variables (density, energy, momentum
//! x/y/z) and exchanges fluxes with four unstructured neighbours. Like a
//! real mesh (and unlike a random graph), neighbours are *spatially
//! local* — within a reordering window of the cell — which is what makes
//! a distributed run possible at all: each device keeps its block of the
//! state resident across iterations, double-buffered, and only the
//! *halo* (one window of boundary cells per side) crosses the backbone
//! each iteration.
//!
//! This halo machinery is exactly the "significant change" the paper
//! says CFD would need on SnuCL-D (§IV-B); the SnuCL-D baseline rejects
//! the workload accordingly.

use haocl::{
    Buffer, CommandQueue, Context, DeviceType, Error, Kernel, MemFlags, NdRange, Platform, Program,
};
use haocl_kernel::{
    ArgValue, CostModel, ExecError, ExecStats, GlobalBuffer, KernelRegistry, NativeKernel,
};
use haocl_sim::rng::labeled_rng;
use rand::Rng;

use crate::matmul::{buf_index, scalar_i32};
use crate::report::{KernelMode, RunOptions, RunReport};
use crate::util::{
    bytes_to_f32s, create_buffer, f32s_to_bytes, read_buffer, round_up, write_buffer,
};

/// The flux kernel name.
pub const KERNEL_NAME: &str = "cfd_flux";

/// The halo-stitch kernel name (writes received halos into the state).
pub const STITCH_KERNEL_NAME: &str = "cfd_stitch";

/// The boundary-extract kernel name (exports cells neighbours need).
pub const EXTRACT_KERNEL_NAME: &str = "cfd_extract";

/// OpenCL C source for all three kernels.
///
/// `vars`/`out` hold the five variables SoA-style with stride
/// `slice_len` (the device's block plus halos); the interior block of
/// `n_local` cells starts at `cell_offset`.
pub const KERNEL_SOURCE: &str = r#"
__kernel void cfd_flux(__global const float* vars, __global const int* neigh,
                       __global float* out, int slice_len, int cell_offset, int n_local) {
    int t = get_global_id(0);
    if (t < n_local) {
        int c = cell_offset + t;
        float d  = vars[c];
        float e  = vars[slice_len + c];
        float mx = vars[2 * slice_len + c];
        float my = vars[3 * slice_len + c];
        float mz = vars[4 * slice_len + c];
        float fd = 0.0f;
        float fe = 0.0f;
        float fx = 0.0f;
        float fy = 0.0f;
        float fz = 0.0f;
        for (int k = 0; k < 4; k++) {
            int nb = neigh[4 * t + k];
            float dn  = vars[nb];
            float en  = vars[slice_len + nb];
            float mxn = vars[2 * slice_len + nb];
            float myn = vars[3 * slice_len + nb];
            float mzn = vars[4 * slice_len + nb];
            float p  = 0.4f * (e  - 0.5f * (mx * mx + my * my + mz * mz) / d);
            float pn = 0.4f * (en - 0.5f * (mxn * mxn + myn * myn + mzn * mzn) / dn);
            fd += dn - d;
            fe += en - e + (pn - p);
            fx += mxn - mx;
            fy += myn - my;
            fz += mzn - mz;
        }
        out[c] = d + 0.05f * fd;
        out[slice_len + c] = e + 0.05f * fe;
        out[2 * slice_len + c] = mx + 0.05f * fx;
        out[3 * slice_len + c] = my + 0.05f * fy;
        out[4 * slice_len + c] = mz + 0.05f * fz;
    }
}

__kernel void cfd_stitch(__global float* vars, __global const float* lo,
                         __global const float* hi, int slice_len, int lo_w,
                         int hi_w, int n_local) {
    int t = get_global_id(0);
    for (int v = 0; v < 5; v++) {
        if (t < lo_w) {
            vars[v * slice_len + t] = lo[v * lo_w + t];
        }
        if (t < hi_w) {
            vars[v * slice_len + lo_w + n_local + t] = hi[v * hi_w + t];
        }
    }
}

__kernel void cfd_extract(__global const float* vars, __global float* lo,
                          __global float* hi, int slice_len, int lo_w,
                          int hi_w, int n_local) {
    int t = get_global_id(0);
    for (int v = 0; v < 5; v++) {
        if (t < lo_w) {
            lo[v * lo_w + t] = vars[v * slice_len + lo_w + t];
        }
        if (t < hi_w) {
            hi[v * hi_w + t] = vars[v * slice_len + lo_w + n_local - hi_w + t];
        }
    }
}
"#;

/// Workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfdConfig {
    /// Number of grid cells.
    pub cells: usize,
    /// Solver iterations.
    pub iterations: usize,
    /// Mesh-reordering window: neighbours of cell `c` fall within
    /// `[c - window, c + window]`.
    pub window: usize,
    /// Generator seed.
    pub seed: u64,
}

impl CfdConfig {
    /// Table I scale: ~14 M cells ≈ 800 MB, 500 solver iterations
    /// (Rodinia's euler3d iterates thousands of times; 500 keeps the
    /// harness quick while letting compute dominate staging).
    pub fn paper_scale() -> Self {
        CfdConfig {
            cells: 14_000_000,
            iterations: 500,
            window: 1024,
            seed: 42,
        }
    }

    /// Small size for full-fidelity tests.
    pub fn test_scale() -> Self {
        CfdConfig {
            cells: 1024,
            iterations: 2,
            window: 32,
            seed: 42,
        }
    }

    /// Approximate bytes of the grid state.
    pub fn input_bytes(&self) -> u64 {
        let n = self.cells as u64;
        // 5 vars in + 4 neighbour ids + 5 vars out, all 4-byte.
        4 * (5 * n + 4 * n + 5 * n)
    }
}

/// Generates the initial state: positive densities, random energies and
/// momenta, and four window-local neighbours per cell.
pub fn generate_state(cfg: &CfdConfig) -> (Vec<f32>, Vec<i32>) {
    let n = cfg.cells;
    let mut rng = labeled_rng(cfg.seed, "cfd/state");
    let mut vars = Vec::with_capacity(5 * n);
    // Density strictly positive (divided by in the pressure term).
    for _ in 0..n {
        vars.push(rng.gen_range(0.5..2.0f32));
    }
    for _ in 0..4 * n {
        vars.push(rng.gen_range(-1.0..1.0f32));
    }
    // Energy must dominate kinetic energy; shift it up.
    for v in &mut vars[n..2 * n] {
        *v = *v * 0.1 + 2.0;
    }
    let w = cfg.window.max(1) as i64;
    let neigh: Vec<i32> = (0..n as i64)
        .flat_map(|c| {
            let lo = (c - w).max(0);
            let hi = (c + w).min(n as i64 - 1);
            (0..4)
                .map(|_| rng.gen_range(lo..=hi) as i32)
                .collect::<Vec<_>>()
        })
        .collect();
    (vars, neigh)
}

/// Host reference: one flux iteration over all cells (global indexing).
pub fn reference_step(vars: &[f32], neigh: &[i32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; 5 * n];
    for c in 0..n {
        let d = vars[c];
        let e = vars[n + c];
        let mx = vars[2 * n + c];
        let my = vars[3 * n + c];
        let mz = vars[4 * n + c];
        let mut fd = 0.0f32;
        let mut fe = 0.0f32;
        let mut fx = 0.0f32;
        let mut fy = 0.0f32;
        let mut fz = 0.0f32;
        for k in 0..4 {
            let nb = neigh[4 * c + k] as usize;
            let dn = vars[nb];
            let en = vars[n + nb];
            let mxn = vars[2 * n + nb];
            let myn = vars[3 * n + nb];
            let mzn = vars[4 * n + nb];
            let p = 0.4f32 * (e - 0.5f32 * (mx * mx + my * my + mz * mz) / d);
            let pn = 0.4f32 * (en - 0.5f32 * (mxn * mxn + myn * myn + mzn * mzn) / dn);
            fd += dn - d;
            fe += en - e + (pn - p);
            fx += mxn - mx;
            fy += myn - my;
            fz += mzn - mz;
        }
        out[c] = d + 0.05 * fd;
        out[n + c] = e + 0.05 * fe;
        out[2 * n + c] = mx + 0.05 * fx;
        out[3 * n + c] = my + 0.05 * fy;
        out[4 * n + c] = mz + 0.05 * fz;
    }
    out
}

/// Cost of one flux launch over `cells` interior cells.
pub fn launch_cost(cells: usize) -> CostModel {
    let n = cells as f64;
    CostModel::new()
        // ~30 FLOPs per neighbour × 4 neighbours + update.
        .flops(130.0 * n)
        // Gathers burn 32-byte transactions per variable per neighbour.
        .bytes_read((5.0 * 32.0 * 4.0 + 5.0 * 4.0 + 16.0) * n)
        .bytes_written(4.0 * 5.0 * n)
        .divergent()
}

/// Cost of a stitch/extract copy pass over `w` halo cells.
pub fn halo_cost(w: usize) -> CostModel {
    let bytes = 5.0 * 4.0 * w as f64;
    CostModel::new().bytes_read(bytes).bytes_written(bytes)
}

// ---------------------------------------------------------------------
// Native kernels (bit-identical to the OpenCL C above).
// ---------------------------------------------------------------------

fn scalars3(args: &[ArgValue], from: usize) -> Result<(usize, usize, usize), ExecError> {
    let g = |at: usize| -> Result<usize, ExecError> {
        match args[at] {
            ArgValue::Scalar(v) => Ok(scalar_i32(v)? as usize),
            _ => Err(ExecError::from_message("expected scalar argument")),
        }
    };
    Ok((g(from)?, g(from + 1)?, g(from + 2)?))
}

struct NativeCfdFlux;

impl NativeKernel for NativeCfdFlux {
    fn name(&self) -> &str {
        KERNEL_NAME
    }

    fn arity(&self) -> usize {
        6
    }

    fn execute(
        &self,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        _range: &NdRange,
    ) -> Result<ExecStats, ExecError> {
        let (slice_len, cell_offset, n_local) = scalars3(args, 3)?;
        let vars = bytes_to_f32s(buffers[buf_index(args, 0)?].as_bytes());
        let neigh = buffers[buf_index(args, 1)?].as_i32();
        let oi = buf_index(args, 2)?;
        let mut out = bytes_to_f32s(buffers[oi].as_bytes());
        let s = slice_len;
        for t in 0..n_local {
            let c = cell_offset + t;
            let d = vars[c];
            let e = vars[s + c];
            let mx = vars[2 * s + c];
            let my = vars[3 * s + c];
            let mz = vars[4 * s + c];
            let mut fd = 0.0f32;
            let mut fe = 0.0f32;
            let mut fx = 0.0f32;
            let mut fy = 0.0f32;
            let mut fz = 0.0f32;
            for k in 0..4 {
                let nb = neigh[4 * t + k] as usize;
                let dn = vars[nb];
                let en = vars[s + nb];
                let mxn = vars[2 * s + nb];
                let myn = vars[3 * s + nb];
                let mzn = vars[4 * s + nb];
                let p = 0.4f32 * (e - 0.5f32 * (mx * mx + my * my + mz * mz) / d);
                let pn = 0.4f32 * (en - 0.5f32 * (mxn * mxn + myn * myn + mzn * mzn) / dn);
                fd += dn - d;
                fe += en - e + (pn - p);
                fx += mxn - mx;
                fy += myn - my;
                fz += mzn - mz;
            }
            out[c] = d + 0.05 * fd;
            out[s + c] = e + 0.05 * fe;
            out[2 * s + c] = mx + 0.05 * fx;
            out[3 * s + c] = my + 0.05 * fy;
            out[4 * s + c] = mz + 0.05 * fz;
        }
        buffers[oi] = GlobalBuffer::from_f32(&out);
        Ok(ExecStats {
            instructions: 130 * n_local as u64,
            work_items: n_local as u64,
            work_groups: 1,
            barriers: 0,
        })
    }
}

struct NativeCfdStitch;

impl NativeKernel for NativeCfdStitch {
    fn name(&self) -> &str {
        STITCH_KERNEL_NAME
    }

    fn arity(&self) -> usize {
        7
    }

    fn execute(
        &self,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        _range: &NdRange,
    ) -> Result<ExecStats, ExecError> {
        let (slice_len, lo_w, hi_w) = scalars3(args, 3)?;
        let n_local = match args[6] {
            ArgValue::Scalar(v) => scalar_i32(v)? as usize,
            _ => return Err(ExecError::from_message("cfd_stitch: expected scalar")),
        };
        let lo = bytes_to_f32s(buffers[buf_index(args, 1)?].as_bytes());
        let hi = bytes_to_f32s(buffers[buf_index(args, 2)?].as_bytes());
        let vi = buf_index(args, 0)?;
        let mut vars = bytes_to_f32s(buffers[vi].as_bytes());
        for v in 0..5 {
            for t in 0..lo_w {
                vars[v * slice_len + t] = lo[v * lo_w + t];
            }
            for t in 0..hi_w {
                vars[v * slice_len + lo_w + n_local + t] = hi[v * hi_w + t];
            }
        }
        buffers[vi] = GlobalBuffer::from_f32(&vars);
        Ok(ExecStats {
            instructions: (5 * (lo_w + hi_w)) as u64,
            work_items: lo_w.max(hi_w) as u64,
            work_groups: 1,
            barriers: 0,
        })
    }
}

struct NativeCfdExtract;

impl NativeKernel for NativeCfdExtract {
    fn name(&self) -> &str {
        EXTRACT_KERNEL_NAME
    }

    fn arity(&self) -> usize {
        7
    }

    fn execute(
        &self,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        _range: &NdRange,
    ) -> Result<ExecStats, ExecError> {
        let (slice_len, lo_w, hi_w) = scalars3(args, 3)?;
        let n_local = match args[6] {
            ArgValue::Scalar(v) => scalar_i32(v)? as usize,
            _ => return Err(ExecError::from_message("cfd_extract: expected scalar")),
        };
        let vars = bytes_to_f32s(buffers[buf_index(args, 0)?].as_bytes());
        let li = buf_index(args, 1)?;
        let hi_i = buf_index(args, 2)?;
        let mut lo = bytes_to_f32s(buffers[li].as_bytes());
        let mut hi = bytes_to_f32s(buffers[hi_i].as_bytes());
        for v in 0..5 {
            for t in 0..lo_w {
                lo[v * lo_w + t] = vars[v * slice_len + lo_w + t];
            }
            for t in 0..hi_w {
                hi[v * hi_w + t] = vars[v * slice_len + lo_w + n_local - hi_w + t];
            }
        }
        buffers[li] = GlobalBuffer::from_f32(&lo);
        buffers[hi_i] = GlobalBuffer::from_f32(&hi);
        Ok(ExecStats {
            instructions: (5 * (lo_w + hi_w)) as u64,
            work_items: lo_w.max(hi_w) as u64,
            work_groups: 1,
            barriers: 0,
        })
    }
}

/// Registers the native CFD kernels in `registry`.
pub fn register_natives(registry: &KernelRegistry) {
    registry.register(std::sync::Arc::new(NativeCfdFlux));
    registry.register(std::sync::Arc::new(NativeCfdStitch));
    registry.register(std::sync::Arc::new(NativeCfdExtract));
}

struct Part {
    vars_a: Buffer,
    vars_b: Buffer,
    neigh_d: Buffer,
    halo_lo: Option<Buffer>,
    halo_hi: Option<Buffer>,
    out_lo: Option<Buffer>,
    out_hi: Option<Buffer>,
    range: std::ops::Range<usize>,
    slice_len: usize,
    lo_w: usize,
    hi_w: usize,
}

/// Runs the distributed CFD solver across every device of `platform`.
///
/// # Errors
///
/// Propagates any API or transport failure from the wrapper library.
#[allow(clippy::too_many_lines)]
pub fn run(platform: &Platform, cfg: &CfdConfig, opts: &RunOptions) -> Result<RunReport, Error> {
    let devices = platform.devices(DeviceType::All);
    let ctx = Context::new(platform, &devices)?;
    let queues: Vec<CommandQueue> = devices
        .iter()
        .map(|d| CommandQueue::new(&ctx, d))
        .collect::<Result<_, _>>()?;
    let kernel_names = [KERNEL_NAME, STITCH_KERNEL_NAME, EXTRACT_KERNEL_NAME];
    let program = match opts.mode {
        KernelMode::Native => Program::with_bitstream_kernels(&ctx, kernel_names),
        KernelMode::Source => Program::from_source(&ctx, KERNEL_SOURCE),
    };
    program.build()?;
    let flux = Kernel::new(&program, KERNEL_NAME)?;
    let stitch = Kernel::new(&program, STITCH_KERNEL_NAME)?;
    let extract = Kernel::new(&program, EXTRACT_KERNEL_NAME)?;
    for k in [&flux, &stitch, &extract] {
        k.set_fidelity(opts.fidelity);
    }

    platform.reset_phases();
    let t0 = platform.now();
    let full = opts.is_full();
    let n = cfg.cells;
    // Halo width; blocks must be at least one window wide.
    let w = cfg.window.min(n / devices.len().max(1)).max(1);

    let (vars, neigh) = if full {
        generate_state(cfg)
    } else {
        (Vec::new(), Vec::new())
    };
    platform.charge_data_creation(4 * 9 * n as u64);
    if opts.replicate_inputs {
        crate::util::charge_replication(&ctx, &queues, cfg.input_bytes())?;
    }

    let weights = crate::util::throughput_weights(&devices, &launch_cost(1000));
    let ranges = crate::partition::weighted_ranges(n, &weights);
    let mut parts: Vec<Part> = Vec::new();
    for (i, (queue, range)) in queues.iter().zip(&ranges).enumerate() {
        let r = range.len();
        let lo_w = if i == 0 { 0 } else { w };
        let hi_w = if i + 1 == ranges.len() { 0 } else { w };
        let slice_start = range.start - lo_w;
        let slice_len = lo_w + r + hi_w;
        let slice_bytes = (4 * 5 * slice_len).max(4) as u64;
        let vars_a = create_buffer(&ctx, MemFlags::READ_WRITE, slice_bytes, full)?;
        let vars_b = create_buffer(&ctx, MemFlags::READ_WRITE, slice_bytes, full)?;
        let neigh_d = create_buffer(&ctx, MemFlags::READ_ONLY, (4 * 4 * r).max(4) as u64, full)?;
        let mk_halo = |width: usize| -> Result<Option<Buffer>, Error> {
            if width == 0 {
                Ok(None)
            } else {
                Ok(Some(create_buffer(
                    &ctx,
                    MemFlags::READ_WRITE,
                    (4 * 5 * width) as u64,
                    full,
                )?))
            }
        };
        let halo_lo = mk_halo(lo_w)?;
        let halo_hi = mk_halo(hi_w)?;
        let out_lo = mk_halo(lo_w)?;
        let out_hi = mk_halo(hi_w)?;
        if r > 0 {
            // Initial state slice (including halos) and rebased neighbours.
            if full {
                let mut slice = Vec::with_capacity(5 * slice_len);
                for v in 0..5 {
                    slice.extend_from_slice(
                        &vars[v * n + slice_start..v * n + slice_start + slice_len],
                    );
                }
                write_buffer(queue, &vars_a, &f32s_to_bytes(&slice), slice_bytes, true)?;
                let mut local_neigh = Vec::with_capacity(4 * r);
                for c in range.start..range.end {
                    for k in 0..4 {
                        local_neigh.push(neigh[4 * c + k] - slice_start as i32);
                    }
                }
                write_buffer(
                    queue,
                    &neigh_d,
                    &crate::util::i32s_to_bytes(&local_neigh),
                    (4 * 4 * r) as u64,
                    true,
                )?;
            } else {
                write_buffer(queue, &vars_a, &[], slice_bytes, false)?;
                write_buffer(queue, &neigh_d, &[], (4 * 4 * r) as u64, false)?;
            }
        }
        parts.push(Part {
            vars_a,
            vars_b,
            neigh_d,
            halo_lo,
            halo_hi,
            out_lo,
            out_hi,
            range: range.clone(),
            slice_len,
            lo_w,
            hi_w,
        });
    }

    // Steady-state measurement starts once the inputs are resident.
    let t0 = if opts.data_resident {
        platform.now()
    } else {
        t0
    };

    // Host-side boundary exports from the previous iteration:
    // (lo_export, hi_export) per device, 5·w floats each.
    let mut exports: Vec<(Vec<f32>, Vec<f32>)> = vec![(Vec::new(), Vec::new()); parts.len()];

    for iter in 0..cfg.iterations {
        // 1. Stitch fresh halos into the source buffer (not needed on the
        //    first iteration: the initial slices already carry them).
        if iter > 0 {
            for (i, (queue, part)) in queues.iter().zip(&parts).enumerate() {
                if part.range.is_empty() || (part.lo_w == 0 && part.hi_w == 0) {
                    continue;
                }
                if let Some(halo_lo) = &part.halo_lo {
                    let data = if full {
                        f32s_to_bytes(&exports[i - 1].1)
                    } else {
                        Vec::new()
                    };
                    write_buffer(queue, halo_lo, &data, (4 * 5 * part.lo_w) as u64, full)?;
                }
                if let Some(halo_hi) = &part.halo_hi {
                    let data = if full {
                        f32s_to_bytes(&exports[i + 1].0)
                    } else {
                        Vec::new()
                    };
                    write_buffer(queue, halo_hi, &data, (4 * 5 * part.hi_w) as u64, full)?;
                }
                stitch.set_arg_buffer(0, &part.vars_a)?;
                stitch.set_arg_buffer(1, part.halo_lo.as_ref().unwrap_or(&part.vars_a))?;
                stitch.set_arg_buffer(2, part.halo_hi.as_ref().unwrap_or(&part.vars_a))?;
                stitch.set_arg_i32(3, part.slice_len as i32)?;
                stitch.set_arg_i32(4, part.lo_w as i32)?;
                stitch.set_arg_i32(5, part.hi_w as i32)?;
                stitch.set_arg_i32(6, part.range.len() as i32)?;
                stitch.set_cost(halo_cost(part.lo_w + part.hi_w));
                queue.enqueue_nd_range_kernel(
                    &stitch,
                    NdRange::linear(round_up(part.lo_w.max(part.hi_w) as u64, 64).max(64), 64),
                )?;
            }
        }
        // 2. Flux: source slice → destination slice interior.
        for (queue, part) in queues.iter().zip(&parts) {
            let r = part.range.len();
            if r == 0 {
                continue;
            }
            flux.set_arg_buffer(0, &part.vars_a)?;
            flux.set_arg_buffer(1, &part.neigh_d)?;
            flux.set_arg_buffer(2, &part.vars_b)?;
            flux.set_arg_i32(3, part.slice_len as i32)?;
            flux.set_arg_i32(4, part.lo_w as i32)?;
            flux.set_arg_i32(5, r as i32)?;
            flux.set_cost(launch_cost(r));
            queue.enqueue_nd_range_kernel(&flux, NdRange::linear(round_up(r as u64, 64), 64))?;
        }
        for queue in &queues {
            queue.finish();
        }
        // 3. Extract the boundary cells neighbours will need.
        for (i, (queue, part)) in queues.iter().zip(&parts).enumerate() {
            if part.range.is_empty() || (part.lo_w == 0 && part.hi_w == 0) {
                continue;
            }
            extract.set_arg_buffer(0, &part.vars_b)?;
            extract.set_arg_buffer(1, part.out_lo.as_ref().unwrap_or(&part.vars_b))?;
            extract.set_arg_buffer(2, part.out_hi.as_ref().unwrap_or(&part.vars_b))?;
            extract.set_arg_i32(3, part.slice_len as i32)?;
            extract.set_arg_i32(4, part.lo_w as i32)?;
            extract.set_arg_i32(5, part.hi_w as i32)?;
            extract.set_arg_i32(6, part.range.len() as i32)?;
            extract.set_cost(halo_cost(part.lo_w + part.hi_w));
            queue.enqueue_nd_range_kernel(
                &extract,
                NdRange::linear(round_up(part.lo_w.max(part.hi_w) as u64, 64).max(64), 64),
            )?;
            if let Some(out_lo) = &part.out_lo {
                let bytes = read_buffer(queue, out_lo, (4 * 5 * part.lo_w) as u64, full)?;
                exports[i].0 = bytes.map(|b| bytes_to_f32s(&b)).unwrap_or_default();
            }
            if let Some(out_hi) = &part.out_hi {
                let bytes = read_buffer(queue, out_hi, (4 * 5 * part.hi_w) as u64, full)?;
                exports[i].1 = bytes.map(|b| bytes_to_f32s(&b)).unwrap_or_default();
            }
        }
        // 4. Swap source and destination.
        for part in &mut parts {
            std::mem::swap(&mut part.vars_a, &mut part.vars_b);
        }
    }

    // Collect the final state (one bulk read per device — result
    // gathering, as any real run would do).
    let mut verified = None;
    if full {
        let mut final_vars = vec![0.0f32; 5 * n];
        for (queue, part) in queues.iter().zip(&parts) {
            let r = part.range.len();
            if r == 0 {
                continue;
            }
            let bytes = read_buffer(queue, &part.vars_a, (4 * 5 * part.slice_len) as u64, true)?
                .expect("full fidelity returns data");
            let slice = bytes_to_f32s(&bytes);
            for v in 0..5 {
                final_vars[v * n + part.range.start..v * n + part.range.end].copy_from_slice(
                    &slice[v * part.slice_len + part.lo_w..v * part.slice_len + part.lo_w + r],
                );
            }
        }
        if opts.verify {
            let (mut expect, _) = generate_state(cfg);
            for _ in 0..cfg.iterations {
                expect = reference_step(&expect, &neigh, n);
            }
            verified = Some(
                final_vars
                    .iter()
                    .zip(&expect)
                    .all(|(a, b)| (a - b).abs() <= 1e-4 * b.abs().max(1.0)),
            );
        }
    } else {
        for (queue, part) in queues.iter().zip(&parts) {
            if part.range.is_empty() {
                continue;
            }
            read_buffer(queue, &part.vars_a, (4 * 5 * part.slice_len) as u64, false)?;
        }
    }

    Ok(RunReport {
        app: "CFD".to_string(),
        devices: devices.len(),
        makespan: platform.now() - t0,
        phases: platform.phase_breakdown(),
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl::DeviceKind;

    fn platform(kinds: &[DeviceKind]) -> Platform {
        Platform::local_with_registry(kinds, crate::registry_with_all()).unwrap()
    }

    #[test]
    fn single_device_verifies() {
        let report = run(
            &platform(&[DeviceKind::Gpu]),
            &CfdConfig::test_scale(),
            &RunOptions::full(),
        )
        .unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn source_kernels_verify() {
        let cfg = CfdConfig {
            cells: 192,
            iterations: 2,
            window: 16,
            seed: 5,
        };
        let report = run(&platform(&[DeviceKind::Gpu]), &cfg, &RunOptions::source()).unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn multi_device_halo_exchange_verifies() {
        let report = run(
            &platform(&[DeviceKind::Gpu, DeviceKind::Gpu]),
            &CfdConfig::test_scale(),
            &RunOptions::full(),
        )
        .unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn three_device_halo_exchange_verifies() {
        // Middle devices have halos on both sides.
        let report = run(
            &platform(&[DeviceKind::Gpu, DeviceKind::Gpu, DeviceKind::Gpu]),
            &CfdConfig {
                cells: 960,
                iterations: 3,
                window: 24,
                seed: 9,
            },
            &RunOptions::full(),
        )
        .unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn reference_is_stable_on_uniform_state() {
        // A perfectly uniform field has zero fluxes: one step is identity.
        let n = 8;
        let mut vars = vec![0.0f32; 5 * n];
        for c in 0..n {
            vars[c] = 1.0; // density
            vars[n + c] = 2.5; // energy
        }
        let neigh: Vec<i32> = (0..4 * n).map(|i| ((i * 7) % n) as i32).collect();
        let out = reference_step(&vars, &neigh, n);
        for (a, b) in out.iter().zip(&vars) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn neighbours_respect_the_window() {
        let cfg = CfdConfig {
            cells: 256,
            iterations: 1,
            window: 10,
            seed: 2,
        };
        let (_, neigh) = generate_state(&cfg);
        for c in 0..cfg.cells {
            for k in 0..4 {
                let nb = neigh[4 * c + k] as i64;
                assert!((nb - c as i64).abs() <= cfg.window as i64);
                assert!(nb >= 0 && (nb as usize) < cfg.cells);
            }
        }
    }

    #[test]
    fn paper_scale_matches_table1() {
        let bytes = CfdConfig::paper_scale().input_bytes();
        assert!((7.5e8..8.5e8).contains(&(bytes as f64)), "{bytes}");
    }
}
