//! kNN: k-nearest neighbours in an unstructured data set (Table I,
//! 100 MB; Rodinia `nn` generalized to a query batch).
//!
//! The reference set (latitude/longitude records) is partitioned across
//! the devices and stays resident; each run classifies a batch of query
//! points. The [`KERNEL_NAME`] kernel fuses distance computation with
//! per-query top-k selection on the device, so only `queries × k`
//! candidates cross the backbone — the distributed-aware structure a
//! cluster deployment needs (reading all distances back, as single-node
//! Rodinia does, would drown the Gigabit link; that variant is kept as
//! [`DIST_KERNEL_NAME`]).

use haocl::{
    CommandQueue, Context, DeviceType, Error, Kernel, MemFlags, NdRange, Platform, Program,
};
use haocl_kernel::{
    ArgValue, CostModel, ExecError, ExecStats, GlobalBuffer, KernelRegistry, NativeKernel,
};
use haocl_sim::rng::labeled_rng;
use rand::Rng;

use crate::matmul::{buf_index, scalar_i32};
use crate::report::{KernelMode, RunOptions, RunReport};
use crate::util::{
    bytes_to_f32s, bytes_to_i32s, create_buffer, f32s_to_bytes, read_buffer, round_up, write_buffer,
};

/// The fused distance + top-k kernel.
pub const KERNEL_NAME: &str = "nn_topk";

/// The plain per-record distance kernel (Rodinia's original structure).
pub const DIST_KERNEL_NAME: &str = "nn_dist";

/// OpenCL C source for both kernels.
pub const KERNEL_SOURCE: &str = r#"
__kernel void nn_dist(__global const float* lat, __global const float* lng,
                      __global float* dist, float qlat, float qlng, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float dx = lat[i] - qlat;
        float dy = lng[i] - qlng;
        dist[i] = sqrt(dx * dx + dy * dy);
    }
}

__kernel void nn_topk(__global const float* lat, __global const float* lng,
                      __global const float* qlat, __global const float* qlng,
                      __global float* out_dist, __global int* out_idx,
                      int n, int nq, int k) {
    int q = get_global_id(0);
    if (q < nq) {
        for (int s = 0; s < k; s++) {
            out_dist[q * k + s] = 1e30f;
            out_idx[q * k + s] = -1;
        }
        float ql = qlat[q];
        float qg = qlng[q];
        for (int i = 0; i < n; i++) {
            float dx = lat[i] - ql;
            float dy = lng[i] - qg;
            float d = sqrt(dx * dx + dy * dy);
            if (d < out_dist[q * k + k - 1]) {
                int s = k - 1;
                while (s > 0 && out_dist[q * k + s - 1] > d) {
                    out_dist[q * k + s] = out_dist[q * k + s - 1];
                    out_idx[q * k + s] = out_idx[q * k + s - 1];
                    s = s - 1;
                }
                out_dist[q * k + s] = d;
                out_idx[q * k + s] = i;
            }
        }
    }
}
"#;

/// Workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnConfig {
    /// Number of reference records.
    pub records: usize,
    /// Query points per batch.
    pub queries: usize,
    /// Neighbours to select.
    pub k: usize,
    /// Generator seed.
    pub seed: u64,
}

impl KnnConfig {
    /// Table I scale: ~8.3 M records ≈ 100 MB, a 256-query batch.
    pub fn paper_scale() -> Self {
        KnnConfig {
            records: 8_300_000,
            queries: 256,
            k: 10,
            seed: 42,
        }
    }

    /// Small size for full-fidelity tests.
    pub fn test_scale() -> Self {
        KnnConfig {
            records: 2048,
            queries: 8,
            k: 5,
            seed: 42,
        }
    }

    /// Total input + output bytes.
    pub fn input_bytes(&self) -> u64 {
        3 * 4 * self.records as u64
    }
}

/// Generates record coordinates.
pub fn generate_records(cfg: &KnnConfig) -> (Vec<f32>, Vec<f32>) {
    let mut rng = labeled_rng(cfg.seed, "knn/records");
    let lat: Vec<f32> = (0..cfg.records)
        .map(|_| rng.gen_range(-90.0..90.0))
        .collect();
    let lng: Vec<f32> = (0..cfg.records)
        .map(|_| rng.gen_range(-180.0..180.0))
        .collect();
    (lat, lng)
}

/// Generates the query batch.
pub fn generate_queries(cfg: &KnnConfig) -> (Vec<f32>, Vec<f32>) {
    let mut rng = labeled_rng(cfg.seed, "knn/queries");
    let lat: Vec<f32> = (0..cfg.queries)
        .map(|_| rng.gen_range(-90.0..90.0))
        .collect();
    let lng: Vec<f32> = (0..cfg.queries)
        .map(|_| rng.gen_range(-180.0..180.0))
        .collect();
    (lat, lng)
}

/// Host reference: the `k` nearest distances for every query.
pub fn reference(lat: &[f32], lng: &[f32], cfg: &KnnConfig) -> Vec<Vec<(usize, f32)>> {
    let (qlat, qlng) = generate_queries(cfg);
    (0..cfg.queries)
        .map(|q| {
            let mut dists: Vec<(usize, f32)> = lat
                .iter()
                .zip(lng)
                .enumerate()
                .map(|(i, (&la, &lo))| {
                    let dx = la - qlat[q];
                    let dy = lo - qlng[q];
                    (i, (dx * dx + dy * dy).sqrt())
                })
                .collect();
            dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
            dists.truncate(cfg.k);
            dists
        })
        .collect()
}

/// Cost of one device's top-k launch over `records` records for
/// `queries` queries.
pub fn launch_cost(records: usize, queries: usize, k: usize) -> CostModel {
    let (n, nq, k) = (records as f64, queries as f64, k as f64);
    CostModel::new()
        .flops(nq * n * (6.0 + 0.1 * k))
        .bytes_read(nq * 8.0 * n)
        .bytes_written(nq * 8.0 * k)
        .streaming()
}

struct NativeDist;

impl NativeKernel for NativeDist {
    fn name(&self) -> &str {
        DIST_KERNEL_NAME
    }

    fn arity(&self) -> usize {
        6
    }

    fn execute(
        &self,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        _range: &NdRange,
    ) -> Result<ExecStats, ExecError> {
        let qlat = scalar_f32(args[3])?;
        let qlng = scalar_f32(args[4])?;
        let n = match args[5] {
            ArgValue::Scalar(v) => scalar_i32(v)? as usize,
            _ => return Err(ExecError::from_message("nn_dist: n must be a scalar")),
        };
        let lat = bytes_to_f32s(buffers[buf_index(args, 0)?].as_bytes());
        let lng = bytes_to_f32s(buffers[buf_index(args, 1)?].as_bytes());
        let mut dist = vec![0.0f32; n];
        for i in 0..n {
            let dx = lat[i] - qlat;
            let dy = lng[i] - qlng;
            dist[i] = (dx * dx + dy * dy).sqrt();
        }
        let di = buf_index(args, 2)?;
        buffers[di] = GlobalBuffer::from_f32(&dist);
        Ok(ExecStats {
            instructions: 6 * n as u64,
            work_items: n as u64,
            work_groups: 1,
            barriers: 0,
        })
    }
}

struct NativeTopK;

impl NativeKernel for NativeTopK {
    fn name(&self) -> &str {
        KERNEL_NAME
    }

    fn arity(&self) -> usize {
        9
    }

    fn execute(
        &self,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        _range: &NdRange,
    ) -> Result<ExecStats, ExecError> {
        let scalar_at = |at: usize| -> Result<usize, ExecError> {
            match args[at] {
                ArgValue::Scalar(v) => Ok(scalar_i32(v)? as usize),
                _ => Err(ExecError::from_message("nn_topk: expected scalar")),
            }
        };
        let n = scalar_at(6)?;
        let nq = scalar_at(7)?;
        let k = scalar_at(8)?;
        let lat = bytes_to_f32s(buffers[buf_index(args, 0)?].as_bytes());
        let lng = bytes_to_f32s(buffers[buf_index(args, 1)?].as_bytes());
        let qlat = bytes_to_f32s(buffers[buf_index(args, 2)?].as_bytes());
        let qlng = bytes_to_f32s(buffers[buf_index(args, 3)?].as_bytes());
        let mut out_dist = vec![1e30f32; nq * k];
        let mut out_idx = vec![-1i32; nq * k];
        for q in 0..nq {
            for i in 0..n {
                let dx = lat[i] - qlat[q];
                let dy = lng[i] - qlng[q];
                let d = (dx * dx + dy * dy).sqrt();
                if d < out_dist[q * k + k - 1] {
                    let mut s = k - 1;
                    while s > 0 && out_dist[q * k + s - 1] > d {
                        out_dist[q * k + s] = out_dist[q * k + s - 1];
                        out_idx[q * k + s] = out_idx[q * k + s - 1];
                        s -= 1;
                    }
                    out_dist[q * k + s] = d;
                    out_idx[q * k + s] = i as i32;
                }
            }
        }
        let oi = buf_index(args, 4)?;
        buffers[oi] = GlobalBuffer::from_f32(&out_dist);
        let ii = buf_index(args, 5)?;
        buffers[ii] = GlobalBuffer::from_i32(&out_idx);
        Ok(ExecStats {
            instructions: (6 * n * nq) as u64,
            work_items: nq as u64,
            work_groups: 1,
            barriers: 0,
        })
    }
}

fn scalar_f32(a: ArgValue) -> Result<f32, ExecError> {
    match a {
        ArgValue::Scalar(haocl_kernel::Value::F32(x)) => Ok(x),
        other => Err(ExecError::from_message(format!(
            "expected float scalar, got {other:?}"
        ))),
    }
}

/// Registers both native kNN kernels in `registry`.
pub fn register_natives(registry: &KernelRegistry) {
    registry.register(std::sync::Arc::new(NativeDist));
    registry.register(std::sync::Arc::new(NativeTopK));
}

/// Runs distributed batched kNN across every device of `platform`.
///
/// # Errors
///
/// Propagates any API or transport failure from the wrapper library.
pub fn run(platform: &Platform, cfg: &KnnConfig, opts: &RunOptions) -> Result<RunReport, Error> {
    let devices = platform.devices(DeviceType::All);
    let ctx = Context::new(platform, &devices)?;
    let queues: Vec<CommandQueue> = devices
        .iter()
        .map(|d| CommandQueue::new(&ctx, d))
        .collect::<Result<_, _>>()?;
    let program = match opts.mode {
        KernelMode::Native => {
            Program::with_bitstream_kernels(&ctx, [KERNEL_NAME, DIST_KERNEL_NAME])
        }
        KernelMode::Source => Program::from_source(&ctx, KERNEL_SOURCE),
    };
    program.build()?;
    let kernel = Kernel::new(&program, KERNEL_NAME)?;
    kernel.set_fidelity(opts.fidelity);

    platform.reset_phases();
    let t0 = platform.now();
    let full = opts.is_full();
    let (nq, k) = (cfg.queries, cfg.k);

    let (lat, lng) = if full {
        generate_records(cfg)
    } else {
        (Vec::new(), Vec::new())
    };
    platform.charge_data_creation(2 * 4 * cfg.records as u64);
    if opts.replicate_inputs {
        crate::util::charge_replication(&ctx, &queues, 2 * 4 * cfg.records as u64)?;
    }

    // Stage the reference set (resident across query batches), sized to
    // each device's throughput for this streaming kernel.
    let weights = crate::util::throughput_weights(&devices, &launch_cost(1000, nq, k));
    let ranges = crate::partition::weighted_ranges(cfg.records, &weights);
    let mut parts = Vec::new();
    for (queue, range) in queues.iter().zip(&ranges) {
        let n = range.len();
        let bytes = (n * 4).max(4) as u64;
        let lat_d = create_buffer(&ctx, MemFlags::READ_ONLY, bytes, full)?;
        let lng_d = create_buffer(&ctx, MemFlags::READ_ONLY, bytes, full)?;
        let qlat_d = create_buffer(&ctx, MemFlags::READ_ONLY, (nq * 4) as u64, full)?;
        let qlng_d = create_buffer(&ctx, MemFlags::READ_ONLY, (nq * 4) as u64, full)?;
        let out_dist_d = create_buffer(&ctx, MemFlags::WRITE_ONLY, (nq * k * 4) as u64, full)?;
        let out_idx_d = create_buffer(&ctx, MemFlags::WRITE_ONLY, (nq * k * 4) as u64, full)?;
        if n > 0 {
            let lat_block = if full {
                f32s_to_bytes(&lat[range.clone()])
            } else {
                Vec::new()
            };
            let lng_block = if full {
                f32s_to_bytes(&lng[range.clone()])
            } else {
                Vec::new()
            };
            write_buffer(queue, &lat_d, &lat_block, (n * 4) as u64, full)?;
            write_buffer(queue, &lng_d, &lng_block, (n * 4) as u64, full)?;
        }
        parts.push((
            lat_d,
            lng_d,
            qlat_d,
            qlng_d,
            out_dist_d,
            out_idx_d,
            range.clone(),
        ));
    }
    // Steady-state measurement starts once the records are resident.
    let t0 = if opts.data_resident {
        platform.now()
    } else {
        t0
    };

    // Ship the query batch and launch the fused top-k on every partition.
    let (qlat, qlng) = if full {
        generate_queries(cfg)
    } else {
        (Vec::new(), Vec::new())
    };
    for (queue, (lat_d, lng_d, qlat_d, qlng_d, out_dist_d, out_idx_d, range)) in
        queues.iter().zip(&parts)
    {
        let n = range.len();
        if n == 0 {
            continue;
        }
        let qlat_data = if full {
            f32s_to_bytes(&qlat)
        } else {
            Vec::new()
        };
        let qlng_data = if full {
            f32s_to_bytes(&qlng)
        } else {
            Vec::new()
        };
        write_buffer(queue, qlat_d, &qlat_data, (nq * 4) as u64, full)?;
        write_buffer(queue, qlng_d, &qlng_data, (nq * 4) as u64, full)?;
        kernel.set_arg_buffer(0, lat_d)?;
        kernel.set_arg_buffer(1, lng_d)?;
        kernel.set_arg_buffer(2, qlat_d)?;
        kernel.set_arg_buffer(3, qlng_d)?;
        kernel.set_arg_buffer(4, out_dist_d)?;
        kernel.set_arg_buffer(5, out_idx_d)?;
        kernel.set_arg_i32(6, n as i32)?;
        kernel.set_arg_i32(7, nq as i32)?;
        kernel.set_arg_i32(8, k as i32)?;
        kernel.set_cost(launch_cost(n, nq, k));
        queue.enqueue_nd_range_kernel(&kernel, NdRange::linear(round_up(nq as u64, 8), 8))?;
    }
    for queue in &queues {
        queue.finish();
    }

    // Merge the per-partition candidates on the host.
    let mut verified = None;
    if full {
        let mut merged: Vec<Vec<(usize, f32)>> = vec![Vec::new(); nq];
        for (queue, (_, _, _, _, out_dist_d, out_idx_d, range)) in queues.iter().zip(&parts) {
            if range.is_empty() {
                continue;
            }
            let dist_bytes = read_buffer(queue, out_dist_d, (nq * k * 4) as u64, true)?
                .expect("full fidelity returns data");
            let idx_bytes = read_buffer(queue, out_idx_d, (nq * k * 4) as u64, true)?
                .expect("full fidelity returns data");
            let dists = bytes_to_f32s(&dist_bytes);
            let idxs = bytes_to_i32s(&idx_bytes);
            for q in 0..nq {
                for s in 0..k {
                    let idx = idxs[q * k + s];
                    if idx >= 0 {
                        merged[q].push((range.start + idx as usize, dists[q * k + s]));
                    }
                }
            }
        }
        for cand in &mut merged {
            cand.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
            cand.truncate(k);
        }
        if opts.verify {
            let expect = reference(&lat, &lng, cfg);
            verified = Some(merged.iter().zip(&expect).all(|(m, e)| {
                m.len() == e.len() && m.iter().zip(e).all(|(a, b)| (a.1 - b.1).abs() < 1e-5)
            }));
        }
    } else {
        for (queue, (_, _, _, _, out_dist_d, out_idx_d, range)) in queues.iter().zip(&parts) {
            if range.is_empty() {
                continue;
            }
            read_buffer(queue, out_dist_d, (nq * k * 4) as u64, false)?;
            read_buffer(queue, out_idx_d, (nq * k * 4) as u64, false)?;
        }
    }

    Ok(RunReport {
        app: "kNN".to_string(),
        devices: devices.len(),
        makespan: platform.now() - t0,
        phases: platform.phase_breakdown(),
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl::DeviceKind;

    fn platform(kinds: &[DeviceKind]) -> Platform {
        Platform::local_with_registry(kinds, crate::registry_with_all()).unwrap()
    }

    #[test]
    fn single_device_verifies() {
        let report = run(
            &platform(&[DeviceKind::Gpu]),
            &KnnConfig::test_scale(),
            &RunOptions::full(),
        )
        .unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn source_kernel_verifies() {
        let cfg = KnnConfig {
            records: 384,
            queries: 4,
            k: 3,
            seed: 3,
        };
        let report = run(&platform(&[DeviceKind::Cpu]), &cfg, &RunOptions::source()).unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn partitioned_selection_matches_global_selection() {
        let report = run(
            &platform(&[DeviceKind::Gpu, DeviceKind::Fpga, DeviceKind::Cpu]),
            &KnnConfig::test_scale(),
            &RunOptions::full(),
        )
        .unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
        assert_eq!(report.devices, 3);
    }

    #[test]
    fn reference_finds_exact_matches_first() {
        let cfg = KnnConfig {
            records: 3,
            queries: 1,
            k: 1,
            seed: 0,
        };
        let (qlat, qlng) = generate_queries(&cfg);
        // Put an exact copy of the query among the records.
        let lat = vec![50.0, qlat[0], -30.0];
        let lng = vec![0.0, qlng[0], 90.0];
        let best = reference(&lat, &lng, &cfg);
        assert_eq!(best[0][0].0, 1);
        assert_eq!(best[0][0].1, 0.0);
    }

    #[test]
    fn data_resident_excludes_staging() {
        let cfg = KnnConfig::test_scale();
        let p = platform(&[DeviceKind::Gpu]);
        let cold = run(&p, &cfg, &RunOptions::modeled()).unwrap();
        let warm = run(&p, &cfg, &crate::report::RunOptions::modeled_resident()).unwrap();
        assert!(
            warm.makespan < cold.makespan,
            "{} vs {}",
            warm.makespan,
            cold.makespan
        );
    }

    #[test]
    fn paper_scale_matches_table1() {
        let bytes = KnnConfig::paper_scale().input_bytes();
        assert!((9.0e7..1.1e8).contains(&(bytes as f64)), "{bytes}");
    }
}
