//! The HaoCL evaluation workloads (paper §IV, Table I).
//!
//! | App        | Description                                         | Input size |
//! |------------|-----------------------------------------------------|------------|
//! | MatrixMul  | Matrix multiplication                               | 760 MB     |
//! | CFD        | Unstructured-grid finite-volume solver              | 800 MB     |
//! | kNN        | k-nearest neighbours in an unstructured data set    | 100 MB     |
//! | BFS        | Traverses all connected components of a graph       | 240 MB     |
//! | SpMV       | Sparse matrix–vector multiplication (CSR)           | 1.1 GB     |
//!
//! Every workload ships:
//!
//! * a deterministic **generator** (sizes from Table I at
//!   `Config::paper_scale()`, small at `Config::test_scale()`),
//! * its **kernel** both as OpenCL C source (compiled by `haocl-clc` on
//!   CPU/GPU nodes) and as a **native implementation** registered in the
//!   bitstream store (required by FPGA nodes, §III-D),
//! * a **partitioner** splitting the data across devices,
//! * a distributed **driver** (`run`) built purely on the public
//!   [`haocl`] API — the same calls an unmodified OpenCL application
//!   would make,
//! * a host **reference implementation** for verification.
//!
//! Drivers run at [`haocl::Fidelity::Full`] (real execution, verified results)
//! or [`haocl::Fidelity::Modeled`] (paper-scale virtual timing with modeled
//! buffers).

pub mod bfs;
pub mod cfd;
pub mod knn;
pub mod matmul;
pub mod partition;
pub mod report;
pub mod spmv;
pub mod table;
pub(crate) mod util;
pub mod workload;

pub use report::{KernelMode, RunOptions, RunReport};
pub use workload::Workload;

use haocl_kernel::KernelRegistry;

/// A registry pre-loaded with every workload's native kernels (the
/// cluster-wide bitstream store used by the evaluation).
pub fn registry_with_all() -> KernelRegistry {
    let registry = KernelRegistry::new();
    matmul::register_natives(&registry);
    knn::register_natives(&registry);
    spmv::register_natives(&registry);
    bfs::register_natives(&registry);
    cfd::register_natives(&registry);
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_holds_all_workload_kernels() {
        let r = registry_with_all();
        for name in [
            "matmul",
            "nn_dist",
            "nn_topk",
            "spmv_csr",
            "spmv_row_nnz",
            "bfs_step",
            "cfd_flux",
        ] {
            assert!(r.contains(name), "missing native kernel {name}");
        }
    }
}
