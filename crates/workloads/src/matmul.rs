//! MatrixMul: dense single-precision matrix multiplication (Table I,
//! 760 MB).
//!
//! Distribution follows §IV-C exactly: "the MatrixMul kernels on the
//! different devices are kept the same, just processing different data
//! portions" — each device receives a horizontal block of `A`, the whole
//! of `B`, and computes the matching block of `C = A·B`.

use haocl::{
    CommandQueue, Context, DeviceType, Error, Kernel, MemFlags, NdRange, Platform, Program,
};
use haocl_kernel::{
    ArgValue, CostModel, ExecError, ExecStats, GlobalBuffer, KernelRegistry, NativeKernel,
};
use haocl_sim::rng::labeled_rng;
use rand::Rng;

use crate::report::{KernelMode, RunOptions, RunReport};
use crate::util::{
    bytes_to_f32s, create_buffer, f32s_to_bytes, read_buffer, round_up, write_buffer,
};

/// The kernel name in both source and bitstream form.
pub const KERNEL_NAME: &str = "matmul";

/// The OpenCL C kernel deployed to CPU/GPU nodes.
pub const KERNEL_SOURCE: &str = r#"
__kernel void matmul(__global const float* a, __global const float* b,
                     __global float* c, int n, int rows) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i < rows && j < n) {
        float acc = 0.0f;
        for (int k = 0; k < n; k++) {
            acc += a[i * n + k] * b[k * n + j];
        }
        c[i * n + j] = acc;
    }
}
"#;

/// Workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulConfig {
    /// Matrix dimension (`n × n`).
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
}

impl MatmulConfig {
    /// Table I scale: three 8192² f32 matrices ≈ 760 MB.
    pub fn paper_scale() -> Self {
        MatmulConfig { n: 8192, seed: 42 }
    }

    /// A Fig. 3 point: `n × n` matrices.
    pub fn with_n(n: usize) -> Self {
        MatmulConfig { n, seed: 42 }
    }

    /// Small size for full-fidelity tests.
    pub fn test_scale() -> Self {
        MatmulConfig { n: 48, seed: 42 }
    }

    /// Total bytes of the three matrices.
    pub fn input_bytes(&self) -> u64 {
        3 * 4 * (self.n as u64) * (self.n as u64)
    }
}

/// Generates a random `n × n` matrix (row-major).
pub fn generate_matrix(cfg: &MatmulConfig, label: &str) -> Vec<f32> {
    let mut rng = labeled_rng(cfg.seed, &format!("matmul/{label}"));
    (0..cfg.n * cfg.n)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect()
}

/// Host reference `C = A·B` (row-major), matching kernel FLOP order.
pub fn reference(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Cost of one device's launch over `rows` rows.
///
/// Traffic reflects the *naive* (un-tiled) kernel actually deployed: two
/// global loads per multiply-accumulate, and the `b[k*n+j]` access walks
/// a column, so every load burns a full 32-byte memory transaction for 4
/// useful bytes. Large multiplies are therefore deeply memory-bound
/// (~10 GFLOP/s effective on the P4 model) — matching the paper's
/// un-optimized kernels and the 10–170 s scale of its Fig. 3.
pub fn launch_cost(rows: usize, n: usize) -> CostModel {
    let (rows, n) = (rows as f64, n as f64);
    CostModel::new()
        .flops(2.0 * rows * n * n)
        // 4 B/MAC coalesced (a) + 32 B/MAC strided (b).
        .bytes_read(36.0 * rows * n * n)
        .bytes_written(4.0 * rows * n)
}

struct NativeMatmul;

impl NativeKernel for NativeMatmul {
    fn name(&self) -> &str {
        KERNEL_NAME
    }

    fn arity(&self) -> usize {
        5
    }

    fn execute(
        &self,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        _range: &NdRange,
    ) -> Result<ExecStats, ExecError> {
        let (n, rows) = match (args[3], args[4]) {
            (ArgValue::Scalar(nv), ArgValue::Scalar(rv)) => {
                (scalar_i32(nv)? as usize, scalar_i32(rv)? as usize)
            }
            _ => return Err(ExecError::from_message("matmul: n/rows must be scalars")),
        };
        let a = bytes_to_f32s(buffers[buf_index(args, 0)?].as_bytes());
        let b = bytes_to_f32s(buffers[buf_index(args, 1)?].as_bytes());
        let mut c = vec![0.0f32; rows * n];
        for i in 0..rows {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += a[i * n + k] * b[k * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        let ci = buf_index(args, 2)?;
        buffers[ci] = GlobalBuffer::from_f32(&c);
        Ok(ExecStats {
            instructions: (2 * rows * n * n) as u64,
            work_items: (rows * n) as u64,
            work_groups: 1,
            barriers: 0,
        })
    }
}

pub(crate) fn buf_index(args: &[ArgValue], at: usize) -> Result<usize, ExecError> {
    match args.get(at) {
        Some(ArgValue::GlobalBuffer(i)) => Ok(*i),
        other => Err(ExecError::from_message(format!(
            "argument {at} must be a buffer, got {other:?}"
        ))),
    }
}

pub(crate) fn scalar_i32(v: haocl_kernel::Value) -> Result<i32, ExecError> {
    match v {
        haocl_kernel::Value::I32(x) => Ok(x),
        haocl_kernel::Value::U32(x) => Ok(x as i32),
        haocl_kernel::Value::I64(x) => Ok(x as i32),
        haocl_kernel::Value::U64(x) => Ok(x as i32),
        other => Err(ExecError::from_message(format!(
            "expected integer scalar, got {other:?}"
        ))),
    }
}

/// Registers the native MatrixMul kernel in `registry`.
pub fn register_natives(registry: &KernelRegistry) {
    registry.register(std::sync::Arc::new(NativeMatmul));
}

/// Runs distributed MatrixMul across every device of `platform`.
///
/// # Errors
///
/// Propagates any API or transport failure from the wrapper library.
pub fn run(platform: &Platform, cfg: &MatmulConfig, opts: &RunOptions) -> Result<RunReport, Error> {
    let devices = platform.devices(DeviceType::All);
    let ctx = Context::new(platform, &devices)?;
    let queues: Vec<CommandQueue> = devices
        .iter()
        .map(|d| CommandQueue::new(&ctx, d))
        .collect::<Result<_, _>>()?;
    let program = match opts.mode {
        KernelMode::Native => Program::with_bitstream_kernels(&ctx, [KERNEL_NAME]),
        KernelMode::Source => Program::from_source(&ctx, KERNEL_SOURCE),
    };
    program.build()?;
    let kernel = Kernel::new(&program, KERNEL_NAME)?;
    kernel.set_fidelity(opts.fidelity);

    platform.reset_phases();
    let t0 = platform.now();
    let full = opts.is_full();
    let n = cfg.n;

    // Data creation (host-side generation is charged to DataCreate).
    let (a, b) = if full {
        (generate_matrix(cfg, "a"), generate_matrix(cfg, "b"))
    } else {
        (Vec::new(), Vec::new())
    };
    platform.charge_data_creation(2 * 4 * (n as u64) * (n as u64));
    if opts.replicate_inputs {
        crate::util::charge_replication(&ctx, &queues, 2 * 4 * (n as u64) * (n as u64))?;
    }

    // Heterogeneity-aware split (§IV-C): portion sizes follow device
    // throughput for this kernel's cost profile.
    let weights = crate::util::throughput_weights(&devices, &launch_cost(1, n));
    let ranges = crate::partition::weighted_ranges(n, &weights);
    let mut parts = Vec::new();
    for (queue, range) in queues.iter().zip(&ranges) {
        let rows = range.len();
        let a_bytes = (rows * n * 4) as u64;
        let b_bytes = (n * n * 4) as u64;
        let c_bytes = (rows * n * 4) as u64;
        let a_d = create_buffer(&ctx, MemFlags::READ_ONLY, a_bytes.max(4), full)?;
        let b_d = create_buffer(&ctx, MemFlags::READ_ONLY, b_bytes, full)?;
        let c_d = create_buffer(&ctx, MemFlags::WRITE_ONLY, c_bytes.max(4), full)?;
        if rows > 0 {
            let a_block = if full {
                f32s_to_bytes(&a[range.start * n..range.end * n])
            } else {
                Vec::new()
            };
            write_buffer(queue, &a_d, &a_block, a_bytes, full)?;
        }
        let b_data = if full { f32s_to_bytes(&b) } else { Vec::new() };
        write_buffer(queue, &b_d, &b_data, b_bytes, full)?;
        parts.push((a_d, b_d, c_d, range.clone()));
    }
    // Steady-state measurement starts once the inputs are resident.
    let t0 = if opts.data_resident {
        platform.now()
    } else {
        t0
    };

    for (queue, (a_d, b_d, c_d, range)) in queues.iter().zip(&parts) {
        let rows = range.len();
        if rows == 0 {
            continue;
        }
        kernel.set_arg_buffer(0, a_d)?;
        kernel.set_arg_buffer(1, b_d)?;
        kernel.set_arg_buffer(2, c_d)?;
        kernel.set_arg_i32(3, n as i32)?;
        kernel.set_arg_i32(4, rows as i32)?;
        kernel.set_cost(launch_cost(rows, n));
        let local = 8u64;
        let global = [round_up(rows as u64, local), round_up(n as u64, local)];
        queue.enqueue_nd_range_kernel(&kernel, NdRange::d2(global, [local, local]))?;
    }
    for queue in &queues {
        queue.finish();
    }

    // Gather C and verify.
    let mut verified = None;
    if full {
        let mut c = vec![0.0f32; n * n];
        for (queue, (_, _, c_d, range)) in queues.iter().zip(&parts) {
            let rows = range.len();
            if rows == 0 {
                continue;
            }
            let bytes = read_buffer(queue, c_d, (rows * n * 4) as u64, true)?
                .expect("full fidelity returns data");
            c[range.start * n..range.end * n].copy_from_slice(&bytes_to_f32s(&bytes));
        }
        if opts.verify {
            let expect = reference(&a, &b, n);
            verified = Some(
                c.iter()
                    .zip(&expect)
                    .all(|(x, y)| (x - y).abs() <= 1e-3 * y.abs().max(1.0)),
            );
        }
    } else {
        for (queue, (_, _, c_d, range)) in queues.iter().zip(&parts) {
            if range.is_empty() {
                continue;
            }
            read_buffer(queue, c_d, (range.len() * n * 4) as u64, false)?;
        }
    }

    Ok(RunReport {
        app: "MatrixMul".to_string(),
        devices: devices.len(),
        makespan: platform.now() - t0,
        phases: platform.phase_breakdown(),
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl::DeviceKind;

    fn platform(kinds: &[DeviceKind]) -> Platform {
        Platform::local_with_registry(kinds, crate::registry_with_all()).unwrap()
    }

    #[test]
    fn single_gpu_native_verifies() {
        let p = platform(&[DeviceKind::Gpu]);
        let report = run(&p, &MatmulConfig::test_scale(), &RunOptions::full()).unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
        assert_eq!(report.devices, 1);
        assert!(report.makespan > haocl_sim::SimDuration::ZERO);
    }

    #[test]
    fn source_kernel_matches_native() {
        let p = platform(&[DeviceKind::Gpu]);
        // The source path goes through the clc VM; results must verify
        // against the same reference.
        let cfg = MatmulConfig { n: 24, seed: 7 };
        let report = run(&p, &cfg, &RunOptions::source()).unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn multi_device_partition_verifies() {
        let p = platform(&[DeviceKind::Gpu, DeviceKind::Gpu, DeviceKind::Fpga]);
        let report = run(&p, &MatmulConfig::test_scale(), &RunOptions::full()).unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
        assert_eq!(report.devices, 3);
    }

    #[test]
    fn more_devices_is_faster_in_virtual_time() {
        // Paper-scale (modeled) so compute dominates launch overhead;
        // tiny matrices legitimately do not scale.
        let cfg = MatmulConfig::with_n(4096);
        let opts = RunOptions::modeled();
        let one = run(&platform(&[DeviceKind::Gpu]), &cfg, &opts).unwrap();
        let four = run(&platform(&[DeviceKind::Gpu; 4]), &cfg, &opts).unwrap();
        assert!(
            four.speedup_over(&one) > 1.5,
            "4 GPUs only {}x faster",
            four.speedup_over(&one)
        );
    }

    #[test]
    fn modeled_run_reports_phases_without_data() {
        let p = platform(&[DeviceKind::Gpu]);
        let cfg = MatmulConfig::with_n(2048);
        let report = run(&p, &cfg, &RunOptions::modeled()).unwrap();
        assert_eq!(report.verified, None);
        let phases = report.phases;
        assert!(phases.time(haocl_sim::Phase::Compute) > haocl_sim::SimDuration::ZERO);
        assert!(phases.time(haocl_sim::Phase::DataTransfer) > haocl_sim::SimDuration::ZERO);
        assert!(phases.time(haocl_sim::Phase::DataCreate) > haocl_sim::SimDuration::ZERO);
    }

    #[test]
    fn reference_agrees_with_identity() {
        // A · I = A.
        let n = 4;
        let a: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut id = vec![0.0f32; 16];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        assert_eq!(reference(&a, &id, n), a);
    }

    #[test]
    fn paper_scale_matches_table1() {
        let bytes = MatmulConfig::paper_scale().input_bytes();
        // 760 MB ± 10%.
        assert!((7.2e8..8.5e8).contains(&(bytes as f64)), "{bytes}");
    }
}
