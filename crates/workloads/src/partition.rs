//! Data partitioners.
//!
//! The paper's heterogeneity evaluation (§IV-C) runs the *same* kernel on
//! every device, "just processing different data portions". These helpers
//! produce those portions: even splits, throughput-weighted splits for
//! mixed clusters, and nonzero-balanced row splits for CSR matrices.

use std::ops::Range;

/// Splits `0..total` into `parts` contiguous ranges whose lengths differ
/// by at most one.
///
/// # Panics
///
/// Panics if `parts` is zero.
///
/// # Examples
///
/// ```
/// use haocl_workloads::partition::balanced_ranges;
///
/// let r = balanced_ranges(10, 3);
/// assert_eq!(r, vec![0..4, 4..7, 7..10]);
/// ```
pub fn balanced_ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "cannot partition into zero parts");
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits `0..total` into ranges proportional to `weights` (e.g. device
/// GFLOP/s), so faster devices get more rows.
///
/// Zero or negative weights receive nothing; if all weights are
/// non-positive the split falls back to [`balanced_ranges`].
///
/// # Panics
///
/// Panics if `weights` is empty.
pub fn weighted_ranges(total: usize, weights: &[f64]) -> Vec<Range<usize>> {
    assert!(!weights.is_empty(), "cannot partition into zero parts");
    let sum: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if sum <= 0.0 {
        return balanced_ranges(total, weights.len());
    }
    let mut out = Vec::with_capacity(weights.len());
    let mut start = 0usize;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w.max(0.0);
        let end = if i + 1 == weights.len() {
            total
        } else {
            ((total as f64) * acc / sum).round() as usize
        };
        let end = end.clamp(start, total);
        out.push(start..end);
        start = end;
    }
    out
}

/// Splits CSR rows into `parts` ranges with approximately equal nonzero
/// counts (the SpMV partition stage of §IV-C).
///
/// # Panics
///
/// Panics if `parts` is zero or `row_ptr` is empty.
pub fn nnz_balanced_rows(row_ptr: &[u32], parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "cannot partition into zero parts");
    assert!(!row_ptr.is_empty(), "row_ptr must have at least one entry");
    let rows = row_ptr.len() - 1;
    let total_nnz = *row_ptr.last().expect("non-empty") as usize;
    let mut out = Vec::with_capacity(parts);
    let mut start_row = 0usize;
    for i in 0..parts {
        if i + 1 == parts {
            out.push(start_row..rows);
            break;
        }
        let target = (total_nnz * (i + 1)) / parts;
        // First row whose prefix nnz reaches the target.
        let mut end_row = start_row;
        while end_row < rows && (row_ptr[end_row] as usize) < target {
            end_row += 1;
        }
        let end_row = end_row.clamp(start_row, rows);
        out.push(start_row..end_row);
        start_row = end_row;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_covers_everything_once() {
        for total in [0usize, 1, 7, 100] {
            for parts in [1usize, 2, 3, 7] {
                let rs = balanced_ranges(total, parts);
                assert_eq!(rs.len(), parts);
                assert_eq!(rs[0].start, 0);
                assert_eq!(rs.last().unwrap().end, total);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let max = rs.iter().map(|r| r.len()).max().unwrap();
                let min = rs.iter().map(|r| r.len()).min().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn weighted_follows_proportions() {
        let rs = weighted_ranges(100, &[3.0, 1.0]);
        assert_eq!(rs, vec![0..75, 75..100]);
        // Degenerate weights fall back to balanced.
        let rs = weighted_ranges(10, &[0.0, 0.0]);
        assert_eq!(rs, vec![0..5, 5..10]);
    }

    #[test]
    fn weighted_is_a_partition() {
        let rs = weighted_ranges(97, &[5.5, 0.0, 2.2, 9.9]);
        assert_eq!(rs[0].start, 0);
        assert_eq!(rs.last().unwrap().end, 97);
        for w in rs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn nnz_balancing_equalizes_work() {
        // Rows with wildly skewed nnz: 100, 1, 1, ..., 1 (9 ones).
        let mut row_ptr = vec![0u32, 100];
        for i in 0..9 {
            row_ptr.push(101 + i);
        }
        let rs = nnz_balanced_rows(&row_ptr, 2);
        assert_eq!(rs.len(), 2);
        // The heavy row alone lands in part 0.
        assert_eq!(rs[0], 0..1);
        assert_eq!(rs[1], 1..10);
    }

    #[test]
    fn nnz_balancing_covers_all_rows() {
        let row_ptr: Vec<u32> = (0..=64).map(|i| i * 3).collect();
        let rs = nnz_balanced_rows(&row_ptr, 5);
        assert_eq!(rs[0].start, 0);
        assert_eq!(rs.last().unwrap().end, 64);
        for w in rs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_panics() {
        let _ = balanced_ranges(10, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn balanced_always_partitions(total in 0usize..10_000, parts in 1usize..32) {
            let rs = balanced_ranges(total, parts);
            let covered: usize = rs.iter().map(|r| r.len()).sum();
            prop_assert_eq!(covered, total);
        }

        #[test]
        fn nnz_parts_are_contiguous(
            degrees in proptest::collection::vec(0u32..50, 1..200),
            parts in 1usize..8,
        ) {
            let mut row_ptr = vec![0u32];
            for d in &degrees {
                row_ptr.push(row_ptr.last().unwrap() + d);
            }
            let rs = nnz_balanced_rows(&row_ptr, parts);
            prop_assert_eq!(rs.len(), parts);
            prop_assert_eq!(rs[0].start, 0);
            prop_assert_eq!(rs.last().unwrap().end, degrees.len());
            for w in rs.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
        }
    }
}
