//! Run options and result reports shared by all workload drivers.

use haocl::Fidelity;
use haocl_sim::{PhaseBreakdown, SimDuration};

/// Which kernel form the driver deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Pre-built native kernels from the bitstream store (works on every
    /// device class; required for FPGAs).
    #[default]
    Native,
    /// OpenCL C source compiled on the nodes by `haocl-clc` (CPU/GPU
    /// only).
    Source,
}

/// Options common to every workload driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Execute for real or model timing only.
    pub fidelity: Fidelity,
    /// Kernel deployment form.
    pub mode: KernelMode,
    /// Check results against the host reference (full fidelity only).
    pub verify: bool,
    /// Replicate the full input to every device before running
    /// (SnuCL-D-style redundant data placement; used by the baseline).
    pub replicate_inputs: bool,
    /// Measure from the moment static inputs are resident on the devices
    /// (steady-state serving — the paper's "data size exceeds the
    /// capacity of a single node" regime, where the data must live
    /// distributed anyway). Input generation and the initial distribution
    /// are excluded from the makespan; per-iteration exchanges and result
    /// collection still count.
    pub data_resident: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            fidelity: Fidelity::Full,
            mode: KernelMode::Native,
            verify: true,
            replicate_inputs: false,
            data_resident: false,
        }
    }
}

impl RunOptions {
    /// Full-fidelity, native kernels, verified (the test default).
    pub fn full() -> Self {
        RunOptions::default()
    }

    /// Modeled fidelity for paper-scale benchmarking (no verification).
    pub fn modeled() -> Self {
        RunOptions {
            fidelity: Fidelity::Modeled,
            mode: KernelMode::Native,
            verify: false,
            ..RunOptions::default()
        }
    }

    /// Modeled fidelity measuring from resident data (steady state).
    pub fn modeled_resident() -> Self {
        RunOptions {
            data_resident: true,
            ..RunOptions::modeled()
        }
    }

    /// Full fidelity through the source-compilation path.
    pub fn source() -> Self {
        RunOptions {
            mode: KernelMode::Source,
            ..RunOptions::default()
        }
    }

    /// Whether buffers/launches run in full fidelity.
    pub fn is_full(&self) -> bool {
        self.fidelity == Fidelity::Full
    }
}

/// The outcome of one distributed workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Workload name.
    pub app: String,
    /// Number of devices used.
    pub devices: usize,
    /// End-to-end virtual time (generation + transfers + compute).
    pub makespan: SimDuration,
    /// Per-phase breakdown (Fig. 3 instrumentation).
    pub phases: PhaseBreakdown,
    /// `Some(true)` if verified against the reference, `Some(false)` if
    /// the check failed, `None` when verification was skipped.
    pub verified: Option<bool>,
}

impl RunReport {
    /// Speedup of this run relative to `baseline` (ratio of makespans).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.makespan.as_secs_f64() / self.makespan.as_secs_f64()
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {} device(s): {} [{}]{}",
            self.app,
            self.devices,
            self.makespan,
            self.phases,
            match self.verified {
                Some(true) => " verified",
                Some(false) => " VERIFICATION FAILED",
                None => "",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_presets() {
        assert!(RunOptions::full().is_full());
        assert!(!RunOptions::modeled().is_full());
        assert!(!RunOptions::modeled().verify);
        assert_eq!(RunOptions::source().mode, KernelMode::Source);
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let mk = |secs: u64| RunReport {
            app: "x".into(),
            devices: 1,
            makespan: SimDuration::from_secs(secs),
            phases: PhaseBreakdown::default(),
            verified: None,
        };
        let single = mk(8);
        let four = mk(2);
        assert!((four.speedup_over(&single) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_verification() {
        let r = RunReport {
            app: "mm".into(),
            devices: 2,
            makespan: SimDuration::from_secs(1),
            phases: PhaseBreakdown::default(),
            verified: Some(true),
        };
        assert!(r.to_string().contains("verified"));
    }
}
