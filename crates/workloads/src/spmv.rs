//! SpMV: sparse matrix–vector multiplication in CSR format (Table I,
//! 1.1 GB).
//!
//! Two kernels, matching the staged heterogeneity evaluation of §IV-C
//! ("the kernel for data partition is allocated on the GPUs and
//! computation on the FPGAs"):
//!
//! * [`NNZ_KERNEL_NAME`] — the partition stage: per-row nonzero counts,
//!   a uniform pass GPUs digest well;
//! * [`KERNEL_NAME`] — the compute stage: the CSR multiply, a streaming
//!   pass FPGAs digest well.

use haocl::{
    CommandQueue, Context, Device, DeviceType, Error, Kernel, MemFlags, NdRange, Platform, Program,
    Status,
};
use haocl_kernel::{
    ArgValue, CostModel, ExecError, ExecStats, GlobalBuffer, KernelRegistry, NativeKernel,
};
use haocl_sim::rng::labeled_rng;
use rand::Rng;

use crate::matmul::{buf_index, scalar_i32};
use crate::partition::nnz_balanced_rows;
use crate::report::{KernelMode, RunOptions, RunReport};
use crate::util::{
    bytes_to_f32s, create_buffer, f32s_to_bytes, i32s_to_bytes, read_buffer, round_up, write_buffer,
};

/// The compute-stage kernel name.
pub const KERNEL_NAME: &str = "spmv_csr";

/// The partition-stage kernel name.
pub const NNZ_KERNEL_NAME: &str = "spmv_row_nnz";

/// OpenCL C source holding both kernels.
pub const KERNEL_SOURCE: &str = r#"
__kernel void spmv_row_nnz(__global const int* row_ptr, __global int* row_nnz, int n) {
    int i = get_global_id(0);
    if (i < n) {
        row_nnz[i] = row_ptr[i + 1] - row_ptr[i];
    }
}

__kernel void spmv_csr(__global const int* row_ptr, __global const int* cols,
                       __global const float* vals, __global const float* x,
                       __global float* y, int rows) {
    int i = get_global_id(0);
    if (i < rows) {
        float acc = 0.0f;
        for (int j = row_ptr[i]; j < row_ptr[i + 1]; j++) {
            acc += vals[j] * x[cols[j]];
        }
        y[i] = acc;
    }
}
"#;

/// A CSR sparse matrix with `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Row pointers (`rows + 1` entries).
    pub row_ptr: Vec<u32>,
    /// Column indices per nonzero.
    pub cols: Vec<u32>,
    /// Values per nonzero.
    pub vals: Vec<f32>,
    /// Number of columns.
    pub n_cols: usize,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }
}

/// Workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmvConfig {
    /// Rows (and columns) of the square matrix.
    pub rows: usize,
    /// Average nonzeros per row.
    pub avg_nnz_per_row: usize,
    /// Generator seed.
    pub seed: u64,
}

impl SpmvConfig {
    /// Table I scale: ~4.1 M rows at 32 nnz/row ≈ 1.1 GB of CSR data.
    pub fn paper_scale() -> Self {
        SpmvConfig {
            rows: 4_100_000,
            avg_nnz_per_row: 32,
            seed: 42,
        }
    }

    /// Small size for full-fidelity tests.
    pub fn test_scale() -> Self {
        SpmvConfig {
            rows: 1024,
            avg_nnz_per_row: 8,
            seed: 42,
        }
    }

    /// Approximate bytes of the CSR structure plus vectors.
    pub fn input_bytes(&self) -> u64 {
        let rows = self.rows as u64;
        let nnz = rows * self.avg_nnz_per_row as u64;
        4 * (rows + 1) + 8 * nnz + 8 * rows
    }
}

/// Generates a random square CSR matrix (row degrees vary ±50% around the
/// average; column indices sorted and deduplicated per row).
pub fn generate_matrix(cfg: &SpmvConfig) -> CsrMatrix {
    let mut rng = labeled_rng(cfg.seed, "spmv/matrix");
    let lo = (cfg.avg_nnz_per_row / 2).max(1);
    let hi = cfg.avg_nnz_per_row * 3 / 2 + 1;
    let mut row_ptr = Vec::with_capacity(cfg.rows + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0u32);
    for _ in 0..cfg.rows {
        let deg = rng.gen_range(lo..hi).min(cfg.rows);
        let mut row_cols: Vec<u32> = (0..deg)
            .map(|_| rng.gen_range(0..cfg.rows as u32))
            .collect();
        row_cols.sort_unstable();
        row_cols.dedup();
        for c in &row_cols {
            cols.push(*c);
            vals.push(rng.gen_range(-1.0..1.0));
        }
        row_ptr.push(cols.len() as u32);
    }
    CsrMatrix {
        row_ptr,
        cols,
        vals,
        n_cols: cfg.rows,
    }
}

/// Generates the dense input vector.
pub fn generate_vector(cfg: &SpmvConfig) -> Vec<f32> {
    let mut rng = labeled_rng(cfg.seed, "spmv/x");
    (0..cfg.rows).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Host reference `y = A·x`, matching kernel FLOP order.
pub fn reference(m: &CsrMatrix, x: &[f32]) -> Vec<f32> {
    let mut y = vec![0.0f32; m.rows()];
    for (i, out) in y.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for j in m.row_ptr[i] as usize..m.row_ptr[i + 1] as usize {
            acc += m.vals[j] * x[m.cols[j] as usize];
        }
        *out = acc;
    }
    y
}

/// Cost of a compute-stage launch over `nnz` nonzeros / `rows` rows.
///
/// Each nonzero streams its value and column index and gathers one
/// element of `x` with effectively no reuse (random columns), hence
/// 12 bytes of traffic per nonzero.
pub fn compute_cost(rows: usize, nnz: usize) -> CostModel {
    CostModel::new()
        .flops(2.0 * nnz as f64)
        .bytes_read(12.0 * nnz as f64 + 4.0 * rows as f64)
        .bytes_written(4.0 * rows as f64)
        .streaming()
}

/// Cost of a partition-stage launch over `rows` rows.
pub fn nnz_cost(rows: usize) -> CostModel {
    CostModel::new()
        .flops(rows as f64)
        .bytes_read(8.0 * rows as f64)
        .bytes_written(4.0 * rows as f64)
}

struct NativeSpmv;

impl NativeKernel for NativeSpmv {
    fn name(&self) -> &str {
        KERNEL_NAME
    }

    fn arity(&self) -> usize {
        6
    }

    fn execute(
        &self,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        _range: &NdRange,
    ) -> Result<ExecStats, ExecError> {
        let rows = match args[5] {
            ArgValue::Scalar(v) => scalar_i32(v)? as usize,
            _ => return Err(ExecError::from_message("spmv_csr: rows must be a scalar")),
        };
        let row_ptr = buffers[buf_index(args, 0)?].as_i32();
        let cols = buffers[buf_index(args, 1)?].as_i32();
        let vals = bytes_to_f32s(buffers[buf_index(args, 2)?].as_bytes());
        let x = bytes_to_f32s(buffers[buf_index(args, 3)?].as_bytes());
        let mut y = vec![0.0f32; rows];
        let mut visited = 0u64;
        for i in 0..rows {
            let mut acc = 0.0f32;
            for j in row_ptr[i] as usize..row_ptr[i + 1] as usize {
                acc += vals[j] * x[cols[j] as usize];
                visited += 1;
            }
            y[i] = acc;
        }
        let yi = buf_index(args, 4)?;
        buffers[yi] = GlobalBuffer::from_f32(&y);
        Ok(ExecStats {
            instructions: 2 * visited,
            work_items: rows as u64,
            work_groups: 1,
            barriers: 0,
        })
    }
}

struct NativeRowNnz;

impl NativeKernel for NativeRowNnz {
    fn name(&self) -> &str {
        NNZ_KERNEL_NAME
    }

    fn arity(&self) -> usize {
        3
    }

    fn execute(
        &self,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        _range: &NdRange,
    ) -> Result<ExecStats, ExecError> {
        let n = match args[2] {
            ArgValue::Scalar(v) => scalar_i32(v)? as usize,
            _ => return Err(ExecError::from_message("spmv_row_nnz: n must be a scalar")),
        };
        let row_ptr = buffers[buf_index(args, 0)?].as_i32();
        let nnz: Vec<i32> = (0..n).map(|i| row_ptr[i + 1] - row_ptr[i]).collect();
        let oi = buf_index(args, 1)?;
        buffers[oi] = GlobalBuffer::from_i32(&nnz);
        Ok(ExecStats {
            instructions: n as u64,
            work_items: n as u64,
            work_groups: 1,
            barriers: 0,
        })
    }
}

/// Registers both native SpMV kernels in `registry`.
pub fn register_natives(registry: &KernelRegistry) {
    registry.register(std::sync::Arc::new(NativeSpmv));
    registry.register(std::sync::Arc::new(NativeRowNnz));
}

/// Runs distributed SpMV with nonzero-balanced row partitioning across
/// every device of `platform`.
///
/// # Errors
///
/// Propagates any API or transport failure from the wrapper library.
pub fn run(platform: &Platform, cfg: &SpmvConfig, opts: &RunOptions) -> Result<RunReport, Error> {
    let devices = platform.devices(DeviceType::All);
    run_on(platform, &devices, &devices, cfg, opts)
}

/// The staged heterogeneous run of §IV-C: the partition kernel runs on
/// the platform's GPUs, the compute kernel on its FPGAs.
///
/// # Errors
///
/// [`Status::DeviceNotFound`] if the platform lacks either class.
pub fn run_hetero(
    platform: &Platform,
    cfg: &SpmvConfig,
    opts: &RunOptions,
) -> Result<RunReport, Error> {
    let gpus = platform.devices(DeviceType::Gpu);
    let fpgas = platform.devices(DeviceType::Accelerator);
    if gpus.is_empty() || fpgas.is_empty() {
        return Err(Error::api(
            Status::DeviceNotFound,
            "staged SpMV needs at least one GPU and one FPGA",
        ));
    }
    run_on(platform, &gpus, &fpgas, cfg, opts)
}

fn run_on(
    platform: &Platform,
    partition_devices: &[Device],
    compute_devices: &[Device],
    cfg: &SpmvConfig,
    opts: &RunOptions,
) -> Result<RunReport, Error> {
    let all = platform.devices(DeviceType::All);
    let ctx = Context::new(platform, &all)?;
    let program = match opts.mode {
        KernelMode::Native => Program::with_bitstream_kernels(&ctx, [KERNEL_NAME, NNZ_KERNEL_NAME]),
        KernelMode::Source => Program::from_source(&ctx, KERNEL_SOURCE),
    };
    program.build()?;
    let nnz_kernel = Kernel::new(&program, NNZ_KERNEL_NAME)?;
    let csr_kernel = Kernel::new(&program, KERNEL_NAME)?;
    nnz_kernel.set_fidelity(opts.fidelity);
    csr_kernel.set_fidelity(opts.fidelity);

    platform.reset_phases();
    let t0 = platform.now();
    let full = opts.is_full();

    let (matrix, x) = if full {
        (generate_matrix(cfg), generate_vector(cfg))
    } else {
        (
            CsrMatrix {
                row_ptr: Vec::new(),
                cols: Vec::new(),
                vals: Vec::new(),
                n_cols: cfg.rows,
            },
            Vec::new(),
        )
    };
    platform.charge_data_creation(cfg.input_bytes());
    if opts.replicate_inputs {
        let all_queues: Vec<CommandQueue> = all
            .iter()
            .map(|d| CommandQueue::new(&ctx, d))
            .collect::<Result<_, _>>()?;
        crate::util::charge_replication(&ctx, &all_queues, cfg.input_bytes())?;
    }

    let rows = cfg.rows;
    let approx_nnz = rows * cfg.avg_nnz_per_row;

    // ---- Stage 1: partition analysis (row nnz counts). ----
    // The whole row_ptr goes to the first partition device; the counts
    // come back to the host, which derives the nnz-balanced row split.
    {
        let q = CommandQueue::new(&ctx, &partition_devices[0])?;
        let rp_bytes = 4 * (rows as u64 + 1);
        let rp_d = create_buffer(&ctx, MemFlags::READ_ONLY, rp_bytes, full)?;
        let out_d = create_buffer(&ctx, MemFlags::WRITE_ONLY, 4 * rows as u64, full)?;
        let rp_data = if full {
            i32s_to_bytes(&matrix.row_ptr.iter().map(|&v| v as i32).collect::<Vec<_>>())
        } else {
            Vec::new()
        };
        write_buffer(&q, &rp_d, &rp_data, rp_bytes, full)?;
        nnz_kernel.set_arg_buffer(0, &rp_d)?;
        nnz_kernel.set_arg_buffer(1, &out_d)?;
        nnz_kernel.set_arg_i32(2, rows as i32)?;
        nnz_kernel.set_cost(nnz_cost(rows));
        q.enqueue_nd_range_kernel(&nnz_kernel, NdRange::linear(round_up(rows as u64, 64), 64))?;
        q.finish();
        read_buffer(&q, &out_d, 4 * rows as u64, full)?;
    }

    // Host derives the split (from real row_ptr in full mode; an even
    // estimate in modeled mode, since modeled data has uniform rows).
    let ranges = if full {
        nnz_balanced_rows(&matrix.row_ptr, compute_devices.len())
    } else {
        crate::partition::balanced_ranges(rows, compute_devices.len())
    };

    // ---- Stage 2: the CSR multiply over nnz-balanced row blocks. ----
    let queues: Vec<CommandQueue> = compute_devices
        .iter()
        .map(|d| CommandQueue::new(&ctx, d))
        .collect::<Result<_, _>>()?;
    let mut parts = Vec::new();
    for (queue, range) in queues.iter().zip(&ranges) {
        let r = range.len();
        let (part_nnz, rp_local, cols_local, vals_local) = if full {
            let lo = matrix.row_ptr[range.start] as usize;
            let hi = matrix.row_ptr[range.end] as usize;
            let rp: Vec<i32> = matrix.row_ptr[range.start..=range.end]
                .iter()
                .map(|&v| (v as usize - lo) as i32)
                .collect();
            let cl: Vec<i32> = matrix.cols[lo..hi].iter().map(|&c| c as i32).collect();
            let vl = matrix.vals[lo..hi].to_vec();
            (hi - lo, rp, cl, vl)
        } else {
            (
                approx_nnz / compute_devices.len().max(1),
                Vec::new(),
                Vec::new(),
                Vec::new(),
            )
        };
        let rp_bytes = (4 * (r + 1)).max(8) as u64;
        let cols_bytes = (4 * part_nnz).max(4) as u64;
        let x_bytes = (4 * rows) as u64;
        let y_bytes = (4 * r).max(4) as u64;
        let rp_d = create_buffer(&ctx, MemFlags::READ_ONLY, rp_bytes, full)?;
        let cols_d = create_buffer(&ctx, MemFlags::READ_ONLY, cols_bytes, full)?;
        let vals_d = create_buffer(&ctx, MemFlags::READ_ONLY, cols_bytes, full)?;
        let x_d = create_buffer(&ctx, MemFlags::READ_ONLY, x_bytes, full)?;
        let y_d = create_buffer(&ctx, MemFlags::WRITE_ONLY, y_bytes, full)?;
        if r > 0 {
            write_buffer(
                queue,
                &rp_d,
                &i32s_to_bytes(&rp_local),
                rp_bytes.min(4 * (r as u64 + 1)),
                full,
            )?;
            if part_nnz > 0 {
                write_buffer(
                    queue,
                    &cols_d,
                    &i32s_to_bytes(&cols_local),
                    (4 * part_nnz) as u64,
                    full,
                )?;
                write_buffer(
                    queue,
                    &vals_d,
                    &f32s_to_bytes(&vals_local),
                    (4 * part_nnz) as u64,
                    full,
                )?;
            }
            let x_data = if full { f32s_to_bytes(&x) } else { Vec::new() };
            write_buffer(queue, &x_d, &x_data, x_bytes, full)?;
        }
        parts.push((rp_d, cols_d, vals_d, x_d, y_d, range.clone(), part_nnz));
    }

    // Steady-state measurement starts once the matrix and vector are
    // resident on the compute devices.
    let t0 = if opts.data_resident {
        platform.now()
    } else {
        t0
    };

    for (queue, (rp_d, cols_d, vals_d, x_d, y_d, range, part_nnz)) in queues.iter().zip(&parts) {
        let r = range.len();
        if r == 0 {
            continue;
        }
        csr_kernel.set_arg_buffer(0, rp_d)?;
        csr_kernel.set_arg_buffer(1, cols_d)?;
        csr_kernel.set_arg_buffer(2, vals_d)?;
        csr_kernel.set_arg_buffer(3, x_d)?;
        csr_kernel.set_arg_buffer(4, y_d)?;
        csr_kernel.set_arg_i32(5, r as i32)?;
        csr_kernel.set_cost(compute_cost(r, *part_nnz));
        queue.enqueue_nd_range_kernel(&csr_kernel, NdRange::linear(round_up(r as u64, 64), 64))?;
    }
    for queue in &queues {
        queue.finish();
    }

    let mut verified = None;
    if full {
        let mut y = vec![0.0f32; rows];
        for (queue, (_, _, _, _, y_d, range, _)) in queues.iter().zip(&parts) {
            let r = range.len();
            if r == 0 {
                continue;
            }
            let bytes =
                read_buffer(queue, y_d, (4 * r) as u64, true)?.expect("full fidelity returns data");
            y[range.clone()].copy_from_slice(&bytes_to_f32s(&bytes));
        }
        if opts.verify {
            let expect = reference(&matrix, &x);
            verified = Some(
                y.iter()
                    .zip(&expect)
                    .all(|(a, b)| (a - b).abs() <= 1e-4 * b.abs().max(1.0)),
            );
        }
    } else {
        for (queue, (_, _, _, _, y_d, range, _)) in queues.iter().zip(&parts) {
            if range.is_empty() {
                continue;
            }
            read_buffer(queue, y_d, (4 * range.len()) as u64, false)?;
        }
    }

    Ok(RunReport {
        app: "SpMV".to_string(),
        devices: compute_devices.len(),
        makespan: platform.now() - t0,
        phases: platform.phase_breakdown(),
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl::DeviceKind;

    fn platform(kinds: &[DeviceKind]) -> Platform {
        Platform::local_with_registry(kinds, crate::registry_with_all()).unwrap()
    }

    #[test]
    fn single_device_verifies() {
        let report = run(
            &platform(&[DeviceKind::Gpu]),
            &SpmvConfig::test_scale(),
            &RunOptions::full(),
        )
        .unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn source_kernels_verify() {
        let cfg = SpmvConfig {
            rows: 256,
            avg_nnz_per_row: 4,
            seed: 3,
        };
        let report = run(&platform(&[DeviceKind::Gpu]), &cfg, &RunOptions::source()).unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn multi_device_split_verifies() {
        let report = run(
            &platform(&[DeviceKind::Gpu, DeviceKind::Gpu]),
            &SpmvConfig::test_scale(),
            &RunOptions::full(),
        )
        .unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
    }

    #[test]
    fn staged_hetero_run_verifies() {
        let report = run_hetero(
            &platform(&[DeviceKind::Gpu, DeviceKind::Fpga, DeviceKind::Fpga]),
            &SpmvConfig::test_scale(),
            &RunOptions::full(),
        )
        .unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
        // Compute stage ran on the two FPGAs.
        assert_eq!(report.devices, 2);
    }

    #[test]
    fn hetero_requires_both_classes() {
        let err = run_hetero(
            &platform(&[DeviceKind::Gpu]),
            &SpmvConfig::test_scale(),
            &RunOptions::full(),
        )
        .unwrap_err();
        assert_eq!(err.status(), Some(Status::DeviceNotFound));
    }

    #[test]
    fn reference_on_identity_matrix() {
        // 3×3 identity in CSR.
        let m = CsrMatrix {
            row_ptr: vec![0, 1, 2, 3],
            cols: vec![0, 1, 2],
            vals: vec![1.0, 1.0, 1.0],
            n_cols: 3,
        };
        let x = vec![5.0, -2.0, 7.5];
        assert_eq!(reference(&m, &x), x);
    }

    #[test]
    fn generator_produces_consistent_csr() {
        let m = generate_matrix(&SpmvConfig::test_scale());
        assert_eq!(m.rows(), 1024);
        assert_eq!(*m.row_ptr.last().unwrap() as usize, m.nnz());
        assert!(m.cols.iter().all(|&c| (c as usize) < m.n_cols));
        // Rows are sorted and deduplicated.
        for i in 0..m.rows() {
            let row = &m.cols[m.row_ptr[i] as usize..m.row_ptr[i + 1] as usize];
            for w in row.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn paper_scale_matches_table1() {
        let bytes = SpmvConfig::paper_scale().input_bytes();
        assert!((1.0e9..1.2e9).contains(&(bytes as f64)), "{bytes}");
    }
}
