//! Table I: the benchmark applications and their input sets.

use crate::{bfs, cfd, knn, matmul, spmv};

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRow {
    /// Application name as printed in the paper.
    pub app: &'static str,
    /// The paper's one-line description.
    pub description: &'static str,
    /// The paper's reported input size.
    pub paper_input_size: &'static str,
    /// Bytes our paper-scale generator actually produces.
    pub generated_bytes: u64,
}

/// Regenerates Table I with our generators' actual sizes alongside the
/// paper's reported ones.
pub fn table1() -> Vec<TableRow> {
    vec![
        TableRow {
            app: "MatrixMul",
            description: "Matrix multiplication",
            paper_input_size: "760MB",
            generated_bytes: matmul::MatmulConfig::paper_scale().input_bytes(),
        },
        TableRow {
            app: "CFD",
            description: "Unstructured grid finite volume solver",
            paper_input_size: "800MB",
            generated_bytes: cfd::CfdConfig::paper_scale().input_bytes(),
        },
        TableRow {
            app: "kNN",
            description: "Finds k-nearest neighbors in unstructured data set",
            paper_input_size: "100MB",
            generated_bytes: knn::KnnConfig::paper_scale().input_bytes(),
        },
        TableRow {
            app: "BFS",
            description: "Traverses all the connected components in a graph",
            paper_input_size: "240MB",
            generated_bytes: bfs::BfsConfig::paper_scale().input_bytes(),
        },
        TableRow {
            app: "SpMV",
            description: "Sparse matrix-vector multiplication in CSR format",
            paper_input_size: "1.1GB",
            generated_bytes: spmv::SpmvConfig::paper_scale().input_bytes(),
        },
    ]
}

#[cfg(test)]
fn parse_paper_size(s: &str) -> f64 {
    if let Some(mb) = s.strip_suffix("MB") {
        mb.parse::<f64>().expect("numeric MB") * 1e6
    } else if let Some(gb) = s.strip_suffix("GB") {
        gb.parse::<f64>().expect("numeric GB") * 1e9
    } else {
        panic!("unknown size unit in {s}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_all_five_benchmarks() {
        let rows = table1();
        let apps: Vec<&str> = rows.iter().map(|r| r.app).collect();
        assert_eq!(apps, vec!["MatrixMul", "CFD", "kNN", "BFS", "SpMV"]);
    }

    #[test]
    fn generated_sizes_track_the_paper_within_15_percent() {
        for row in table1() {
            let paper = parse_paper_size(row.paper_input_size);
            let ratio = row.generated_bytes as f64 / paper;
            assert!(
                (0.85..1.15).contains(&ratio),
                "{}: generated {} vs paper {} (ratio {ratio:.2})",
                row.app,
                row.generated_bytes,
                row.paper_input_size
            );
        }
    }
}
