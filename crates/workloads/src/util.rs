//! Driver plumbing shared by the workload modules.

use haocl::platform::Device;
use haocl::{Buffer, CommandQueue, Context, Error, MemFlags};
use haocl_kernel::CostModel;
use haocl_sched::policy::estimate_time;
use haocl_sched::{DeviceView, TaskSpec};

/// Per-device throughput weights for `unit_cost` (the work of one data
/// unit): faster devices get proportionally more rows/records/cells.
/// This is the heterogeneity-aware split of §IV-C — the same kernel on
/// every device, portions sized to the device.
pub(crate) fn throughput_weights(devices: &[Device], unit_cost: &CostModel) -> Vec<f64> {
    devices
        .iter()
        .map(|d| {
            let view = DeviceView::from_descriptor(d.node_id(), d.descriptor());
            let task = TaskSpec::new("unit").cost(*unit_cost);
            let secs = estimate_time(&task, &view).as_secs_f64();
            if secs > 0.0 {
                1.0 / secs
            } else {
                1.0
            }
        })
        .collect()
}

/// Rounds `n` up to the next multiple of `m`.
pub(crate) fn round_up(n: u64, m: u64) -> u64 {
    n.div_ceil(m) * m
}

/// Creates a real or modeled buffer according to `full`.
pub(crate) fn create_buffer(
    ctx: &Context,
    flags: MemFlags,
    bytes: u64,
    full: bool,
) -> Result<Buffer, Error> {
    if full {
        Buffer::new(ctx, flags, bytes)
    } else {
        Buffer::new_modeled(ctx, flags, bytes)
    }
}

/// Writes `data` (full) or charges a modeled transfer of `len` bytes.
pub(crate) fn write_buffer(
    queue: &CommandQueue,
    buf: &Buffer,
    data: &[u8],
    len: u64,
    full: bool,
) -> Result<(), Error> {
    if full {
        debug_assert_eq!(data.len() as u64, len);
        queue.enqueue_write_buffer(buf, 0, data)?;
    } else {
        queue.enqueue_write_buffer_modeled(buf, 0, len)?;
    }
    Ok(())
}

/// Reads `len` bytes back (full) or charges a modeled pull; returns the
/// data only in full fidelity.
pub(crate) fn read_buffer(
    queue: &CommandQueue,
    buf: &Buffer,
    len: u64,
    full: bool,
) -> Result<Option<Vec<u8>>, Error> {
    if full {
        let mut out = vec![0u8; len as usize];
        queue.enqueue_read_buffer(buf, 0, &mut out)?;
        Ok(Some(out))
    } else {
        queue.enqueue_read_buffer_modeled(buf, 0, len)?;
        Ok(None)
    }
}

/// Charges a broadcast of the full `bytes` input to every device
/// (SnuCL-D-style replicated data placement). The scratch buffers are
/// modeled: only virtual transfer time is charged, in both fidelities.
pub(crate) fn charge_replication(
    ctx: &Context,
    queues: &[CommandQueue],
    bytes: u64,
) -> Result<(), Error> {
    if bytes == 0 {
        return Ok(());
    }
    for q in queues {
        let scratch = Buffer::new_modeled(ctx, MemFlags::READ_ONLY, bytes)?;
        q.enqueue_write_buffer_modeled(&scratch, 0, bytes)?;
    }
    Ok(())
}

/// Little-endian reinterpretations between scalar vectors and bytes.
macro_rules! bytes_conv {
    ($to:ident, $from:ident, $t:ty) => {
        pub(crate) fn $to(values: &[$t]) -> Vec<u8> {
            values.iter().flat_map(|v| v.to_le_bytes()).collect()
        }

        pub(crate) fn $from(bytes: &[u8]) -> Vec<$t> {
            bytes
                .chunks_exact(std::mem::size_of::<$t>())
                .map(|c| <$t>::from_le_bytes(c.try_into().expect("chunk size")))
                .collect()
        }
    };
}

bytes_conv!(f32s_to_bytes, bytes_to_f32s, f32);
bytes_conv!(i32s_to_bytes, bytes_to_i32s, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_up_works() {
        assert_eq!(round_up(0, 16), 0);
        assert_eq!(round_up(1, 16), 16);
        assert_eq!(round_up(16, 16), 16);
        assert_eq!(round_up(17, 16), 32);
    }

    #[test]
    fn byte_conversions_roundtrip() {
        let xs = vec![1.5f32, -2.25, 0.0];
        assert_eq!(bytes_to_f32s(&f32s_to_bytes(&xs)), xs);
        let ys = vec![1i32, -7, i32::MAX];
        assert_eq!(bytes_to_i32s(&i32s_to_bytes(&ys)), ys);
    }
}
