//! A unified handle over the five benchmarks (for harnesses that sweep
//! them uniformly).

use haocl::{Error, Platform};

use crate::bfs::{self, BfsConfig};
use crate::cfd::{self, CfdConfig};
use crate::knn::{self, KnnConfig};
use crate::matmul::{self, MatmulConfig};
use crate::report::{RunOptions, RunReport};
use crate::spmv::{self, SpmvConfig};

/// One of the five Table I benchmarks with its configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Dense matrix multiplication.
    MatrixMul(MatmulConfig),
    /// Unstructured-grid finite-volume solver.
    Cfd(CfdConfig),
    /// k-nearest neighbours.
    Knn(KnnConfig),
    /// Breadth-first traversal.
    Bfs(BfsConfig),
    /// Sparse matrix–vector multiplication.
    Spmv(SpmvConfig),
}

impl Workload {
    /// All five benchmarks at Table I scale.
    pub fn paper_suite() -> Vec<Workload> {
        vec![
            Workload::MatrixMul(MatmulConfig::paper_scale()),
            Workload::Cfd(CfdConfig::paper_scale()),
            Workload::Knn(KnnConfig::paper_scale()),
            Workload::Bfs(BfsConfig::paper_scale()),
            Workload::Spmv(SpmvConfig::paper_scale()),
        ]
    }

    /// All five benchmarks at test scale.
    pub fn test_suite() -> Vec<Workload> {
        vec![
            Workload::MatrixMul(MatmulConfig::test_scale()),
            Workload::Cfd(CfdConfig::test_scale()),
            Workload::Knn(KnnConfig::test_scale()),
            Workload::Bfs(BfsConfig::test_scale()),
            Workload::Spmv(SpmvConfig::test_scale()),
        ]
    }

    /// The benchmark's Table I name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::MatrixMul(_) => "MatrixMul",
            Workload::Cfd(_) => "CFD",
            Workload::Knn(_) => "kNN",
            Workload::Bfs(_) => "BFS",
            Workload::Spmv(_) => "SpMV",
        }
    }

    /// Total input bytes at this configuration.
    pub fn input_bytes(&self) -> u64 {
        match self {
            Workload::MatrixMul(c) => c.input_bytes(),
            Workload::Cfd(c) => c.input_bytes(),
            Workload::Knn(c) => c.input_bytes(),
            Workload::Bfs(c) => c.input_bytes(),
            Workload::Spmv(c) => c.input_bytes(),
        }
    }

    /// Runs the benchmark's distributed driver on `platform`.
    ///
    /// # Errors
    ///
    /// Propagates the driver's failures.
    pub fn run(&self, platform: &Platform, opts: &RunOptions) -> Result<RunReport, Error> {
        match self {
            Workload::MatrixMul(c) => matmul::run(platform, c, opts),
            Workload::Cfd(c) => cfd::run(platform, c, opts),
            Workload::Knn(c) => knn::run(platform, c, opts),
            Workload::Bfs(c) => bfs::run(platform, c, opts),
            Workload::Spmv(c) => spmv::run(platform, c, opts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl::DeviceKind;

    #[test]
    fn suites_cover_all_five() {
        let names: Vec<&str> = Workload::paper_suite().iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["MatrixMul", "CFD", "kNN", "BFS", "SpMV"]);
        assert_eq!(Workload::test_suite().len(), 5);
    }

    #[test]
    fn whole_test_suite_verifies_on_one_gpu() {
        let platform =
            Platform::local_with_registry(&[DeviceKind::Gpu], crate::registry_with_all()).unwrap();
        for w in Workload::test_suite() {
            let report = w.run(&platform, &RunOptions::full()).unwrap();
            assert_eq!(report.verified, Some(true), "{report}");
        }
    }
}
