//! Distributed level-synchronous BFS on a random graph.
//!
//! Shows the communication pattern the paper's Fig. 2 punishes: every
//! level, the frontier state crosses the backbone between host and every
//! node. Prints per-level-ish phase totals so the transfer share is
//! visible, and verifies the depths against a host BFS.
//!
//! ```text
//! cargo run --example bfs_graph
//! ```

use haocl::Platform;
use haocl_cluster::ClusterConfig;
use haocl_sim::Phase;
use haocl_workloads::bfs::{self, BfsConfig};
use haocl_workloads::{registry_with_all, RunOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = BfsConfig {
        nodes: 4096,
        avg_degree: 4,
        source: 0,
        modeled_levels: 8,
        seed: 7,
    };
    let graph = bfs::generate_graph(&cfg);
    println!(
        "graph: {} nodes, {} edges; BFS from node {}",
        graph.nodes(),
        graph.edges(),
        cfg.source
    );
    let depths = bfs::reference(&graph, cfg.source);
    let reached = depths.iter().filter(|&&d| d >= 0).count();
    let max_depth = depths.iter().copied().max().unwrap_or(0);
    println!("host reference: {reached} reachable, max depth {max_depth}");

    for nodes in [1usize, 2, 4] {
        let platform = Platform::cluster(&ClusterConfig::gpu_cluster(nodes), registry_with_all())?;
        let report = bfs::run(&platform, &cfg, &RunOptions::full())?;
        assert_eq!(report.verified, Some(true));
        let transfer_share = 100.0 * report.phases.fraction(Phase::DataTransfer);
        println!(
            "{:>2} node(s): {}  (transfer share {:.0}% — BFS is communication-bound)",
            nodes, report, transfer_share
        );
    }
    Ok(())
}
