//! Embedding a user-defined scheduling policy (paper §I: "designers can
//! design and illustrate their own scheduling algorithms and embed them
//! into HaoCL").
//!
//! Implements a policy that pins every streaming kernel to FPGAs and
//! everything else to the fastest non-FPGA device, then routes a burst of
//! mixed kernels through the extendable scheduling component and compares
//! with two built-in policies.
//!
//! ```text
//! cargo run --example custom_scheduler
//! ```

use haocl::auto::AutoScheduler;
use haocl::kernel::Kernel;
use haocl::{Buffer, Context, DeviceKind, DeviceType, Fidelity, MemFlags, Platform, Program};
use haocl_kernel::{CostModel, NdRange};
use haocl_sched::policies::{HeteroAware, RoundRobin};
use haocl_sched::{DeviceView, ProfileDb, SchedulingPolicy, TaskSpec};
use haocl_sim::SimTime;
use haocl_workloads::registry_with_all;

/// Streaming tasks go to FPGAs; the rest to the beefiest non-FPGA device.
struct StreamsToFpga;

impl SchedulingPolicy for StreamsToFpga {
    fn name(&self) -> &str {
        "streams-to-fpga"
    }

    fn place(
        &self,
        task: &TaskSpec,
        eligible: &[(usize, &DeviceView)],
        _profile: &ProfileDb,
    ) -> Option<usize> {
        let wants_fpga = task.cost.is_streaming();
        let pick = eligible
            .iter()
            .filter(|(_, d)| (d.kind == DeviceKind::Fpga) == wants_fpga)
            .min_by(|(_, a), (_, b)| {
                a.busy_until
                    .cmp(&b.busy_until)
                    .then(b.gflops.partial_cmp(&a.gflops).expect("finite"))
            });
        pick.map(|(i, _)| *i)
            .or_else(|| eligible.first().map(|(i, _)| *i))
    }
}

fn burst(auto: &AutoScheduler, dense: &Kernel, stream: &Kernel) -> SimTime {
    let mut last = SimTime::ZERO;
    for i in 0..24 {
        let k = if i % 2 == 0 { dense } else { stream };
        let (event, _) = auto.launch(k, NdRange::linear(4096, 64)).expect("launch");
        last = last.max(event.finished_at());
    }
    last
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policies: Vec<Box<dyn SchedulingPolicy>> = vec![
        Box::new(RoundRobin::new()),
        Box::new(HeteroAware::new()),
        Box::new(StreamsToFpga),
    ];
    for policy in policies {
        // A fresh 2 GPU + 2 FPGA node so each policy starts from idle
        // timelines.
        let platform = Platform::local_with_registry(
            &[
                DeviceKind::Gpu,
                DeviceKind::Gpu,
                DeviceKind::Fpga,
                DeviceKind::Fpga,
            ],
            registry_with_all(),
        )?;
        let ctx = Context::new(&platform, &platform.devices(DeviceType::All))?;
        // Two kernels from the bitstream store play the two roles:
        // MatrixMul as dense batch work, the SpMV compute stage as the
        // streaming pass.
        let program = Program::with_bitstream_kernels(
            &ctx,
            [
                haocl_workloads::matmul::KERNEL_NAME,
                haocl_workloads::spmv::KERNEL_NAME,
            ],
        );
        program.build()?;
        let mk = |name: &str, cost: CostModel| -> Result<Kernel, haocl::Error> {
            let k = Kernel::new(&program, name)?;
            k.set_fidelity(Fidelity::Modeled);
            k.set_cost(cost);
            let dummy = Buffer::new_modeled(&ctx, MemFlags::READ_WRITE, 4096)?;
            for i in 0..k.arity() {
                if k.set_arg_buffer(i, &dummy).is_err() {
                    k.set_arg_i32(i, 0)?;
                }
            }
            Ok(k)
        };
        let dense = mk(
            haocl_workloads::matmul::KERNEL_NAME,
            CostModel::new().flops(2e11).bytes_read(1e9),
        )?;
        let stream = mk(
            haocl_workloads::spmv::KERNEL_NAME,
            CostModel::new().flops(5e10).bytes_read(5e8).streaming(),
        )?;
        let auto = AutoScheduler::new(&ctx, policy)?;
        let makespan = burst(&auto, &dense, &stream);
        println!(
            "policy {:<16} -> burst makespan {}",
            auto.policy_name(),
            makespan.saturating_duration_since(SimTime::ZERO)
        );
    }
    println!();
    println!("(the heterogeneity-aware and custom policies route streaming work to");
    println!(" the FPGAs and dense work to the GPUs; round-robin mixes them blindly)");
    Ok(())
}
