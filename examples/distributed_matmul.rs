//! Distributed MatrixMul: the paper's headline workload end-to-end.
//!
//! Runs the Table-I MatrixMul benchmark on growing GPU clusters (full
//! fidelity at a small size so it executes for real and verifies, then
//! modeled fidelity at paper scale for the timing shape), and prints the
//! Fig. 3-style phase breakdown for each run.
//!
//! ```text
//! cargo run --release --example distributed_matmul
//! ```

use haocl::Platform;
use haocl_cluster::ClusterConfig;
use haocl_sim::Phase;
use haocl_workloads::matmul::{self, MatmulConfig};
use haocl_workloads::{registry_with_all, RunOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== full fidelity (small, executed and verified) ==");
    for nodes in [1usize, 2, 4] {
        let platform = Platform::cluster(&ClusterConfig::gpu_cluster(nodes), registry_with_all())?;
        let report = matmul::run(&platform, &MatmulConfig::test_scale(), &RunOptions::full())?;
        println!("  {report}");
        assert_eq!(report.verified, Some(true));
    }

    println!();
    println!("== paper scale (modeled timing, 8192x8192) ==");
    let cfg = MatmulConfig::paper_scale();
    let mut single = None;
    for nodes in [1usize, 2, 4, 8, 16] {
        let platform = Platform::cluster(&ClusterConfig::gpu_cluster(nodes), registry_with_all())?;
        let report = matmul::run(&platform, &cfg, &RunOptions::modeled())?;
        let base = *single.get_or_insert(report.makespan);
        println!(
            "  {:>2} node(s): {:>10}  speedup {:>5.2}x  [create {} | compute {} | transfer {}]",
            nodes,
            format!("{}", report.makespan),
            base.as_secs_f64() / report.makespan.as_secs_f64(),
            report.phases.time(Phase::DataCreate),
            report.phases.time(Phase::Compute),
            report.phases.time(Phase::DataTransfer),
        );
    }
    Ok(())
}
