//! The §IV-C staged heterogeneous SpMV: partition kernel on GPUs,
//! compute kernel on FPGAs.
//!
//! Demonstrates the paper's FPGA flow: the CSR compute kernel is loaded
//! from the node's pre-built bitstream store (`LoadBitstream`), since
//! FPGA nodes refuse online source compilation, while the GPU runs the
//! row-analysis stage. Runs at full fidelity and verifies against the
//! host reference.
//!
//! ```text
//! cargo run --example hetero_spmv
//! ```

use haocl::Platform;
use haocl_cluster::ClusterConfig;
use haocl_workloads::spmv::{self, SpmvConfig};
use haocl_workloads::{registry_with_all, RunOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two GPU nodes + two FPGA nodes, Gigabit Ethernet.
    let config = ClusterConfig::hetero_cluster(2, 2);
    let platform = Platform::cluster(&config, registry_with_all())?;
    println!("cluster:");
    for d in platform.devices(haocl::DeviceType::All) {
        println!("  {} on {} ({})", d.name(), d.node_name(), d.kind());
    }

    let cfg = SpmvConfig::test_scale();
    println!();
    println!(
        "SpMV {}x{}, ~{} nnz/row — partition stage on GPUs, compute stage on FPGAs",
        cfg.rows, cfg.rows, cfg.avg_nnz_per_row
    );
    let report = spmv::run_hetero(&platform, &cfg, &RunOptions::full())?;
    println!("{report}");
    assert_eq!(report.verified, Some(true));

    // Compare with running everything on every device (homogeneous mode).
    let all = spmv::run(&platform, &cfg, &RunOptions::full())?;
    println!("{all} (same kernels on all devices, nnz-balanced rows)");
    assert_eq!(all.verified, Some(true));
    Ok(())
}
