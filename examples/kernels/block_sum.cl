/* Work-group partial sums staged through __local memory. Each work-item
 * accumulates a strided slice, then item 0 combines the group's partials
 * after the barrier (the read is uniform, so no divergence/race). */
__kernel void block_sum(__global const int* in, __global int* out, int n) {
    __local int partial[8];
    int l = get_local_id(0);
    int sum = 0;
    for (int i = l; i < n; i += 8) {
        sum += in[i];
    }
    partial[l] = sum;
    barrier(CLK_LOCAL_MEM_FENCE);
    if (l == 0) {
        int total = 0;
        for (int j = 0; j < 8; j++) {
            total += partial[j];
        }
        out[0] = total;
    }
}
