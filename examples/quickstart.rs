//! Quickstart: an unmodified OpenCL-style host program on a HaoCL
//! cluster.
//!
//! Builds a 4-node GPU cluster in-process, compiles a kernel from source
//! on every node, runs a partitioned vector scale-and-add across all four
//! devices and checks the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use haocl::kernel::Kernel;
use haocl::{Buffer, CommandQueue, Context, DeviceType, MemFlags, NdRange, Platform, Program};
use haocl_cluster::ClusterConfig;
use haocl_kernel::{CostModel, KernelRegistry};

const SRC: &str = r#"
__kernel void saxpy(float a, __global const float* x, __global float* y, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-node single-GPU cluster on simulated Gigabit Ethernet. The node
    // management processes run as real threads exchanging real messages.
    let platform = Platform::cluster(&ClusterConfig::gpu_cluster(4), KernelRegistry::new())?;
    let devices = platform.devices(DeviceType::Gpu);
    println!(
        "platform `{}` with {} device(s):",
        platform.name(),
        devices.len()
    );
    for d in &devices {
        println!("  [{}] {} on node {}", d.index(), d.name(), d.node_name());
    }

    let context = Context::new(&platform, &devices)?;
    let program = Program::from_source(&context, SRC);
    program.build()?;
    let kernel = Kernel::new(&program, "saxpy")?;

    // Partition 1M elements across the devices; each gets its own block.
    let n: usize = 1 << 20;
    let per = n / devices.len();
    let x_host: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let mut y_host: Vec<f32> = vec![1.0; n];

    let mut queues = Vec::new();
    for (di, device) in devices.iter().enumerate() {
        let queue = CommandQueue::new(&context, device)?;
        let x = Buffer::new(&context, MemFlags::READ_ONLY, (per * 4) as u64)?;
        let y = Buffer::new(&context, MemFlags::READ_WRITE, (per * 4) as u64)?;
        let lo = di * per;
        let to_bytes = |v: &[f32]| -> Vec<u8> { v.iter().flat_map(|f| f.to_le_bytes()).collect() };
        queue.enqueue_write_buffer(&x, 0, &to_bytes(&x_host[lo..lo + per]))?;
        queue.enqueue_write_buffer(&y, 0, &to_bytes(&y_host[lo..lo + per]))?;
        kernel.set_arg_f32(0, 2.0)?;
        kernel.set_arg_buffer(1, &x)?;
        kernel.set_arg_buffer(2, &y)?;
        kernel.set_arg_i32(3, per as i32)?;
        kernel.set_cost(
            CostModel::new()
                .flops(2.0 * per as f64)
                .bytes_read(8.0 * per as f64)
                .bytes_written(4.0 * per as f64),
        );
        let event = queue.enqueue_nd_range_kernel(&kernel, NdRange::linear(per as u64, 256))?;
        println!(
            "node {}: kernel ran {} (virtual), {} bytecode instructions",
            device.node_name(),
            event.duration(),
            event.instructions()
        );
        queues.push((queue, y, lo));
    }

    // Collect and verify.
    for (queue, y, lo) in &queues {
        queue.finish();
        let mut bytes = vec![0u8; per * 4];
        queue.enqueue_read_buffer(y, 0, &mut bytes)?;
        for (i, c) in bytes.chunks_exact(4).enumerate() {
            y_host[lo + i] = f32::from_le_bytes(c.try_into().unwrap());
        }
    }
    let ok = y_host
        .iter()
        .enumerate()
        .all(|(i, &v)| v == 2.0 * i as f32 + 1.0);
    println!(
        "result {} — end-to-end virtual time {}",
        if ok { "verified" } else { "WRONG" },
        platform.now()
    );
    assert!(ok);
    Ok(())
}
