//! Offline drop-in subset of the `bytes` crate.
//!
//! Provides [`Bytes`] (a cheaply cloneable, sliceable shared byte
//! buffer), [`BytesMut`] (a growable builder), and the [`Buf`]/[`BufMut`]
//! cursor traits — exactly the surface the HaoCL wire codec uses.
//! Little-endian accessors only, matching the hand-rolled protocol.

use std::ops::Deref;
use std::sync::Arc;

macro_rules! buf_get_impl {
    ($($fn:ident -> $t:ty),* $(,)?) => {
        $(
            /// Consumes and returns one little-endian scalar.
            ///
            /// # Panics
            ///
            /// Panics if fewer than `size_of` bytes remain.
            fn $fn(&mut self) -> $t
            where
                Self: Sized,
            {
                let mut raw = [0u8; std::mem::size_of::<$t>()];
                self.copy_to_slice(&mut raw);
                <$t>::from_le_bytes(raw)
            }
        )*
    };
}

/// A read cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes into `dst`, consuming them.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is longer than the remaining bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8])
    where
        Self: Sized,
    {
        assert!(dst.len() <= self.remaining(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consumes and returns one byte.
    ///
    /// # Panics
    ///
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8
    where
        Self: Sized,
    {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    buf_get_impl!(
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_i32_le -> i32,
        get_i64_le -> i64,
        get_f32_le -> f32,
        get_f64_le -> f64,
    );
}

macro_rules! bufmut_put_impl {
    ($($fn:ident($t:ty)),* $(,)?) => {
        $(
            /// Appends one little-endian scalar.
            fn $fn(&mut self, v: $t)
            where
                Self: Sized,
            {
                self.put_slice(&v.to_le_bytes());
            }
        )*
    };
}

/// A write cursor appending to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8)
    where
        Self: Sized,
    {
        self.put_slice(&[v]);
    }

    bufmut_put_impl!(
        put_u16_le(u16),
        put_u32_le(u32),
        put_u64_le(u64),
        put_i32_le(i32),
        put_i64_le(i64),
        put_f32_le(f32),
        put_f64_le(f64),
    );
}

/// A cheaply cloneable, sliceable, immutable byte buffer.
///
/// Clones share the backing allocation; [`Bytes::split_to`] and
/// [`Bytes::split_off`] adjust view bounds without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copied; the shim has no zero-copy statics).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Splits off and returns the bytes from `at` on, keeping the head.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// A sub-view of this buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte builder, frozen into [`Bytes`] when complete.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Wraps an existing vector without copying, appending after its
    /// current contents. With [`BytesMut::into_vec`], this lets pooled
    /// frame buffers be encoded into directly.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }

    /// Unwraps into the underlying vector without copying.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// The accumulated bytes as an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Freezes the builder into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_view_and_split() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        let tail = b.split_off(1);
        assert_eq!(&b[..], &[3]);
        assert_eq!(&tail[..], &[4, 5]);
        assert_eq!(b.slice(0..1), Bytes::from(vec![3u8]));
    }

    #[test]
    fn buf_cursor_scalars() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u32_le(0xdead_beef);
        m.put_f64_le(1.5);
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 13);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_f64_le(), 1.5);
        assert!(!b.has_remaining());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9u8; 64]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 64);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.split_to(2);
    }
}
