//! Offline drop-in subset of the `criterion` crate.
//!
//! Keeps the workspace's `benches/` targets compiling and runnable
//! without registry access: groups, `bench_function` /
//! `bench_with_input`, `sample_size`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a plain wall-clock mean over
//! the configured samples — no warmup, outlier rejection, or HTML
//! reports. Good enough to eyeball regressions; the real perf numbers
//! for the paper come from `crates/bench`'s own virtual-time harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: u32,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` for the configured number of samples, recording total
    /// wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += u64::from(self.samples);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each benchmark runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1) as u32;
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.samples,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters as u32
        };
        println!(
            "bench {}/{}: mean {:?} over {} iters",
            self.name, id, mean, bencher.iters
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        self.run(&id.to_string(), f);
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(&id.to_string(), |b| f(b, input));
    }

    /// Ends the group (required by the upstream API; a no-op here).
    pub fn finish(self) {}
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let mut group = self.benchmark_group("default");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iters() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // `runs` is captured by the closure above; re-run via input form.
        let input = 5u64;
        group.bench_with_input(BenchmarkId::from_parameter("p"), &input, |b, &v| {
            b.iter(|| black_box(v * 2));
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x2").to_string(), "x2");
    }
}
