//! Offline drop-in subset of the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — an unbounded MPMC channel with
//! disconnect tracking — which is the only piece of crossbeam the HaoCL
//! workspace uses (the in-process network fabric's per-connection
//! queues). Backed by a `Mutex<VecDeque>` + `Condvar`; throughput is far
//! below real crossbeam's but the fabric moves whole frames, not bytes,
//! so the queue is never the bottleneck in the virtual-time simulation.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    ///
    /// Carries the unsent value back to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect instead of sleeping forever.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .inner
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Returns a message if one is queued right now.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .inner
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn disconnect_on_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn timeout_elapses() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(Duration::from_millis(10));
            tx.send(42u64).unwrap();
            assert_eq!(h.join().unwrap(), Ok(42));
        }
    }
}
