//! Offline drop-in subset of the `parking_lot` API backed by `std::sync`.
//!
//! This workspace builds in environments without registry access, so the
//! handful of external crates it leans on are vendored as minimal shims.
//! Only the surface the workspace actually uses is provided: [`Mutex`]
//! and [`RwLock`] whose guards are returned without a poison `Result`
//! (a panicking holder does not poison the lock for later users).

use std::sync::PoisonError;

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// The guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// The guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until shared read access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until exclusive write access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let c = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = c.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
