//! Offline drop-in subset of the `proptest` crate.
//!
//! Supports the surface the HaoCL property tests use: the [`proptest!`]
//! and [`prop_oneof!`] macros, `any::<T>()` for scalars / bools / arrays,
//! range and tuple strategies, [`Just`], `prop_map`, boxed strategies,
//! `collection::vec`, a small regex-pattern string strategy, and the
//! `prop_assert*` macros. The runner is intentionally simpler than
//! upstream: a fixed number of deterministic cases per test (seeded from
//! the test name) and no shrinking — a failing case prints its full
//! inputs instead of a minimized one.

pub mod test_runner {
    /// Deterministic generator driving all strategies (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// An RNG seeded deterministically from a label (the test name),
        /// so every run of a test replays the same corpus.
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in label.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// The next uniformly distributed 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A uniform value in `[0, bound)` (`bound` must be nonzero).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert*` inside a test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property did not hold; carries the rendered assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure from a rendered message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy producing `f` applied to this strategy's values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy (needed by [`prop_oneof!`], whose
        /// branches are distinct concrete types).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Generates one value from `strat` (macro plumbing; the extra
    /// reference level lets `&'static str` patterns work unchanged).
    pub fn sample_of<S: Strategy>(strat: &S, rng: &mut TestRng) -> S::Value {
        strat.generate(rng)
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed branches ([`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $t
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                        self.start + unit as $t * (self.end - self.start)
                    }
                }
            )*
        };
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+)),+ $(,)?) => {
            $(
                #[allow(non_snake_case)]
                impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                    type Value = ($($n::Value,)+);

                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($n,)+) = self;
                        ($($n.generate(rng),)+)
                    }
                }
            )*
        };
    }

    tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );

    /// String strategy from a regex-like pattern (`&str` implements
    /// [`Strategy`] directly, as in upstream proptest).
    ///
    /// Supported forms: `".*"` (arbitrary short strings, multibyte
    /// included) and `"[class]{m,n}"` with literal chars, `a-b` ranges,
    /// and `\n`/`\t`/`\\` escapes. Anything else panics — extend the
    /// parser when a test needs more.
    impl Strategy for str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            pattern_string(self, rng)
        }
    }

    fn pattern_string(pattern: &str, rng: &mut TestRng) -> String {
        if pattern == ".*" {
            let len = rng.below(48) as usize;
            return (0..len)
                .map(|_| {
                    // Mostly printable ASCII with occasional multibyte
                    // chars so UTF-8 length handling gets exercised.
                    if rng.below(8) == 0 {
                        char::from_u32(0x00a1 + rng.below(0x2000) as u32).unwrap_or('§')
                    } else {
                        (b' ' + rng.below(95) as u8) as char
                    }
                })
                .collect();
        }
        let (class, min, max) = parse_class_repeat(pattern)
            .unwrap_or_else(|| panic!("unsupported pattern strategy {pattern:?} (shim)"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }

    /// Parses `"[class]{m,n}"` into (alphabet, m, n).
    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let (class_src, tail) = rest.split_at(close);
        let counts = tail.strip_prefix("]{")?.strip_suffix('}')?;
        let (m, n) = counts.split_once(',')?;
        let (min, max) = (m.trim().parse().ok()?, n.trim().parse().ok()?);
        if min > max {
            return None;
        }

        let mut alphabet = Vec::new();
        let mut chars = class_src.chars().peekable();
        while let Some(c) = chars.next() {
            let lo = if c == '\\' {
                match chars.next()? {
                    'n' => '\n',
                    't' => '\t',
                    '\\' => '\\',
                    other => other,
                }
            } else {
                c
            };
            if chars.peek() == Some(&'-') && chars.clone().nth(1).is_some() {
                chars.next();
                let hi = chars.next()?;
                for v in lo as u32..=hi as u32 {
                    alphabet.push(char::from_u32(v)?);
                }
            } else {
                alphabet.push(lo);
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        Some((alphabet, min, max))
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> Self {
                        rng.next_u64() as $t
                    }
                }
            )*
        };
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    // Full bit-pattern floats: NaNs and infinities included, as upstream.
    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` deterministic iterations, regenerating every argument.
/// `prop_assert*` failures abort the case with its inputs printed (no
/// shrinking in this shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::sample_of(&$strat, &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        Ok(())
                    })();
                    if let Err(failure) = outcome {
                        panic!(
                            "property failed at case {case}/{}: {failure}\ninputs:\n{inputs}",
                            config.cases
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::sample_of;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn pattern_class_stays_in_alphabet() {
        let mut rng = TestRng::deterministic("class");
        for _ in 0..200 {
            let s = sample_of(&"[ -~\\n]{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn dot_star_generates_valid_short_strings() {
        let mut rng = TestRng::deterministic("dotstar");
        for _ in 0..100 {
            let s = sample_of(&".*", &mut rng);
            assert!(s.chars().count() < 48);
        }
    }

    proptest! {
        #[test]
        fn macro_pipeline_works(
            v in any::<u32>(),
            xs in crate::collection::vec(0u8..10, 1..5),
            word in prop_oneof![Just("a".to_string()), Just("b".to_string())],
            pair in (any::<i32>(), 0f64..1.0),
        ) {
            prop_assert!(u64::from(v) <= u64::from(u32::MAX));
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert_ne!(word.as_str(), "c");
            prop_assert_eq!(pair.0, pair.0, "identity on {}", word);
            prop_assert!((0.0..1.0).contains(&pair.1));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_attr_accepted(v in 5usize..6) {
            prop_assert_eq!(v, 5);
        }
    }
}
