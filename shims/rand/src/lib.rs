//! Offline drop-in subset of the `rand` crate.
//!
//! Provides the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits and
//! [`rngs::StdRng`] — everything the HaoCL workload generators and seed
//! derivation use. `StdRng` here is xoshiro256++ seeded via splitmix64;
//! the generated streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, which is fine because the workspace only promises
//! determinism for a fixed build, never a fixed stream across rand
//! versions (upstream makes the same non-guarantee).

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the full value domain
/// (the `Standard` distribution in upstream terms).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {
        $(
            impl Standard for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Unbiased-enough integer range sampling: 64-bit multiply-shift. The
// modulo bias of a plain `% span` is avoided by widening to u128.
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + sample_u64_below(rng, span) as i128) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = self.into_inner();
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                    (start as i128 + v) as $t
                }
            }
        )*
    };
}

range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = <$t as Standard>::sample_standard(rng);
                    self.start + unit * (self.end - self.start)
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = self.into_inner();
                    assert!(start <= end, "cannot sample empty range");
                    let unit = <$t as Standard>::sample_standard(rng);
                    start + unit * (end - start)
                }
            }
        )*
    };
}

range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Small, fast, and passes BigCrush — more than adequate for workload
    /// synthesis in a simulation (no cryptographic claims).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64 per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_separate_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(4);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.gen_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
