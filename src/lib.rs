//! The HaoCL suite meta-crate.
//!
//! Re-exports every crate of the workspace for the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/`. Library
//! users should depend on the individual crates (start with [`haocl`]).

pub use haocl;
pub use haocl_baselines as baselines;
pub use haocl_clc as clc;
pub use haocl_cluster as cluster;
pub use haocl_device as device;
pub use haocl_kernel as kernel;
pub use haocl_net as net;
pub use haocl_proto as proto;
pub use haocl_sched as sched;
pub use haocl_sim as sim;
pub use haocl_workloads as workloads;
