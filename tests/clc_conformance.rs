//! Conformance battery for the OpenCL C compiler + VM: tricky kernels
//! whose expected outputs are computed by independent host Rust code.

use haocl_clc::compile;
use haocl_clc::vm::{run_ndrange, ArgValue, GlobalBuffer, NdRange};

fn run_i32(src: &str, kernel: &str, args: &[ArgValue], bufs: &mut [GlobalBuffer], range: NdRange) {
    let program = compile(src).expect("compile");
    let k = program.kernel(kernel).expect("kernel present");
    run_ndrange(k, args, bufs, &range).expect("execute");
}

#[test]
fn integer_type_coercions_follow_c_rules() {
    let src = r#"__kernel void t(__global int* out) {
        int  a = -7;
        uint b = 3u;
        long c = 1000000007;
        // int op uint -> uint (wraps); stored back into int.
        out[0] = (int)(a + b);           // -4 as uint pattern
        out[1] = (int)(c % 10);          // long arithmetic
        out[2] = (int)((a < 0) ? 1 : 2); // bool/ternary
        out[3] = (int)(b << 4);
        out[4] = a / 2;                  // signed division truncates
        out[5] = a % 2;                  // signed remainder
        out[6] = (int)(3.9f);            // float -> int truncation
        out[7] = -(a);                   // unary minus
    }"#;
    let mut bufs = vec![GlobalBuffer::zeroed(8 * 4)];
    run_i32(
        src,
        "t",
        &[ArgValue::global(0)],
        &mut bufs,
        NdRange::linear(1, 1),
    );
    assert_eq!(bufs[0].as_i32(), vec![-4, 7, 1, 48, -3, -1, 3, 7]);
}

#[test]
fn nested_loops_with_break_continue_match_oracle() {
    let src = r#"__kernel void t(__global int* out, int n) {
        int acc = 0;
        for (int i = 0; i < n; i++) {
            if (i % 3 == 0) continue;
            int j = 0;
            while (j < i) {
                j++;
                if (j * i > 40) break;
                acc += j;
            }
        }
        out[0] = acc;
    }"#;
    // Oracle.
    let n = 12;
    let mut acc = 0i32;
    for i in 0..n {
        if i % 3 == 0 {
            continue;
        }
        let mut j = 0;
        while j < i {
            j += 1;
            if j * i > 40 {
                break;
            }
            acc += j;
        }
    }
    let mut bufs = vec![GlobalBuffer::zeroed(4)];
    run_i32(
        src,
        "t",
        &[ArgValue::global(0), ArgValue::from_i32(n)],
        &mut bufs,
        NdRange::linear(1, 1),
    );
    assert_eq!(bufs[0].as_i32(), vec![acc]);
}

#[test]
fn two_dim_workgroups_with_shared_memory_reduce() {
    // Per-group sum via local memory and a barrier, written by item 0.
    let src = r#"__kernel void groupsum(__global const int* in, __global int* out) {
        __local int scratch[64];
        int l = get_local_id(0);
        int g = get_group_id(0);
        int n = get_local_size(0);
        scratch[l] = in[get_global_id(0)];
        barrier(CLK_LOCAL_MEM_FENCE);
        if (l == 0) {
            int s = 0;
            for (int i = 0; i < n; i++) s += scratch[i];
            out[g] = s;
        }
    }"#;
    let input: Vec<i32> = (0..64).map(|i| i * i).collect();
    let mut bufs = vec![GlobalBuffer::from_i32(&input), GlobalBuffer::zeroed(8 * 4)];
    run_i32(
        src,
        "groupsum",
        &[ArgValue::global(0), ArgValue::global(1)],
        &mut bufs,
        NdRange::linear(64, 8),
    );
    let expect: Vec<i32> = input.chunks(8).map(|c| c.iter().sum()).collect();
    assert_eq!(bufs[1].as_i32(), expect);
}

#[test]
fn multi_barrier_pipeline_is_correct() {
    // Three barrier phases: write, rotate, rotate again.
    let src = r#"__kernel void rot2(__global int* data) {
        __local int t[16];
        int l = get_local_id(0);
        int n = get_local_size(0);
        t[l] = data[get_global_id(0)];
        barrier(CLK_LOCAL_MEM_FENCE);
        int a = t[(l + 1) % n];
        barrier(CLK_LOCAL_MEM_FENCE);
        t[l] = a;
        barrier(CLK_LOCAL_MEM_FENCE);
        data[get_global_id(0)] = t[(l + 1) % n];
    }"#;
    let input: Vec<i32> = (0..16).collect();
    let mut bufs = vec![GlobalBuffer::from_i32(&input)];
    run_i32(
        src,
        "rot2",
        &[ArgValue::global(0)],
        &mut bufs,
        NdRange::linear(16, 16),
    );
    // Two rotations by one => shift by two.
    let expect: Vec<i32> = (0..16).map(|i| (i + 2) % 16).collect();
    assert_eq!(bufs[0].as_i32(), expect);
}

#[test]
fn float_math_builtins_match_rust() {
    let src = r#"__kernel void m(__global float* x) {
        int i = get_global_id(0);
        float v = x[i];
        x[i] = sqrt(fabs(v)) + sin(v) * cos(v) + exp(v / 10.0f) + log(fabs(v) + 1.0f)
             + pow(fabs(v), 1.5f) + floor(v) + ceil(v) + fmin(v, 0.5f) + fmax(v, -0.5f);
    }"#;
    let input: Vec<f32> = vec![-2.5, -0.1, 0.0, 0.7, 3.25];
    let mut bufs = vec![GlobalBuffer::from_f32(&input)];
    run_i32(
        src,
        "m",
        &[ArgValue::global(0)],
        &mut bufs,
        NdRange::linear(5, 1),
    );
    let out = bufs[0].as_f32();
    for (i, &v) in input.iter().enumerate() {
        let expect = v.abs().sqrt()
            + v.sin() * v.cos()
            + (v / 10.0).exp()
            + (v.abs() + 1.0).ln()
            + v.abs().powf(1.5)
            + v.floor()
            + v.ceil()
            + v.min(0.5)
            + v.max(-0.5);
        assert!(
            (out[i] - expect).abs() <= 1e-4 * expect.abs().max(1.0),
            "lane {i}: {} vs {expect}",
            out[i]
        );
    }
}

#[test]
fn three_dimensional_ranges_enumerate_every_item() {
    let src = r#"__kernel void mark(__global int* out, int nx, int ny) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        int z = get_global_id(2);
        out[(z * ny + y) * nx + x] = x + 10 * y + 100 * z;
    }"#;
    let (nx, ny, nz) = (4u64, 3u64, 2u64);
    let mut bufs = vec![GlobalBuffer::zeroed((nx * ny * nz * 4) as usize)];
    run_i32(
        src,
        "mark",
        &[
            ArgValue::global(0),
            ArgValue::from_i32(nx as i32),
            ArgValue::from_i32(ny as i32),
        ],
        &mut bufs,
        NdRange::d3([nx, ny, nz], [2, 1, 1]),
    );
    let out = bufs[0].as_i32();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let idx = ((z * ny + y) * nx + x) as usize;
                assert_eq!(out[idx], (x + 10 * y + 100 * z) as i32);
            }
        }
    }
}

#[test]
fn do_while_and_compound_assignments() {
    let src = r#"__kernel void t(__global int* out) {
        int x = 1;
        do {
            x <<= 1;
            x |= 1;
        } while (x < 100);
        out[0] = x;
        int y = 0xF0;
        y &= 0x3C;
        y ^= 0x0F;
        y >>= 1;
        out[1] = y;
        int z = 10;
        z *= 7;
        z -= 4;
        z /= 3;
        z %= 5;
        out[2] = z;
    }"#;
    let mut bufs = vec![GlobalBuffer::zeroed(12)];
    run_i32(
        src,
        "t",
        &[ArgValue::global(0)],
        &mut bufs,
        NdRange::linear(1, 1),
    );
    // Oracles.
    let mut x = 1i32;
    loop {
        x <<= 1;
        x |= 1;
        if x >= 100 {
            break;
        }
    }
    let mut y = 0xF0i32;
    y &= 0x3C;
    y ^= 0x0F;
    y >>= 1;
    let mut z = 10i32;
    z *= 7;
    z -= 4;
    z /= 3;
    z %= 5;
    assert_eq!(bufs[0].as_i32(), vec![x, y, z]);
}

#[test]
fn pre_and_post_increment_as_values() {
    let src = r#"__kernel void t(__global int* out) {
        int i = 5;
        out[0] = i++;
        out[1] = i;
        out[2] = ++i;
        out[3] = i--;
        out[4] = --i;
        out[5] = i;
    }"#;
    let mut bufs = vec![GlobalBuffer::zeroed(24)];
    run_i32(
        src,
        "t",
        &[ArgValue::global(0)],
        &mut bufs,
        NdRange::linear(1, 1),
    );
    assert_eq!(bufs[0].as_i32(), vec![5, 6, 7, 7, 5, 5]);
}

#[test]
fn constant_pointer_parameters_are_readable() {
    let src = r#"__kernel void t(__constant float* table, __global float* out, int n) {
        int i = get_global_id(0);
        if (i < n) out[i] = table[n - 1 - i] * 2.0f;
    }"#;
    let mut bufs = vec![
        GlobalBuffer::from_f32(&[1.0, 2.0, 3.0]),
        GlobalBuffer::zeroed(12),
    ];
    run_i32(
        src,
        "t",
        &[
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::from_i32(3),
        ],
        &mut bufs,
        NdRange::linear(3, 1),
    );
    assert_eq!(bufs[1].as_f32(), vec![6.0, 4.0, 2.0]);
}

#[test]
fn double_precision_kernels_work() {
    let src = r#"__kernel void t(__global double* x) {
        int i = get_global_id(0);
        x[i] = sqrt(x[i]) + 0.5;
    }"#;
    let mut bufs = vec![GlobalBuffer::from_f64(&[4.0, 9.0, 16.0])];
    run_i32(
        src,
        "t",
        &[ArgValue::global(0)],
        &mut bufs,
        NdRange::linear(3, 1),
    );
    assert_eq!(bufs[0].as_f64(), vec![2.5, 3.5, 4.5]);
}
